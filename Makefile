PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench-smoke stats-smoke lint bench baseline ci

# tier-1: the full unit/property suite
test:
	$(PYTHON) -m pytest -x -q

# <30s guard: engine timings vs the checked-in BENCH_matching.json;
# fails on a >2x regression at the smoke sizes
smoke:
	$(PYTHON) benchmarks/bench_matching_engine.py --smoke

# benchmark smoke gates: the matching-engine regression check, the
# solve_many correctness gate (parallel verdicts == serial; no timing
# assertions, so it is safe on loaded single-core runners), and the
# observability gate (idle-instrumentation overhead within tolerance,
# plus the BENCH_trace_smoke.jsonl trace artifact CI uploads)
bench-smoke: smoke
	$(PYTHON) benchmarks/bench_fig1_parallel.py --smoke
	$(PYTHON) benchmarks/bench_obs.py --smoke

# self-checking metrics-exporter gate: solves a built-in batch over two
# workers and fails on any Prometheus/JSON exporter or trace-merge regression
stats-smoke:
	$(PYTHON) -m repro stats --jobs 2

# full before/after series (slow; prints the speedup table)
bench:
	$(PYTHON) benchmarks/bench_matching_engine.py

# refresh the baseline after an intentional performance change
baseline:
	$(PYTHON) benchmarks/bench_matching_engine.py --update-baseline

# style gate; skips with a notice when ruff is not on PATH
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

ci: lint test bench-smoke stats-smoke
