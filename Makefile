PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench-smoke stats-smoke serve-smoke watch-smoke lint lint-smoke bench baseline ci

# tier-1: the full unit/property suite
test:
	$(PYTHON) -m pytest -x -q

# <30s guard: engine timings vs the checked-in BENCH_matching.json;
# fails on a >2x regression at the smoke sizes
smoke:
	$(PYTHON) benchmarks/bench_matching_engine.py --smoke

# benchmark smoke gates: the matching-engine regression check, the
# solve_many correctness gate (parallel verdicts == serial; no timing
# assertions, so it is safe on loaded single-core runners), the
# observability gate (idle-instrumentation overhead within tolerance,
# plus the BENCH_trace_smoke.jsonl trace artifact CI uploads), the
# linter latency gate (aggregate lint >= 2x below the bitset-accelerated
# cold solve), the
# kernel-equivalence gate (pure vs bitset verdicts must be identical),
# and the incremental gate (single-std-edit deltas >= 10x faster than a
# cold solve, with incremental == cold equivalence under both kernels)
bench-smoke: smoke
	$(PYTHON) benchmarks/bench_fig1_parallel.py --smoke
	$(PYTHON) benchmarks/bench_obs.py --smoke
	$(PYTHON) benchmarks/bench_lint.py --smoke
	$(PYTHON) benchmarks/bench_scale.py --smoke
	$(PYTHON) benchmarks/bench_incremental.py --smoke

# self-checking metrics-exporter gate: solves a built-in batch over two
# workers and fails on any Prometheus/JSON exporter or trace-merge regression
stats-smoke:
	$(PYTHON) -m repro stats --jobs 2

# service-daemon gate: boots `repro serve` on an ephemeral port, round-trips
# check/lint/metrics over HTTP (asserting OpenMetrics exemplars parse), walks
# the flight recorder (/debug/requests trace-ID round-trip, /debug/slow and
# the BENCH_slowlog_smoke.jsonl sink CI uploads), renders `repro top` and
# `repro stats --url` against the live daemon, and probes admission control
# (a saturated 1-slot daemon must answer 429 and bump repro_rejected_total)
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py

# watch-mode gate: boots `repro lint --watch` on a temp mapping, edits a
# std on disk, and asserts an incremental re-lint within the latency bound
watch-smoke:
	$(PYTHON) examples/watch_smoke.py

# full before/after series (slow; prints the speedup table)
bench:
	$(PYTHON) benchmarks/bench_matching_engine.py

# refresh the baseline after an intentional performance change
baseline:
	$(PYTHON) benchmarks/bench_matching_engine.py --update-baseline

# style + type gates.  Each tool skips with a notice when absent locally
# (the dev container ships neither); CI installs both, and a tool that IS
# present and reports findings fails the build — never a silent skip.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		echo "ruff check"; \
		ruff check src tests benchmarks examples || exit 1; \
	else \
		echo "ruff not installed; skipping style lint"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		echo "mypy (config in pyproject.toml)"; \
		mypy || exit 1; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

# mapping-linter gate: repro lint over every example mapping, diagnostic
# codes compared against the committed examples/expected_lint.json
lint-smoke:
	$(PYTHON) examples/lint_gate.py

ci: lint test bench-smoke lint-smoke stats-smoke serve-smoke watch-smoke
