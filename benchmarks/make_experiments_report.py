"""Regenerate EXPERIMENTS.md from a benchmark run.

Usage::

    pytest benchmarks/ --benchmark-only -s 2>&1 | grep -E '^\\[' > /tmp/bench_tables.txt
    python benchmarks/make_experiments_report.py /tmp/bench_tables.txt

The script groups the ``[TAG]``-prefixed table lines the benchmarks print,
attaches the per-cell verdicts below, and writes ``EXPERIMENTS.md`` at the
repository root.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from pathlib import Path

VERDICTS = {
 "F1.1": ("CONS(⇓), arbitrary DTDs", "EXPTIME-complete",
   "Reproduced: per extra disjunctive choice the exact algorithm slows by ~3x "
   "(clean exponential), and both consistent and inconsistent variants are decided correctly."),
 "F1.2": ("CONS(⇓), nested-relational DTDs", "PTIME (cubic via [4])",
   "Reproduced: the dedicated minimal-tree algorithm scales polynomially "
   "(~1.5-3x per doubling of the std count) and agrees with the EXPTIME algorithm on 100 random mappings (tests)."),
 "F1.3": ("CONS(⇓,⇒), arbitrary DTDs", "EXPTIME-complete (Thm 5.2)",
   "Reproduced qualitatively: horizontal axes are handled by the same exact automata machinery; "
   "this chain family grows mildly (the worst case is exponential, as F1.1 shows for the same engine)."),
 "F1.4": ("CONS(⇓,→), nested-relational DTDs", "PSPACE-hard (Prop 5.3)",
   "Frontier reproduced: the PTIME algorithm refuses → by design (SignatureError), leaving only the exponential engine. "
   "PSPACE-hardness is a worst-case lower bound; this family is decided correctly at modest cost."),
 "F1.5": ("CONS(⇓,∼), arbitrary DTDs", "undecidable (Thm 5.4)",
   "Reproduced as theory allows: the semi-decision search cost grows super-exponentially "
   "as witnesses need more distinct values; no complete procedure can exist."),
 "F1.6": ("CONS(⇓,∼), nested-relational DTDs", "NEXPTIME-complete (Thm 5.5)",
   "Reproduced: guess-and-check over value assignments; both consistent and inconsistent case-split "
   "instances decided correctly within the witness bound."),
 "F1.7": ("CONS(⇓,⇒,∼)", "undecidable (Thm 5.4/5.5)",
   "Reproduced as theory allows: semi-decision over ordered chains with distinctness constraints."),
 "F1.8a": ("ABSCONS°(⇓,⇒)", "Pi_2^p-complete (Prop 6.1)",
   "Reproduced: the for-all/exists trigger-set inclusion grows ~2.5-4x per std (exponential set families), "
   "exact on both outcomes."),
 "F1.8b": ("ABSCONS(⇓), general", "in EXPSPACE, NEXPTIME-hard (Thm 6.2)",
   "Substituted (DESIGN.md #1): bounded counterexample search; refutes the paper's Section 6 "
   "counting example and its scalings. The EXPSPACE verifier is not reconstructible from the paper's text."),
 "F1.9": ("ABSCONS(⇓), nested-relational + fully-specified", "PTIME (Thm 6.3)",
   "Reproduced: the rigidity analysis decides 64-std instances in tens of milliseconds, polynomial growth, "
   "and matches the brute-force oracle on random instances (tests)."),
 "F1.10": ("ABSCONS(⇓) + wildcard/descendant sources", "NEXPTIME-hard (Thm 6.3)",
   "Frontier reproduced with exact answers: the PTIME algorithm refuses wildcards; the source-expansion "
   "procedure (DESIGN.md #1c) instantiates them and decides exactly, at instantiation-count cost."),
 "F1.10b": ("(consistent variant)", "-", "Supporting series for F1.10."),
 "F2.1": ("pattern evaluation, data complexity", "DLOGSPACE-complete",
   "Reproduced: fixed pattern, growing tree; full evaluation grows with the answer set "
   "(the ->*-pair count is quadratic), the Boolean variant near-linearly."),
 "F2.1b": ("(Boolean variant)", "-", "Supporting series for F2.1."),
 "F2.2": ("pattern evaluation, combined complexity", "PTIME",
   "Reproduced: deep chain patterns against deep paths stay polynomial (memoized matcher)."),
 "F2.2b": ("(descendant chains)", "-",
   "Supporting series: k descendant steps against a path of length 4k grows ~k^3 — polynomial, as the PTIME bound requires."),
 "F2.3": ("mapping membership, data complexity", "DLOGSPACE-complete",
   "Reproduced: fixed mapping, documents doubled, runtime roughly doubles (near-linear)."),
 "F2.4": ("mapping membership, combined complexity", "Pi_2^p-complete; the blow-up parameter is #variables",
   "Reproduced exactly as Theorem 4.3 describes: each extra variable multiplies the cost by ~|T| "
   "(measured ~8-11x at |T| = 12), i.e. |T|^k growth."),
 "F2.4b": ("membership, fixed arity", "PTIME (Thm 4.3)",
   "Reproduced: with the variable count pinned, growth in |T| is polynomial."),
 "F2.5": ("composition membership over SM(⇓,⇒), data", "EXPTIME-complete",
   "Substituted (DESIGN.md #2): bounded intermediate search with the exact finite value abstraction; "
   "cost grows super-exponentially in adom(T1), matching the EXPTIME-hard data complexity."),
 "F2.6": ("composition membership over SM(⇓,⇒), combined", "2-EXPTIME / NEXPTIME-hard",
   "Substituted (DESIGN.md #2): growth with the number of middle choices; exponentially many middle shapes."),
 "F2.7": ("composition over SM(⇓,⇒,∼)", "undecidable / not uniformly decidable",
   "Reproduced as theory allows: only the bounded search exists; effort grows with the value count."),
 "F7.1": ("consistency of composition", "EXPTIME-complete (Thm 7.1, Prop 7.2)",
   "Reproduced exactly: chained trigger-set reachability decides n-mapping chains, ~3x per extra choice (exponential)."),
 "F8.1": ("Skolem-class composition", "closed under composition (Thm 8.2)",
   "Reproduced constructively: compose() emits a mapping verified equal to the semantic composition "
   "by exhaustive enumeration (tests/test_compose.py and tests/test_compose_random.py, dozens of random pairs); composed std count = 2n."),
 "F8.1b": ("iterated composition", "-",
   "Closure holds under iteration: the result re-passes check_composable_class(); Skolem terms nest and "
   "SO-tgd preconditions appear, with std count doubling per stage on this family."),
 "F8.2": ("features that break closure", "Prop 8.1",
   "Reproduced: all five gallery pairs (wildcard, descendant, next-sibling, inequality, unstarred attributes) "
   "have provably disjunctive compositions (verified by enumeration in tests/test_composition_closure.py) and are refused by compose()."),
 "A1a": ("ablation: dead-state pruning (with)", "-", ""),
 "A1b": ("ablation: dead-state pruning (without)", "-",
   "Pruning non-conforming subtrees and dead horizontal states is a ~500x speedup already at n=1; "
   "it changes no answers (same accepting states)."),
 "A2": ("ablation: closure-automaton growth", "-",
   "The realized product state count grows with the pattern family — the EXPTIME lives in the state space, as the paper's bounds say."),
 "A3a": ("ablation: trigger-set pass (ours)", "-", ""),
 "A3b": ("ablation: naive 2^|Σ| subset enumeration", "-",
   "The single-pass trigger-set algorithm beats subset enumeration by an exponential factor (11x vs 3x growth per step)."),
}

HEADER = """# EXPERIMENTS — paper vs. measured

The paper's evaluation consists of two complexity-classification tables
(Figure 1: consistency; Figure 2: evaluation/membership/composition).
Each experiment below reproduces one cell: the benchmark prints the
paper's claimed complexity and a measured scaling series; the `growth`
row gives consecutive timing ratios (flat ratios = polynomial cell,
escalating ratios = exponential cell).  Absolute times are incidental —
the substrate is a Python library on one machine — but the *shape*
(which side of the tractability frontier each cell falls on, and which
restriction buys which drop) is the reproduced result.

Regenerate everything with:

    pytest benchmarks/ --benchmark-only -s 2>&1 | grep -E '^\\[' > /tmp/bench_tables.txt
    python benchmarks/make_experiments_report.py /tmp/bench_tables.txt

Environment for the numbers below: CPython 3.11.7, single core, Linux.
Instance construction is excluded from the timed region.  Every decision
result in the tables was also checked for correctness (assertions inside
the benchmarks), and every algorithm is cross-validated against
brute-force oracles in `tests/`.
"""

SCORECARD = """

## Summary scorecard

| Figure cell | Paper | Status |
|---|---|---|
| CONS(⇓) arbitrary | EXPTIME-complete | reproduced (exact algorithm, exponential curve) |
| CONS(⇓) nested-relational | PTIME | reproduced (exact algorithm, polynomial curve) |
| CONS(⇓,⇒) | EXPTIME-complete | reproduced (same exact engine handles ⇒) |
| CONS(⇓,→) nested-relational | PSPACE-hard | frontier reproduced (PTIME algorithm refuses →) |
| CONS(⇓,∼) | undecidable | semi-decision procedure + unbounded-growth curve |
| CONS(⇓,∼) nested-relational | NEXPTIME-complete | witness-guessing search (bounded, sound) |
| CONS(⇓,⇒,∼) | undecidable | semi-decision procedure |
| ABSCONS° | Pi_2^p-complete | reproduced (exact algorithm) |
| ABSCONS(⇓) general | EXPSPACE / NEXPTIME-hard | substituted: bounded refuter (DESIGN.md #1) |
| ABSCONS(⇓) NR + fully-specified | PTIME | reproduced (exact rigidity analysis, oracle-validated, with explanations) |
| ABSCONS + wildcard/descendant sources | NEXPTIME-hard | reproduced exactly (source expansion, DESIGN.md #1c) |
| pattern evaluation data/combined | DLOGSPACE / PTIME | reproduced (near-linear / polynomial) |
| membership data / combined / fixed arity | DLOGSPACE / Pi_2^p / PTIME | reproduced; blow-up isolated to #variables |
| composition SM(⇓,⇒) data / combined | EXPTIME / 2-EXPTIME | substituted: bounded search + exact value abstraction (DESIGN.md #2) |
| composition with ∼ | undecidable | bounded search only |
| CONSCOMP | EXPTIME-complete | reproduced (exact chained trigger sets, n-ary) |
| Thm 8.2 closure | constructive | reproduced (compose() verified against semantics, incl. randomized pairs) |
| Prop 8.1 | closure breaks | reproduced (gallery verified disjunctive by enumeration) |
"""

SECTIONS = [
    ("Figure 1 — consistency",
     ["F1.1", "F1.2", "F1.3", "F1.4", "F1.5", "F1.6", "F1.7",
      "F1.8a", "F1.8b", "F1.9", "F1.10", "F1.10b"]),
    ("Figure 2 — complexity of evaluation, membership, composition",
     ["F2.1", "F2.1b", "F2.2", "F2.2b", "F2.3", "F2.4", "F2.4b",
      "F2.5", "F2.6", "F2.7", "F7.1"]),
    ("Section 8 — composition closure", ["F8.1", "F8.1b", "F8.2"]),
    ("Ablations", ["A1a", "A1b", "A2", "A3a", "A3b"]),
]


def main(capture_path: str) -> None:
    lines = Path(capture_path).read_text().splitlines()
    groups: "OrderedDict[str, list[str]]" = OrderedDict()
    for line in lines:
        tag = line.split("]")[0][1:]
        groups.setdefault(tag, []).append(line)
    out = [HEADER]
    for title, tags in SECTIONS:
        out.append("\n\n## " + title + "\n")
        for tag in tags:
            if tag not in groups:
                continue
            cell, claim, verdict = VERDICTS.get(tag, (tag, "-", ""))
            out.append(f"\n### {tag} — {cell}\n")
            if claim != "-":
                out.append(f"**Paper:** {claim}\n")
            if verdict:
                out.append(f"**Verdict:** {verdict}\n")
            out.append("```")
            out.extend(groups[tag])
            out.append("```")
    out.append(SCORECARD)
    target = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    target.write_text("\n".join(out) + "\n")
    print(f"wrote {target} ({len(out)} blocks)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "/tmp/bench_tables.txt")
