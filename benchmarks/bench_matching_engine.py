"""Matching engine — before/after series against the naive evaluator.

"Before" is :class:`repro.verification.oracle.NaiveMatcher`, the original
top-down matcher (nested-loop joins, no index, rebuilt per call).  "After"
is the indexed hash-join engine of :mod:`repro.patterns.matching`, in two
flavours:

* **cold** — the engine (index + memo tables) is rebuilt for every call,
  the fair apples-to-apples comparison;
* **warm** — the engine is reused across calls, the call pattern of the
  consistency / composition / membership drivers, which evaluate many
  patterns (or the same patterns many times) over one fixed tree.

The checked-in ``BENCH_matching.json`` records the engine series; the CI
smoke mode (``--smoke``, well under 30s) re-measures the smoke sizes and
fails on a >2x regression against that baseline.  Refresh the baseline
with ``--update-baseline`` after intentional performance changes.

Run directly (``python benchmarks/bench_matching_engine.py``) for the
full table, or through pytest for the speedup assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import print_table, sweep

from repro.patterns.matching import engine_for, find_matches, matches_at_root
from repro.patterns.parser import parse_pattern
from repro.verification.oracle import naive_find_matches, naive_matches_at_root
from repro.workloads.families import flat_document
from repro.xmlmodel.tree import TreeNode

BASELINE_PATH = Path(__file__).with_name("BENCH_matching.json")

# the naive matcher recurses once per tree level; the deep series would
# blow the default limit (the indexed engine walks the tree iteratively)
sys.setrecursionlimit(max(sys.getrecursionlimit(), 50_000))

FULL_SIZES = [100, 200, 400, 800, 1600]
SMOKE_SIZES = [100, 200, 400]
SPEEDUP_TARGET = 5.0
REGRESSION_TOLERANCE = 2.0
#: sub-millisecond points drown in timer noise; give them absolute slack
ABSOLUTE_SLACK_SECONDS = 0.005

F21_PATTERN = parse_pattern("r[a(x) ->* a(y), //a(z)]")
BOOLEAN_PATTERN = parse_pattern("r[a(5) ->* a(6)]")
#: Boolean nested descendants over a deep path: the attribute index gives
#: ``//a(0)`` an O(log n) access path and the semi-join mode never builds
#: a valuation set; the naive matcher walks the whole quadratic closure
DEEP_PATTERN = parse_pattern("r//a//a//a(0)")


def deep_document(depth: int) -> TreeNode:
    node = TreeNode("a", (0,))
    for level in range(1, depth):
        node = TreeNode("a", (level,), (node,))
    return TreeNode("r", (), (node,))


def _cold(document: TreeNode, action):
    """Wrap *action* so every call rebuilds the engine from scratch."""

    def run():
        document._engine = None
        return action()

    return run


SERIES = {
    # name -> (document factory, pattern, evaluate, reference evaluate)
    "f21": (
        flat_document,
        F21_PATTERN,
        lambda p, t: len(find_matches(p, t)),
        lambda p, t: len(naive_find_matches(p, t)),
    ),
    "boolean": (
        flat_document,
        BOOLEAN_PATTERN,
        matches_at_root,
        naive_matches_at_root,
    ),
    "deep": (
        deep_document,
        DEEP_PATTERN,
        matches_at_root,
        naive_matches_at_root,
    ),
}


def measure_series(name: str, sizes, naive: bool = True) -> dict:
    make_document, pattern, run_engine, run_naive = SERIES[name]
    documents = {n: make_document(n) for n in sizes}
    out: dict = {"sizes": list(sizes)}

    if naive:
        rows = sweep(sizes, lambda n: lambda: run_naive(pattern, documents[n]))
        print_table(f"{name}/naive", "original matcher (before)", rows, "|T|")
        out["naive"] = {str(row[0]): row[1] for row in rows}

    rows = sweep(
        sizes,
        lambda n: _cold(documents[n], lambda: run_engine(pattern, documents[n])),
    )
    print_table(f"{name}/cold", "indexed engine, rebuilt per call", rows, "|T|")
    out["engine_cold"] = {str(row[0]): row[1] for row in rows}

    rows = sweep(sizes, lambda n: lambda: run_engine(pattern, documents[n]))
    print_table(f"{name}/warm", "indexed engine, cached across calls", rows, "|T|")
    out["engine_warm"] = {str(row[0]): row[1] for row in rows}

    # per-run counters at the largest size, from one cold evaluation
    largest = documents[max(sizes)]
    largest._engine = None
    run_engine(pattern, largest)
    print(f"[{name}] counters: {engine_for(largest).stats}")

    if naive:
        big = str(max(sizes))
        out["speedup_cold"] = out["naive"][big] / max(out["engine_cold"][big], 1e-9)
        print(f"[{name}] speedup at |T|={big}: {out['speedup_cold']:.1f}x (cold)")
    return out


def run_full(sizes=None) -> dict:
    sizes = sizes or FULL_SIZES
    return {name: measure_series(name, sizes) for name in SERIES}


def run_smoke() -> int:
    """Re-measure the engine series at smoke sizes against the baseline."""
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update-baseline first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for name in SERIES:
        measured = measure_series(name, SMOKE_SIZES, naive=False)
        for series in ("engine_cold", "engine_warm"):
            for n in map(str, SMOKE_SIZES):
                recorded = baseline[name][series].get(n)
                if recorded is None:
                    continue
                limit = recorded * REGRESSION_TOLERANCE + ABSOLUTE_SLACK_SECONDS
                if measured[series][n] > limit:
                    failures.append(
                        f"{name}/{series} |T|={n}: {measured[series][n]:.6f}s "
                        f"vs baseline {recorded:.6f}s (>{REGRESSION_TOLERANCE}x)"
                    )
    if failures:
        print("\nPERFORMANCE REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nsmoke: engine timings within tolerance of BENCH_matching.json")
    return 0


# -- pytest entry points -------------------------------------------------------


def test_engine_speedup_vs_naive(benchmark):
    """The acceptance criterion: >=5x over the naive matcher at n=800."""
    document = flat_document(800)
    run = SERIES["f21"][2]
    naive = SERIES["f21"][3]
    rows = sweep([800], lambda n: lambda: naive(F21_PATTERN, document))
    naive_seconds = rows[0][1]
    rows = sweep(
        [800], lambda n: _cold(document, lambda: run(F21_PATTERN, document))
    )
    cold_seconds = rows[0][1]
    speedup = naive_seconds / max(cold_seconds, 1e-9)
    print(f"\n[engine] n=800 speedup: {speedup:.1f}x (naive {naive_seconds:.4f}s, "
          f"cold {cold_seconds:.4f}s)")
    assert speedup >= SPEEDUP_TARGET
    benchmark(lambda: run(F21_PATTERN, document))


def test_engine_counters_exposed(benchmark):
    """The stats counters move and reset as documented."""
    document = flat_document(200)
    document._engine = None
    find_matches(F21_PATTERN, document)
    stats = engine_for(document).stats
    assert stats.nodes_visited > 0
    assert stats.join_pairs > 0
    find_matches(F21_PATTERN, document)
    assert stats.cache_hits > 0
    stats.reset()
    assert all(v == 0 for v in stats.as_dict().values())
    benchmark(lambda: matches_at_root(BOOLEAN_PATTERN, document))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="compare engine timings against the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite BENCH_matching.json from a full run")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    results = run_full()
    for name, data in results.items():
        if "speedup_cold" in data:
            assert data["speedup_cold"] >= SPEEDUP_TARGET, (
                f"{name}: speedup {data['speedup_cold']:.1f}x below target"
            )
    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
