"""Mapping-linter latency guard: lint must be cheap next to solving.

The linter's value proposition is a zero-solver pre-flight check, so it
has to stay an order of magnitude faster than actually deciding the
problem.  For each Figure 1 consistency family this guard times
``repro.analysis.lint_mapping`` (full pass set, fresh context) against a
*cold* ``solve()`` of the same mapping (fresh :class:`ExecutionContext`
with the compilation cache disabled, so every solve pays compilation)
and journals the per-family numbers into ``BENCH_lint.json``.  The
acceptance bar is the **aggregate** ratio across the families: total
cold-solve time must exceed ``SPEEDUP_BAR`` times the total lint time.
Per-family ratios are journaled but not individually gated — in the
PTIME cells (F1.2) solving is genuinely cheap and lint rightly costs
about the same; the EXPTIME cells are where the pre-flight check pays.
The bar was 10x against the pure-Python solver; the bitset automata
kernels cut cold-solve time ~6x at the smoke sizes, so the gate now
holds lint to 2x of the *faster* solver (the ratio widens again with
``n`` — the EXPTIME curve outruns lint's polynomial pass set).

A second guard covers the auto-repair path: ``fix_mapping`` (lint plus
quick-fix inference) must stay within ``FIX_OVERHEAD_BAR`` times plain
lint, aggregated across the same families.  On clean mappings fix
inference is nearly free — no fixable diagnostics means no verification
solves — which is exactly what the guard pins down: proposing fixes must
not tax the pre-flight path when there is nothing to fix.  A seeded
broken mapping is also journaled (``fix-broken`` record) so the *cost of
actually certifying repairs* — one ``solve()`` per candidate — stays
visible in the trajectory, but it is not gated: certification is
solver-priced by design.

``--smoke`` runs fewer repeats for the CI gate; run directly for the
full series.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import emit_json

from repro.analysis import fix_mapping, lint_mapping
from repro.mappings.io import parse_mapping
from repro.engine import CompilationCache, ExecutionContext, solve
from repro.engine.problems import ConsistencyProblem
from repro.workloads.families import (
    cons_arbitrary_family,
    cons_nested_family,
    cons_next_sibling_family,
)

#: Aggregate lint time must be at least this many times below aggregate
#: cold-solve time across the F1 families (recalibrated from 10x when
#: the bitset kernels made cold solving itself several times faster).
SPEEDUP_BAR = 2.0

#: Aggregate ``fix_mapping`` time (lint + quick-fix inference) across
#: the F1 families must stay within this factor of plain lint.
FIX_OVERHEAD_BAR = 2.0

#: Seeded breakage for the ungated ``fix-broken`` journal record: one
#: unknown label, duplicate stds and a subsumed std, so certifying the
#: repairs exercises the solver.
BROKEN_TEXT = """\
source:
    r -> a*
    a(x)
target:
    t -> b*
    b(u)
std: r[aa(x)] -> t[b(x)]
std: r[a(y)] -> t[b(y)]
std: r[a(z)] -> t[b(z)]
std: r[a(x), a(y)] -> t[b(x)]
"""

#: (label, claim, family constructor, size)
WORKLOADS: list[tuple[str, str, Callable, int]] = [
    (
        "F1.1-family",
        "CONS(⇓) arbitrary DTDs (EXPTIME cell)",
        cons_arbitrary_family,
        5,
    ),
    (
        "F1.2-family",
        "CONS(⇓) nested-relational DTDs (PTIME cell)",
        cons_nested_family,
        16,
    ),
    (
        "F1.3-family",
        "CONS(⇓,⇒) next-sibling chains (EXPTIME cell)",
        cons_next_sibling_family,
        8,
    ),
]


def _mean_seconds(run: Callable[[], object], repeats: int) -> float:
    total = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        total += time.perf_counter() - started
    return total / repeats


def measure_family(
    label: str, claim: str, family: Callable, n: int, repeats: int
) -> dict:
    """Lint vs cold-solve timings for one family (no assertion here)."""
    mapping = family(n)
    problem = ConsistencyProblem(mapping)

    def lint_once() -> object:
        return lint_mapping(mapping, name=label)

    def fix_once() -> object:
        return fix_mapping(mapping, name=label)

    def solve_cold() -> object:
        context = ExecutionContext(cache=CompilationCache(enabled=False))
        return solve(problem, context)

    lint_once()  # warm lazy imports out of the timings
    fix_once()
    solve_cold()
    lint_seconds = _mean_seconds(lint_once, repeats)
    fix_seconds = _mean_seconds(fix_once, repeats)
    solve_seconds = _mean_seconds(solve_cold, repeats)
    report = lint_once()
    record = {
        "claim": claim,
        "n": n,
        "lint_seconds": lint_seconds,
        "fix_seconds": fix_seconds,
        "fix_overhead": fix_seconds / max(lint_seconds, 1e-9),
        "cold_solve_seconds": solve_seconds,
        "speedup": solve_seconds / max(lint_seconds, 1e-9),
        "repeats": repeats,
        "diagnostics": list(report.codes()),
        "fragment": report.fragment,
    }
    print(
        f"[{label}] lint {lint_seconds:.6f}s vs cold solve "
        f"{solve_seconds:.6f}s -> {record['speedup']:.1f}x "
        f"(fix overhead {record['fix_overhead']:.2f}x, n={n})"
    )
    return record


def measure_broken(repeats: int) -> dict:
    """Journal (but never gate) the cost of certifying actual repairs."""
    mapping = parse_mapping(BROKEN_TEXT)

    def lint_once() -> object:
        return lint_mapping(mapping, name="fix-broken")

    def fix_once() -> object:
        return fix_mapping(mapping, name="fix-broken")

    lint_once()
    __, fixes = fix_mapping(mapping, name="fix-broken")
    lint_seconds = _mean_seconds(lint_once, repeats)
    fix_seconds = _mean_seconds(fix_once, repeats)
    record = {
        "claim": "certifying repairs is solver-priced (journaled, ungated)",
        "lint_seconds": lint_seconds,
        "fix_seconds": fix_seconds,
        "fix_overhead": fix_seconds / max(lint_seconds, 1e-9),
        "fixes_offered": len(fixes),
        "repeats": repeats,
    }
    print(
        f"[fix-broken] lint {lint_seconds:.6f}s vs lint+fix "
        f"{fix_seconds:.6f}s -> {record['fix_overhead']:.2f}x "
        f"({len(fixes)} verified fix(es))"
    )
    return record


def run_guard(smoke: bool = False, emit: bool = True, attempts: int = 3) -> int:
    repeats = 3 if smoke else 5
    aggregate = 0.0
    fix_overhead = 0.0
    records: dict[str, dict] = {}
    for attempt in range(attempts):
        records = {
            label: measure_family(label, claim, family, n, repeats)
            for label, claim, family, n in WORKLOADS
        }
        lint_total = sum(r["lint_seconds"] for r in records.values())
        fix_total = sum(r["fix_seconds"] for r in records.values())
        solve_total = sum(r["cold_solve_seconds"] for r in records.values())
        aggregate = solve_total / max(lint_total, 1e-9)
        fix_overhead = fix_total / max(lint_total, 1e-9)
        print(
            f"[lint-bench] aggregate: lint {lint_total:.6f}s vs cold solve "
            f"{solve_total:.6f}s -> {aggregate:.1f}x (bar {SPEEDUP_BAR:.0f}x); "
            f"fix overhead {fix_overhead:.2f}x (bar {FIX_OVERHEAD_BAR:.0f}x, "
            f"attempt {attempt + 1}/{attempts})"
        )
        if aggregate >= SPEEDUP_BAR and fix_overhead <= FIX_OVERHEAD_BAR:
            break
    broken = measure_broken(repeats)
    if emit:
        for label, record in records.items():
            emit_json("lint", label, record)
        emit_json("lint", "fix-broken", broken)
        emit_json("lint", "aggregate", {
            "claim": f"lint is a >= {SPEEDUP_BAR:.0f}x cheaper pre-flight "
            "check than cold solving across the F1 families",
            "speedup": aggregate,
            "speedup_bar": SPEEDUP_BAR,
            "fix_overhead": fix_overhead,
            "fix_overhead_bar": FIX_OVERHEAD_BAR,
            "families": sorted(records),
        })
    assert aggregate >= SPEEDUP_BAR, (
        f"aggregate lint speedup {aggregate:.1f}x below the "
        f"{SPEEDUP_BAR:.0f}x bar"
    )
    assert fix_overhead <= FIX_OVERHEAD_BAR, (
        f"aggregate fix-inference overhead {fix_overhead:.2f}x above the "
        f"{FIX_OVERHEAD_BAR:.0f}x bar"
    )
    return 0


# -- pytest entry point --------------------------------------------------------


def test_lint_faster_than_cold_solve():
    run_guard(smoke=True, emit=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer repeats for the CI gate")
    args = parser.parse_args(argv)
    try:
        return run_guard(smoke=args.smoke)
    except AssertionError as error:
        print(f"FAIL: {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
