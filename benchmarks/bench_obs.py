"""Observability overhead guard and trace-artifact smoke (DESIGN.md §Observability).

Instrumentation must be near-free when nobody is looking.  The guard
times a fixed serial solve workload twice — once as shipped (registry
enabled, no trace collector installed) and once with the registry
disabled (the true no-obs baseline) — and fails when the idle
instrumentation costs more than ``OVERHEAD_TOLERANCE`` (default 5%,
override with ``REPRO_OBS_TOLERANCE``).  Timings take the min over
several runs and the comparison retries before failing, so a loaded CI
runner gets the benefit of the doubt but a real regression does not.

``--smoke`` runs the guard at reduced size, then a traced ``jobs=2``
batch whose merged span log is written to ``BENCH_trace_smoke.jsonl``
(the artifact CI uploads) and whose Prometheus export must parse clean.

Run directly (``python benchmarks/bench_obs.py``) for the full guard.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import REPO_ROOT, emit_json

from repro.engine import CompilationCache, ExecutionContext, solve, solve_many
from repro.engine.problems import ConsistencyProblem, SatisfiabilityProblem
from repro.obs import REGISTRY, collecting, parse_prometheus, tracing_active
from repro.patterns.parser import parse_pattern
from repro.workloads.families import cons_nested_family
from repro.xmlmodel.dtd import parse_dtd

OVERHEAD_TOLERANCE = float(os.environ.get("REPRO_OBS_TOLERANCE", "0.05"))
SESSION_TOLERANCE = float(os.environ.get("REPRO_SESSION_TOLERANCE", "0.10"))
TRACE_ARTIFACT = REPO_ROOT / "BENCH_trace_smoke.jsonl"


def _workload(scale: int = 4):
    """A fixed, deterministic serial solve loop (fresh cache per run, so
    both timed arms pay identical compilation work)."""
    problems = [ConsistencyProblem(cons_nested_family(n)) for n in range(2, 2 + scale)]
    problems += [
        SatisfiabilityProblem(parse_dtd("r -> a*, b?"), parse_pattern(p))
        for p in ("r/a", "r/b", "r//a")
    ]

    def run() -> None:
        context = ExecutionContext(cache=CompilationCache())
        for problem in problems:
            solve(problem, context)

    return run


def _best_of(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def run_overhead_guard(
    scale: int = 4, repeats: int = 5, attempts: int = 3, emit: bool = True
) -> dict:
    """Idle instrumentation vs the registry-disabled baseline.

    Returns the record; raises ``AssertionError`` when the overhead
    exceeds the tolerance on every attempt.
    """
    assert not tracing_active(), "guard must run without a trace collector"
    run = _workload(scale)
    run()  # warm lazy imports and interned parse artifacts out of the timing
    overhead = float("inf")
    baseline = observed = 0.0
    for _ in range(attempts):
        REGISTRY.enabled = False
        try:
            baseline = _best_of(run, repeats)
        finally:
            REGISTRY.enabled = True
        observed = _best_of(run, repeats)
        overhead = observed / max(baseline, 1e-9) - 1.0
        if overhead <= OVERHEAD_TOLERANCE:
            break
    record = {
        "claim": "idle observability stays within "
        f"{OVERHEAD_TOLERANCE:.0%} of the no-obs baseline",
        "baseline_seconds": baseline,
        "observed_seconds": observed,
        "overhead": overhead,
        "tolerance": OVERHEAD_TOLERANCE,
        "repeats": repeats,
    }
    print(
        f"[obs-guard] baseline {baseline:.6f}s, instrumented {observed:.6f}s "
        f"-> overhead {overhead:+.2%} (tolerance {OVERHEAD_TOLERANCE:.0%})"
    )
    if emit:
        emit_json("obs", "overhead_guard", record)
    assert overhead <= OVERHEAD_TOLERANCE, (
        f"idle observability overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_TOLERANCE:.0%} (baseline {baseline:.6f}s, "
        f"observed {observed:.6f}s)"
    )
    return record


def run_session_overhead_guard(
    scale: int = 4, repeats: int = 5, attempts: int = 3, emit: bool = True
) -> dict:
    """Per-request service-session envelope vs direct ``solve()`` calls.

    The service layer wraps every request in ID generation, ambient span
    tags, a request span, metric observations and response-dict
    building.  Both arms share one warm compilation cache and re-parse
    the mapping text per request (the session's contract), so the
    measured difference is exactly that envelope — it must stay within
    ``SESSION_TOLERANCE`` (default 10%, override with
    ``REPRO_SESSION_TOLERANCE``).
    """
    from repro.engine import AbsoluteConsistencyProblem
    from repro.mappings.io import parse_mapping, render_mapping
    from repro.service import EngineSession
    from repro.workloads.families import cons_nested_family

    texts = [render_mapping(cons_nested_family(n)) for n in range(2, 2 + scale)]
    session = EngineSession()
    cache = session.cache

    def direct() -> None:
        for text in texts:
            mapping = parse_mapping(text)
            context = ExecutionContext(cache=cache)
            solve(ConsistencyProblem(mapping), context)
            solve(AbsoluteConsistencyProblem(mapping), context)

    def via_session() -> None:
        for text in texts:
            response = session.check({"mappings": [text]})
            assert response["ok"], response.get("error")

    direct()
    via_session()  # warm the shared cache and lazy imports out of the timing
    overhead = float("inf")
    baseline = observed = 0.0
    for _ in range(attempts):
        baseline = _best_of(direct, repeats)
        observed = _best_of(via_session, repeats)
        overhead = observed / max(baseline, 1e-9) - 1.0
        if overhead <= SESSION_TOLERANCE:
            break
    record = {
        "claim": "per-request session envelope stays within "
        f"{SESSION_TOLERANCE:.0%} of direct solve() calls",
        "baseline_seconds": baseline,
        "observed_seconds": observed,
        "overhead": overhead,
        "tolerance": SESSION_TOLERANCE,
        "requests_per_run": len(texts),
        "repeats": repeats,
    }
    print(
        f"[obs-session] direct {baseline:.6f}s, session {observed:.6f}s "
        f"-> overhead {overhead:+.2%} (tolerance {SESSION_TOLERANCE:.0%})"
    )
    if emit:
        emit_json("obs", "session_overhead_guard", record)
    assert overhead <= SESSION_TOLERANCE, (
        f"per-request session overhead {overhead:+.2%} exceeds "
        f"{SESSION_TOLERANCE:.0%} (direct {baseline:.6f}s, "
        f"session {observed:.6f}s)"
    )
    return record


def run_flight_overhead_guard(
    scale: int = 4, repeats: int = 5, attempts: int = 3, emit: bool = True
) -> dict:
    """Flight recorder on vs off over one warm session.

    Recorder-on means what every served request pays since the flight
    recorder became always-on: per-request span collection, tree
    serialization, the trace-rollup walk and the ring-buffer push.
    Recorder-off (``FlightRecorder(enabled=False)``) restores the old
    trace-on-demand path on the *same* session — same warm cache, same
    request parsing — so the measured difference is exactly the
    recording cost.  It must stay within ``OVERHEAD_TOLERANCE``
    (default 5%, override with ``REPRO_OBS_TOLERANCE``).
    """
    from repro.mappings.io import render_mapping
    from repro.obs import FlightRecorder
    from repro.service import EngineSession

    texts = [render_mapping(cons_nested_family(n)) for n in range(2, 2 + scale)]
    # a slow threshold no request reaches: the guard measures the idle
    # recording path, not the slow-log sink
    session = EngineSession(
        flight=FlightRecorder(capacity=64, slow_ms=float("inf"))
    )

    def run() -> None:
        for text in texts:
            response = session.check({"mappings": [text]})
            assert response["ok"], response.get("error")

    run()  # warm the shared cache and lazy imports out of the timing
    overhead = float("inf")
    baseline = observed = 0.0
    for _ in range(attempts):
        session.flight.enabled = False
        try:
            baseline = _best_of(run, repeats)
        finally:
            session.flight.enabled = True
        observed = _best_of(run, repeats)
        overhead = observed / max(baseline, 1e-9) - 1.0
        if overhead <= OVERHEAD_TOLERANCE:
            break
    record = {
        "claim": "always-on flight recording stays within "
        f"{OVERHEAD_TOLERANCE:.0%} of the recorder-off session",
        "baseline_seconds": baseline,
        "observed_seconds": observed,
        "overhead": overhead,
        "tolerance": OVERHEAD_TOLERANCE,
        "requests_per_run": len(texts),
        "repeats": repeats,
    }
    print(
        f"[obs-flight] recorder-off {baseline:.6f}s, recorder-on "
        f"{observed:.6f}s -> overhead {overhead:+.2%} "
        f"(tolerance {OVERHEAD_TOLERANCE:.0%})"
    )
    if emit:
        emit_json("obs", "flight_overhead_guard", record)
    assert overhead <= OVERHEAD_TOLERANCE, (
        f"flight-recorder overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_TOLERANCE:.0%} (recorder-off {baseline:.6f}s, "
        f"recorder-on {observed:.6f}s)"
    )
    return record


def run_trace_smoke(jobs: int = 2) -> int:
    """Traced parallel batch: writes the JSONL artifact, checks the export."""
    problems = [ConsistencyProblem(cons_nested_family(n)) for n in range(2, 8)]
    with collecting("bench-obs-smoke", jobs=jobs) as tree:
        batch = solve_many(problems, jobs=jobs, chunk_size=1)
    TRACE_ARTIFACT.write_text(tree.jsonl())
    spans = tree.jsonl().count("\n")
    solve_spans = tree.jsonl().count('"name": "solve"')
    print(
        f"[obs-smoke] {len(problems)} problems over {jobs} jobs: "
        f"{spans} spans ({solve_spans} solves) -> {TRACE_ARTIFACT.name}"
    )
    failures = []
    if solve_spans < len(problems):
        failures.append(
            f"merged trace covers {solve_spans}/{len(problems)} solves"
        )
    if batch.report.trace is None:
        failures.append("batch report carries no merged trace")
    try:
        series = parse_prometheus(REGISTRY.render_prometheus())
    except ValueError as error:
        failures.append(f"prometheus export does not parse: {error}")
    else:
        names = {key.split("{", 1)[0] for key in series}
        for required in ("repro_solves_total", "repro_worker_chunks_total"):
            if required not in names:
                failures.append(f"missing series {required}")
    for failure in failures:
        print(f"[obs-smoke] FAIL: {failure}")
    return 1 if failures else 0


# -- pytest entry points -------------------------------------------------------


def test_obs_overhead_within_tolerance():
    run_overhead_guard(scale=2, repeats=3, emit=False)


def test_session_overhead_within_tolerance():
    run_session_overhead_guard(scale=2, repeats=3, emit=False)


def test_flight_overhead_within_tolerance():
    run_flight_overhead_guard(scale=2, repeats=3, emit=False)


def test_obs_trace_smoke(tmp_path, monkeypatch):
    monkeypatch.setattr(
        sys.modules[__name__], "TRACE_ARTIFACT", tmp_path / "trace.jsonl"
    )
    assert run_trace_smoke(jobs=2) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-size guard + trace artifact for CI")
    args = parser.parse_args(argv)
    try:
        if args.smoke:
            run_overhead_guard(scale=2, repeats=3)
            run_session_overhead_guard(scale=2, repeats=3)
            run_flight_overhead_guard(scale=2, repeats=3)
            return run_trace_smoke()
        run_overhead_guard()
        run_session_overhead_guard()
        run_flight_overhead_guard()
        return run_trace_smoke()
    except AssertionError as error:
        print(f"FAIL: {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
