"""Figure 2, membership in [[M]] — experiments F2.3 and F2.4.

==============================  ======================  =====================
cell                            paper                   measured here
==============================  ======================  =====================
mapping membership, data        DLOGSPACE-complete      near-linear (F2.3)
mapping membership, combined    Pi_2^p-complete         exp. in #vars (F2.4)
  fixed number of variables     PTIME                   polynomial (F2.4b)
==============================  ======================  =====================
"""

from harness import print_table, sweep

from repro.mappings.membership import is_solution
from repro.workloads.families import (
    flat_document,
    membership_mapping,
    target_document,
)


def test_f23_membership_data(benchmark):
    """F2.3: fixed mapping, growing documents — low data complexity."""
    mapping = membership_mapping(2)
    def make(n):
        source, target = flat_document(n), target_document(n)
        return lambda: is_solution(mapping, source, target)

    rows = sweep([10, 20, 40, 80, 160], make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F2.3",
        "mapping membership, data complexity: DLOGSPACE-complete",
        rows,
        size_label="|T|",
        note="the mapping (2 variables) is fixed; only the documents grow",
    )
    benchmark(
        lambda: is_solution(mapping, flat_document(80), target_document(80))
    )


def test_f24_membership_combined_variables(benchmark):
    """F2.4: the number of variables drives the Pi_2^p blow-up."""
    def make(k):
        mapping = membership_mapping(k)
        source, target = flat_document(12), target_document(12)
        return lambda: is_solution(mapping, source, target)

    rows = sweep([1, 2, 3, 4], make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F2.4",
        "mapping membership, combined complexity: Pi_2^p-complete",
        rows,
        size_label="#vars",
        note="fixed documents (12 items); source matches grow like 12^k",
    )
    benchmark(
        lambda: is_solution(
            membership_mapping(3), flat_document(12), target_document(12)
        )
    )


def test_f24b_membership_fixed_arity(benchmark):
    """F2.4b: with the arity fixed, combined complexity is PTIME."""
    mapping = membership_mapping(2)

    def make(n):
        source, target = flat_document(n), target_document(n)
        return lambda: is_solution(mapping, source, target)

    rows = sweep([10, 20, 40, 80], make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F2.4b",
        "membership with fixed arity: PTIME (Theorem 4.3)",
        rows,
        size_label="|T|",
        note="2 variables fixed; documents grow — polynomial growth",
    )
    benchmark(
        lambda: is_solution(
            membership_mapping(2), flat_document(40), target_document(40)
        )
    )
