"""Ablations — experiments A1–A3 (design choices called out in DESIGN.md).

* A1: dead-state pruning in the automata reachability (the lazy product
  exploration) — with vs without.
* A2: growth of the closure automaton's realized state space with the
  number of tracked patterns.
* A3: trigger-set reachability (one automaton pass) vs the naive
  2^|Sigma| subset enumeration for consistency.
"""

import itertools

from harness import print_table, sweep

from repro.automata.dtd_automaton import DTDAutomaton
from repro.automata.duta import ProductAutomaton, reachable_states
from repro.automata.pattern_automaton import PatternClosureAutomaton
from repro.consistency import is_consistent_automata
from repro.patterns.satisfiability import structural_witness
from repro.patterns.ast import Pattern
from repro.workloads.families import cons_arbitrary_family


def _product(mapping):
    dtd = mapping.source_dtd
    patterns = [std.source for std in mapping.stds]
    extra = frozenset(
        label for pattern in patterns for label in pattern.labels_used()
    )
    closure = PatternClosureAutomaton(
        patterns, extra_labels=dtd.labels | extra, arity_of=dtd.arity
    )
    dtd_automaton = DTDAutomaton(dtd, extra_labels=extra)
    return dtd_automaton, ProductAutomaton([dtd_automaton, closure])


def test_a1_pruning_ablation(benchmark):
    """A1: dead-state pruning is what makes the EXPTIME algorithm usable."""

    def pruned(n: int) -> int:
        dtd_automaton, product = _product(cons_arbitrary_family(n))
        realized = reachable_states(
            product,
            prune=lambda state: not state[0][1],
            prune_horizontal=lambda label, h: dtd_automaton.horizontal_dead(h[0]),
        )
        return len(realized)

    def unpruned(n: int) -> int:
        __, product = _product(cons_arbitrary_family(n))
        realized = reachable_states(product)
        return len(realized)

    pruned_rows = sweep(range(1, 5), lambda n: lambda: pruned(n))
    print_table(
        "A1a",
        "reachability WITH dead-state pruning (states realized)",
        pruned_rows,
        size_label="choices",
    )
    unpruned_rows = sweep([1], lambda n: lambda: unpruned(n))
    print_table(
        "A1b",
        "reachability WITHOUT pruning (same answers, far more states)",
        unpruned_rows,
        size_label="choices",
        note="n capped at 1: already ~1000x slower than the pruned search",
    )
    benchmark(lambda: pruned(3))


def test_a2_closure_automaton_growth(benchmark):
    """A2: realized closure-automaton states vs number of tracked patterns."""

    def measure(n: int) -> int:
        mapping = cons_arbitrary_family(n)
        dtd_automaton, product = _product(mapping)
        realized = reachable_states(
            product,
            prune=lambda state: not state[0][1],
            prune_horizontal=lambda label, h: dtd_automaton.horizontal_dead(h[0]),
        )
        return len(realized)

    rows = sweep(range(1, 6), lambda n: lambda: measure(n))
    print_table(
        "A2",
        "closure-automaton state growth (the EXPTIME lives here)",
        rows,
        size_label="choices",
        note="result column = realized (DTD x closure) states on the source side",
    )
    benchmark(lambda: measure(3))


def test_a3_triggersets_vs_subset_enumeration(benchmark):
    """A3: one automaton pass vs enumerating all 2^|Sigma| trigger subsets."""

    def subset_enumeration(mapping) -> bool:
        """The textbook algorithm: guess the triggered subset J."""
        stds = mapping.stds
        for bits in itertools.product((False, True), repeat=len(stds)):
            chosen = [std for std, bit in zip(stds, bits) if bit]
            skipped = [std for std, bit in zip(stds, bits) if not bit]
            # source side: some tree triggering at most J
            source_ok = _source_avoids(mapping, skipped)
            if not source_ok:
                continue
            if all(
                structural_witness(mapping.target_dtd, std.target.strip_values())
                is not None
                for std in chosen
            ):
                # joint satisfiability approximated by individual checks
                # (enough for this family's shape)
                return True
        return False

    def _source_avoids(mapping, skipped) -> bool:
        dtd_automaton, product = _product(mapping)
        closure = product.components[1]
        skipped_patterns = {std.source for std in skipped}
        realized = reachable_states(
            product,
            prune=lambda state: not state[0][1],
            prune_horizontal=lambda label, h: dtd_automaton.horizontal_dead(h[0]),
        )
        for state, __ in realized.items():
            if not dtd_automaton.is_accepting(state[0]):
                continue
            sat = state[1][0]
            if not (sat & skipped_patterns):
                return True
        return False

    fast_rows = sweep(
        range(1, 5),
        lambda n: lambda: is_consistent_automata(cons_arbitrary_family(n)),
    )
    print_table(
        "A3a",
        "trigger-set reachability (one pass, all subsets at once)",
        fast_rows,
        size_label="choices",
    )
    slow_rows = sweep(
        range(1, 4),
        lambda n: lambda: subset_enumeration(cons_arbitrary_family(n)),
    )
    print_table(
        "A3b",
        "naive 2^|Sigma| subset enumeration (2n stds -> 4^n subsets)",
        slow_rows,
        size_label="choices",
    )
    benchmark(lambda: is_consistent_automata(cons_arbitrary_family(3)))


def test_a4_engine_vs_naive_matcher(benchmark):
    """A4: indexed hash-join engine vs the original nested-loop matcher."""
    from repro.patterns.matching import engine_for, find_matches, matches_at_root
    from repro.patterns.parser import parse_pattern
    from repro.verification.oracle import naive_find_matches, naive_matches_at_root
    from repro.workloads.families import flat_document

    pattern = parse_pattern("r[a(x) ->* a(y), //a(z)]")
    sizes = [100, 200, 400]
    documents = {n: flat_document(n) for n in sizes}

    naive_rows = sweep(
        sizes, lambda n: lambda: len(naive_find_matches(pattern, documents[n]))
    )
    print_table("A4a", "naive matcher (nested-loop joins, no index)",
                naive_rows, size_label="|T|")

    def cold(n):
        def run():
            documents[n]._engine = None
            return len(find_matches(pattern, documents[n]))
        return run

    engine_rows = sweep(sizes, cold)
    print_table("A4b", "indexed engine (hash joins, rebuilt per call)",
                engine_rows, size_label="|T|")

    # counters from one cold evaluation at the largest size: join_pairs is
    # what the hash join actually merged, vs the |L|x|R| a nested loop scans
    document = documents[max(sizes)]
    document._engine = None
    find_matches(pattern, document)
    print(f"[A4] engine counters: {engine_for(document).stats}")

    # label pruning: a pattern over an absent label dies in the bitset test
    absent = parse_pattern("r[//zzz(x)]")
    stats = engine_for(document).stats
    stats.reset()
    assert not matches_at_root(absent, document)
    assert naive_matches_at_root(absent, document) is False
    print(f"[A4] absent-label counters: {stats} (no tree walk)")
    assert stats.index_prunes > 0

    benchmark(cold(200))
