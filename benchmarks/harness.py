"""Shared helpers for the figure benchmarks.

Every benchmark reproduces one cell of the paper's Figure 1 or Figure 2:
it prints the paper's claimed complexity next to a measured scaling series
so the *shape* (polynomial vs exponential growth, and where the
tractability frontier falls) can be compared directly.  Absolute numbers
are not the point — the substrate is a Python library, not the authors'
formal machines.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from pathlib import Path
from typing import Callable, Iterable, NamedTuple, Sequence

#: ``BENCH_fig1.json`` / ``BENCH_fig2.json`` live at the repository root.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Version of the ``BENCH_*.json`` layout.  2 added the ``_meta`` block
#: (schema version + run environment) and per-point span breakdowns.
SCHEMA_VERSION = 2


def run_environment(jobs: int | None = None) -> dict:
    """The run-environment block journaled under ``_meta.environment``.

    Numbers from different machines are not comparable; this records
    enough to tell them apart when reading a trajectory file.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "jobs": jobs if jobs is not None else os.cpu_count() or 1,
    }


class SweepPoint(NamedTuple):
    """One measured point: size, mean seconds, last result, sample count.

    Unpacks like the historical ``(n, seconds, result)`` triple for
    existing consumers; ``samples`` records how many runs entered the
    mean (1 = a single cold measurement).
    """

    n: int
    seconds: float
    result: object
    samples: int = 1


def time_once(action: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = action()
    return time.perf_counter() - start, result


def sweep(
    sizes: Iterable[int],
    make_action: Callable[[int], Callable[[], object]],
    min_repeat_seconds: float = 0.01,
    min_samples: int = 3,
) -> list[SweepPoint]:
    """Run ``make_action(n)()`` per size; fast points are repeated and averaged.

    The first call pays one-time costs (lazy imports, caches warming up),
    so once a point proves fast enough to repeat, that cold sample is
    *discarded* and only warm runs enter the average.  Slow points are
    measured at least *min_samples* times and report the **minimum** —
    for a deterministic computation the minimum is the least-noise
    estimate (everything above it is scheduler/GC interference), whereas
    a mean would smear interference into the curve.
    """
    rows: list[SweepPoint] = []
    for n in sizes:
        action = make_action(n)
        elapsed, result = time_once(action)
        repeats = 1
        warm_only = False
        while elapsed < min_repeat_seconds and repeats < 1000:
            more = max(1, int(min_repeat_seconds / max(elapsed / repeats, 1e-9)))
            start = time.perf_counter()
            for __ in range(more):
                result = action()
            batch = time.perf_counter() - start
            if warm_only:
                elapsed += batch
                repeats += more
            else:
                elapsed, repeats, warm_only = batch, more, True
        if not warm_only:
            # slow point: min-of-K, never a lone cold sample
            best = elapsed
            while repeats < max(min_samples, 1):
                seconds, result = time_once(action)
                if seconds < best:
                    best = seconds
                repeats += 1
            rows.append(SweepPoint(n, best, result, repeats))
        else:
            rows.append(SweepPoint(n, elapsed / repeats, result, repeats))
    return rows


def batch_sweep(
    groups: Sequence[tuple[int, list]],
    jobs: int = 1,
    task_timeout: float | None = None,
    cache_dir=None,
    context=None,
    collect_traces: bool = False,
) -> list[SweepPoint]:
    """The parallel sweep mode: one ``solve_many`` batch per point.

    Each ``(n, problems)`` group is decided in a single batch; the point's
    result is the :class:`~repro.engine.parallel.BatchResult`, so callers
    can compare verdicts across serial/parallel runs and read the
    aggregated cache statistics.  With *collect_traces* each batch runs
    under a trace collector, so ``batch.report.trace`` carries the merged
    cross-process span tree and :func:`series_payload` journals the
    per-span breakdown next to the timing.
    """
    from repro.engine import solve_many

    points: list[SweepPoint] = []
    for n, problems in groups:
        started = time.perf_counter()
        if collect_traces:
            from repro.obs import collecting

            with collecting("batch-sweep", n=n, jobs=jobs):
                batch = solve_many(
                    problems,
                    jobs=jobs,
                    task_timeout=task_timeout,
                    cache_dir=cache_dir,
                    context=context,
                )
        else:
            batch = solve_many(
                problems,
                jobs=jobs,
                task_timeout=task_timeout,
                cache_dir=cache_dir,
                context=context,
            )
        points.append(
            SweepPoint(n, time.perf_counter() - started, batch, len(problems))
        )
    return points


def growth_ratios(rows: Sequence[tuple[int, float, object]]) -> list[float]:
    """Consecutive timing ratios — the eyeball test for poly vs exponential."""
    return [
        rows[i + 1][1] / rows[i][1] if rows[i][1] > 0 else float("inf")
        for i in range(len(rows) - 1)
    ]


def series_payload(
    rows: Sequence[SweepPoint], claim: str = "", note: str = "", **extra
) -> dict:
    """A JSON-ready record of one experiment's series.

    Every point carries its sample count next to the timing, so a reader
    of the trajectory files can tell a noisy single cold measurement from
    a repeat-averaged one.
    """
    points = []
    for row in rows:
        point = {
            "n": row[0],
            "seconds": row[1],
            "samples": row[3] if len(row) > 3 else 1,
            "result": repr(row[2]),
        }
        breakdown = span_breakdown_of(row[2])
        if breakdown:
            point["span_breakdown"] = breakdown
        points.append(point)
    payload = {"claim": claim, "note": note, "points": points}
    payload.update(extra)
    return payload


def span_breakdown_of(result: object) -> dict[str, float] | None:
    """Seconds per span name, when *result* carries a merged trace
    (a :class:`BatchResult` from a traced :func:`batch_sweep`)."""
    tree = getattr(getattr(result, "report", None), "trace", None)
    if not tree:
        return None
    try:
        from repro.obs import span_breakdown
    except ImportError:  # pragma: no cover - src/ not on sys.path
        return None
    return {
        name: round(seconds, 6)
        for name, seconds in sorted(span_breakdown(tree).items())
    }


def emit_json(
    figure: str, experiment: str, payload: dict, meta: dict | None = None
) -> Path:
    """Merge one experiment's record into the repo-root trajectory file.

    ``figure`` is ``"fig1"`` or ``"fig2"``; the record lands under
    *experiment* (e.g. ``"F1.1"``) in ``BENCH_<figure>.json``.  Several
    benchmark modules contribute to one file, so writes read-merge-write;
    an unreadable file is rebuilt from scratch rather than crashing the
    benchmark run.  Every write refreshes the ``_meta`` block
    (:data:`SCHEMA_VERSION` plus :func:`run_environment`), stamping the
    file with the machine that produced the latest numbers; *meta*
    entries (e.g. the kernel a ladder ran under) are merged on top.
    """
    path = REPO_ROOT / f"BENCH_{figure}.json"
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        data = {}
    data[experiment] = payload
    data["_meta"] = {
        "schema_version": SCHEMA_VERSION,
        "environment": run_environment(jobs=payload.get("jobs")),
    }
    if meta:
        data["_meta"].update(meta)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def print_table(
    experiment: str,
    claim: str,
    rows: Sequence[tuple[int, float, object]],
    size_label: str = "n",
    note: str = "",
) -> None:
    """Render one experiment's series in a fixed, grep-friendly format.

    Figure experiments (labels ``F1.*`` / ``F2.*``) are additionally
    journaled into the repo-root trajectory file for that figure, so a
    benchmark run leaves ``BENCH_fig1.json`` / ``BENCH_fig2.json`` behind
    without each module wiring up :func:`emit_json` itself.
    """
    match = re.match(r"F([12])\.", experiment)
    if match:
        emit_json(
            f"fig{match.group(1)}",
            experiment,
            series_payload(rows, claim=claim, note=note, size_label=size_label),
        )
    print()
    print(f"[{experiment}] paper: {claim}")
    if note:
        print(f"[{experiment}] note : {note}")
    header = f"[{experiment}] {size_label:>6} | {'seconds':>12} | {'samples':>7} | result"
    print(header)
    for row in rows:
        n, seconds, result = row[0], row[1], row[2]
        samples = row[3] if len(row) > 3 else 1
        print(f"[{experiment}] {n:>6} | {seconds:>12.6f} | {samples:>7} | {result}")
    ratios = growth_ratios(rows)
    if ratios:
        rendered = ", ".join(f"{r:.2f}x" for r in ratios)
        print(f"[{experiment}] growth: {rendered}")
