"""Shared helpers for the figure benchmarks.

Every benchmark reproduces one cell of the paper's Figure 1 or Figure 2:
it prints the paper's claimed complexity next to a measured scaling series
so the *shape* (polynomial vs exponential growth, and where the
tractability frontier falls) can be compared directly.  Absolute numbers
are not the point — the substrate is a Python library, not the authors'
formal machines.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence


def time_once(action: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = action()
    return time.perf_counter() - start, result


def sweep(
    sizes: Iterable[int],
    make_action: Callable[[int], Callable[[], object]],
    min_repeat_seconds: float = 0.01,
) -> list[tuple[int, float, object]]:
    """Run ``make_action(n)()`` per size; fast points are repeated and averaged.

    The first call pays one-time costs (lazy imports, caches warming up),
    so once a point proves fast enough to repeat, that cold sample is
    *discarded* and only warm runs enter the average.  Slow points keep
    their single cold measurement — it is the only sample there is.
    """
    rows: list[tuple[int, float, object]] = []
    for n in sizes:
        action = make_action(n)
        elapsed, result = time_once(action)
        repeats = 1
        warm_only = False
        while elapsed < min_repeat_seconds and repeats < 1000:
            more = max(1, int(min_repeat_seconds / max(elapsed / repeats, 1e-9)))
            start = time.perf_counter()
            for __ in range(more):
                result = action()
            batch = time.perf_counter() - start
            if warm_only:
                elapsed += batch
                repeats += more
            else:
                elapsed, repeats, warm_only = batch, more, True
        rows.append((n, elapsed / repeats, result))
    return rows


def growth_ratios(rows: Sequence[tuple[int, float, object]]) -> list[float]:
    """Consecutive timing ratios — the eyeball test for poly vs exponential."""
    return [
        rows[i + 1][1] / rows[i][1] if rows[i][1] > 0 else float("inf")
        for i in range(len(rows) - 1)
    ]


def print_table(
    experiment: str,
    claim: str,
    rows: Sequence[tuple[int, float, object]],
    size_label: str = "n",
    note: str = "",
) -> None:
    """Render one experiment's series in a fixed, grep-friendly format."""
    print()
    print(f"[{experiment}] paper: {claim}")
    if note:
        print(f"[{experiment}] note : {note}")
    header = f"[{experiment}] {size_label:>6} | {'seconds':>12} | result"
    print(header)
    for n, seconds, result in rows:
        print(f"[{experiment}] {n:>6} | {seconds:>12.6f} | {result}")
    ratios = growth_ratios(rows)
    if ratios:
        rendered = ", ".join(f"{r:.2f}x" for r in ratios)
        print(f"[{experiment}] growth: {rendered}")
