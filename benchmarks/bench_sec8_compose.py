"""Section 8 — closure under composition (experiments F8.1/F8.2).

Theorem 8.2's constructive composition is exercised two ways:

* F8.1 — compose-and-verify: random/parameterized Skolem-class pairs are
  composed syntactically and the result checked against the semantic
  composition on sampled instances; the table reports composition time
  and the size of the composed mapping.
* F8.1b — iterated composition: mapping chains are folded with compose();
  the composed std count/term depth growth is the price of closure
  (Skolem terms nest, SO-tgd preconditions appear).
"""

from harness import print_table, sweep

from repro.composition.compose import compose
from repro.composition.semantics import composition_contains
from repro.mappings.skolem import SkolemMapping, is_skolem_solution
from repro.workloads.families import skolem_copy_chain
from repro.xmlmodel.parser import parse_tree


def test_f81_compose_and_verify(benchmark):
    """F8.1: syntactic composition equals the semantic composition."""

    def build(n: int):
        return skolem_copy_chain(n, 0), skolem_copy_chain(n, 1)

    rows = sweep(
        range(1, 5),
        lambda n: lambda: len(compose(*build(n)).stds),
    )
    print_table(
        "F8.1",
        "Theorem 8.2: the Skolem class is closed under composition",
        rows,
        size_label="rels",
        note="result column = number of composed stds",
    )
    # semantic verification on a sampled pair (n = 2)
    m01, m12 = build(2)
    m02 = compose(m01, m12)
    m02.check_composable_class()
    t0 = parse_tree("s0[s0rel0(7)]")
    t2_good = parse_tree("s2[s2rel0(7), s2rel1(9), s2rel1(5), s2rel0(4)]")
    direct = is_skolem_solution(m02, t0, t2_good)
    semantic = composition_contains(
        m01, m12, t0, t2_good, max_mid_size=3, extra_fresh=1, skolem=True
    )
    assert direct == semantic
    benchmark(lambda: compose(*build(2)))


def test_f81b_iterated_composition(benchmark):
    """F8.1b: folding a chain of mappings; composed-mapping growth."""

    def fold(depth: int):
        mapping = skolem_copy_chain(2, 0)
        for stage in range(1, depth):
            mapping = compose(mapping, skolem_copy_chain(2, stage))
        return mapping

    def measure(depth: int):
        mapping = fold(depth)
        mapping.check_composable_class()
        stds = len(mapping.stds)
        longest = max(len(str(std)) for std in mapping.stds)
        return f"{stds} stds, longest {longest} chars"

    rows = sweep(range(1, 5), lambda depth: lambda: measure(depth))
    print_table(
        "F8.1b",
        "iterated composition stays in the class (closure), at a size cost",
        rows,
        size_label="depth",
        note="Skolem terms nest once per stage; SO-tgd preconditions appear",
    )
    benchmark(lambda: fold(3))


def test_f82_outside_class_examples(benchmark):
    """F8.2: Prop 8.1 — the gallery pairs cannot be composed syntactically.

    Semantic verification of the disjunctive compositions lives in
    tests/test_composition_closure.py; here we record that compose()
    refuses each breaking feature (and time the semantic decision of one
    disjunctive composition instance, which is all that remains possible).
    """
    import pytest

    from repro.composition.gallery import (
        descendant_pair,
        inequality_pair,
        next_sibling_pair,
        unstarred_attribute_pair,
        wildcard_pair,
    )
    from repro.errors import NotInClassError

    refused = []
    for factory in (wildcard_pair, descendant_pair, next_sibling_pair,
                    inequality_pair, unstarred_attribute_pair):
        with pytest.raises(NotInClassError):
            compose(*factory())
        refused.append(factory.__name__)
    print(f"\n[F8.2] compose() refuses (Prop 8.1): {', '.join(refused)}")
    m12, m23 = wildcard_pair()
    source, final = parse_tree("r"), parse_tree("r[c1]")
    assert composition_contains(m12, m23, source, final, max_mid_size=3)
    benchmark(
        lambda: composition_contains(m12, m23, source, final, max_mid_size=3)
    )
