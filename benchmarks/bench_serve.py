"""Service-layer acceptance benchmark: warm daemon vs cold CLI (DESIGN.md §8).

The point of ``repro serve`` is amortization: a daemon keeps the
compilation cache, worker pool and parsed artifacts warm across
requests, while every CLI invocation pays interpreter boot, imports and
cold compilation from scratch.  This benchmark measures the Figure-1
example workload (``examples/mappings/university.xsm``) both ways:

* **cold CLI** — ``python -m repro check examples/mappings/university.xsm``
  as a fresh subprocess per run (min over several runs);
* **warm HTTP** — a ``check`` round trip against an in-process
  :class:`ServiceServer` whose session has already served the mapping
  once (min over several runs).

The acceptance bar: the warm HTTP round trip must be at least
``SPEEDUP_BAR`` (default 5x, override with ``REPRO_SERVE_BAR``) faster
than the cold CLI.  Results are journaled to ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import REPO_ROOT, emit_json

from repro.service import EngineSession, ServiceServer, call_service

SPEEDUP_BAR = float(os.environ.get("REPRO_SERVE_BAR", "5.0"))
MAPPING_FILE = REPO_ROOT / "examples" / "mappings" / "university.xsm"


def _cold_cli_seconds(repeats: int) -> float:
    """Min wall-clock of a full cold CLI invocation (interpreter + solve)."""
    command = [sys.executable, "-m", "repro", "check", str(MAPPING_FILE)]
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = subprocess.run(
            command, env=env, cwd=REPO_ROOT, capture_output=True, text=True
        )
        elapsed = time.perf_counter() - started
        if result.returncode != 0:
            raise RuntimeError(
                f"cold CLI check failed (rc={result.returncode}): {result.stderr}"
            )
        best = min(best, elapsed)
    return best


def _warm_http_seconds(url: str, request: dict, repeats: int) -> float:
    """Min wall-clock of a warm-cache HTTP check round trip."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        response = call_service(url, "check", request)
        elapsed = time.perf_counter() - started
        if not response.get("ok") or response.get("exit_code") != 0:
            raise RuntimeError(f"warm HTTP check failed: {response.get('error')}")
        best = min(best, elapsed)
    return best


def run_serve_benchmark(
    cold_repeats: int = 5,
    warm_repeats: int = 20,
    attempts: int = 3,
    emit: bool = True,
) -> dict:
    """Times both arms; asserts the warm/cold speedup clears the bar."""
    request = {
        "mappings": [{"name": MAPPING_FILE.name, "text": MAPPING_FILE.read_text()}]
    }
    speedup = 0.0
    cold = warm = float("inf")
    with ServiceServer(EngineSession()) as server:
        warm_response = call_service(server.url, "check", request)
        assert warm_response["ok"], warm_response.get("error")
        for _ in range(attempts):
            cold = _cold_cli_seconds(cold_repeats)
            warm = _warm_http_seconds(server.url, request, warm_repeats)
            speedup = cold / max(warm, 1e-9)
            if speedup >= SPEEDUP_BAR:
                break
    record = {
        "claim": "a warm-session HTTP check of the Figure-1 workload beats "
        f"a cold CLI invocation by at least {SPEEDUP_BAR:g}x",
        "workload": str(MAPPING_FILE.relative_to(REPO_ROOT)),
        "cold_cli_seconds": cold,
        "warm_http_seconds": warm,
        "speedup": speedup,
        "bar": SPEEDUP_BAR,
        "cold_repeats": cold_repeats,
        "warm_repeats": warm_repeats,
    }
    print(
        f"[serve-bench] cold CLI {cold:.6f}s, warm HTTP {warm:.6f}s "
        f"-> {speedup:.1f}x (bar {SPEEDUP_BAR:g}x)"
    )
    if emit:
        emit_json("serve", "warm_http_vs_cold_cli", record)
    assert speedup >= SPEEDUP_BAR, (
        f"warm HTTP check is only {speedup:.1f}x faster than the cold CLI "
        f"(bar {SPEEDUP_BAR:g}x; cold {cold:.6f}s, warm {warm:.6f}s)"
    )
    return record


# -- pytest entry point --------------------------------------------------------


def test_warm_service_beats_cold_cli():
    run_serve_benchmark(cold_repeats=2, warm_repeats=5, emit=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced repeats, no BENCH_serve.json journal")
    args = parser.parse_args(argv)
    try:
        if args.smoke:
            run_serve_benchmark(cold_repeats=2, warm_repeats=5, emit=False)
        else:
            run_serve_benchmark()
    except AssertionError as error:
        print(f"FAIL: {error}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
