"""CI smoke for ``repro serve``: boot, round-trip, saturate, verify.

Boots the real daemon as a subprocess on an ephemeral port (``--port 0``,
URL parsed from its startup line), then checks the full service surface:

1. ``/healthz`` answers ``ok``;
2. a ``check`` of the Figure-1 example mapping round-trips with exit
   code 0, carrying a request ID;
3. ``lint`` round-trips clean over HTTP;
4. ``/metrics`` parses as Prometheus text and exposes the request
   counters (``repro_requests_total``);
5. a saturation probe against ``--max-inflight 1 --queue-depth 0``:
   concurrent hard requests must produce at least one ``429``-rejected
   response (``error.type == "Saturated"``), at least one served one,
   and ``repro_rejected_total{reason="saturated"}`` must move.

Exits non-zero on any failure.  No timing assertions — safe on loaded
single-core CI runners.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import REPO_ROOT

from repro.mappings.io import render_mapping
from repro.obs import parse_prometheus
from repro.service import ServiceUnavailable, call_service, fetch_text
from repro.workloads.families import cons_arbitrary_family

MAPPING_FILE = REPO_ROOT / "examples" / "mappings" / "university.xsm"
BOOT_PATTERN = re.compile(r"serving on (http://\S+)")


def boot_daemon(*extra_args: str) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve --port 0``; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError(f"daemon exited during boot (rc={process.returncode})")
        found = BOOT_PATTERN.search(line)
        if found:
            return process, found.group(1)
    process.kill()
    raise RuntimeError(f"daemon did not announce its URL (last line: {line!r})")


def shut_down(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


def round_trips(url: str, failures: list[str]) -> None:
    health = fetch_text(url, "healthz").strip()
    if health != "ok":
        failures.append(f"/healthz answered {health!r}")

    mapping_text = MAPPING_FILE.read_text()
    response = call_service(url, "check", {"mappings": [
        {"name": MAPPING_FILE.name, "text": mapping_text},
    ]})
    if not response.get("ok") or response.get("exit_code") != 0:
        failures.append(f"check round-trip failed: {response.get('error')}")
    if not response.get("request_id"):
        failures.append("check response carries no request ID")
    print(f"[serve-smoke] check: exit {response.get('exit_code')} "
          f"(request {response.get('request_id')})")

    lint = call_service(url, "lint", {"mappings": [mapping_text]})
    if not lint.get("ok") or lint.get("exit_code") != 0:
        failures.append(f"lint round-trip failed: {lint.get('error')}")
    print(f"[serve-smoke] lint: exit {lint.get('exit_code')}")

    try:
        series = parse_prometheus(fetch_text(url, "metrics"))
    except ValueError as error:
        failures.append(f"/metrics does not parse: {error}")
        return
    names = {key.split("{", 1)[0] for key in series}
    for required in ("repro_requests_total", "repro_request_latency_seconds_count"):
        if required not in names:
            failures.append(f"/metrics misses {required}")
    print(f"[serve-smoke] metrics: {len(series)} series")


def saturation_probe(failures: list[str]) -> None:
    """Concurrent hard requests against a 1-slot daemon must draw a 429."""
    process, url = boot_daemon(
        "--max-inflight", "1", "--queue-depth", "0", "--timeout", "60",
    )
    try:
        # distinct hard mappings: no compilation-cache short-circuit, so
        # each request genuinely occupies the single execution slot
        bodies = [
            {
                "mappings": [render_mapping(cons_arbitrary_family(n))],
                "budget": {"deadline_seconds": 15},
            }
            for n in (6, 7, 8, 9)
        ]

        def fire(body):
            try:
                return call_service(url, "check", body, timeout=120.0)
            except ServiceUnavailable as error:
                return {"error": {"type": "Unavailable", "message": str(error)}}

        with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
            responses = list(pool.map(fire, bodies))
        outcomes = [
            (response.get("error") or {}).get("type", "served")
            for response in responses
        ]
        print(f"[serve-smoke] saturation outcomes: {outcomes}")
        if "Saturated" not in outcomes:
            failures.append(f"no request drew a 429 under saturation: {outcomes}")
        if "served" not in outcomes:
            failures.append(f"no request was served under saturation: {outcomes}")
        series = parse_prometheus(fetch_text(url, "metrics"))
        rejected = series.get('repro_rejected_total{reason="saturated"}', 0.0)
        if rejected <= 0:
            failures.append("repro_rejected_total{reason=saturated} did not move")
        print(f"[serve-smoke] rejected_total: {rejected:g}")
    finally:
        shut_down(process)


def main(argv=None) -> int:
    failures: list[str] = []
    process, url = boot_daemon("--max-inflight", "4", "--queue-depth", "8")
    print(f"[serve-smoke] daemon up at {url}")
    try:
        round_trips(url, failures)
    finally:
        shut_down(process)
    saturation_probe(failures)
    for failure in failures:
        print(f"[serve-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[serve-smoke] OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
