"""CI smoke for ``repro serve``: boot, round-trip, saturate, verify.

Boots the real daemon as a subprocess on an ephemeral port (``--port 0``,
URL parsed from its startup line), then checks the full service surface:

1. ``/healthz`` answers ``ok``;
2. a ``check`` of the Figure-1 example mapping round-trips with exit
   code 0, carrying a request ID;
3. ``lint`` round-trips clean over HTTP;
4. ``/metrics`` parses as Prometheus text and exposes the request
   counters (``repro_requests_total``), including at least one
   OpenMetrics exemplar that the strict parser accepts;
5. the flight recorder round-trips: ``/debug/requests`` lists the
   traffic with trace IDs, ``/debug/requests/<trace_id>`` returns the
   check request's full span tree (and 404s for a bogus ID),
   ``/debug/slow`` is populated (the daemon runs with ``REPRO_SLOW_MS=0``
   so every request counts as slow) and the ``--slow-log`` JSONL sink
   (``BENCH_slowlog_smoke.jsonl``, the artifact CI uploads) has lines;
6. ``repro top --count 1`` and ``repro stats --url`` render against the
   live daemon;
7. a saturation probe against ``--max-inflight 1 --queue-depth 0``:
   concurrent hard requests must produce at least one ``429``-rejected
   response (``error.type == "Saturated"``), at least one served one,
   and ``repro_rejected_total{reason="saturated"}`` must move.

Exits non-zero on any failure.  No timing assertions — safe on loaded
single-core CI runners.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import REPO_ROOT

from repro.mappings.io import render_mapping
from repro.obs import parse_prometheus
from repro.service import ServiceUnavailable, call_service, fetch_json, fetch_text
from repro.workloads.families import cons_arbitrary_family

MAPPING_FILE = REPO_ROOT / "examples" / "mappings" / "university.xsm"
SLOW_LOG_ARTIFACT = REPO_ROOT / "BENCH_slowlog_smoke.jsonl"
BOOT_PATTERN = re.compile(r"serving on (http://\S+)")


def boot_daemon(*extra_args: str, env: dict | None = None) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve --port 0``; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env={
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            **(env or {}),
        },
    )
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError(f"daemon exited during boot (rc={process.returncode})")
        found = BOOT_PATTERN.search(line)
        if found:
            return process, found.group(1)
    process.kill()
    raise RuntimeError(f"daemon did not announce its URL (last line: {line!r})")


def shut_down(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


def round_trips(url: str, failures: list[str]) -> str | None:
    """Exercise the POST surface; returns the check request's trace ID."""
    health = fetch_text(url, "healthz").strip()
    if health != "ok":
        failures.append(f"/healthz answered {health!r}")

    mapping_text = MAPPING_FILE.read_text()
    response = call_service(url, "check", {"mappings": [
        {"name": MAPPING_FILE.name, "text": mapping_text},
    ]})
    if not response.get("ok") or response.get("exit_code") != 0:
        failures.append(f"check round-trip failed: {response.get('error')}")
    if not response.get("request_id"):
        failures.append("check response carries no request ID")
    trace_id = response.get("trace_id")
    if not trace_id:
        failures.append("check response carries no trace ID")
    print(f"[serve-smoke] check: exit {response.get('exit_code')} "
          f"(request {response.get('request_id')}, trace {trace_id})")

    lint = call_service(url, "lint", {"mappings": [mapping_text]})
    if not lint.get("ok") or lint.get("exit_code") != 0:
        failures.append(f"lint round-trip failed: {lint.get('error')}")
    print(f"[serve-smoke] lint: exit {lint.get('exit_code')}")

    text = fetch_text(url, "metrics")
    try:
        series = parse_prometheus(text)
    except ValueError as error:
        failures.append(f"/metrics does not parse: {error}")
        return trace_id
    names = {key.split("{", 1)[0] for key in series}
    for required in ("repro_requests_total", "repro_request_latency_seconds_count"):
        if required not in names:
            failures.append(f"/metrics misses {required}")
    exemplars = text.count(" # {")
    if not exemplars:
        failures.append("/metrics carries no OpenMetrics exemplars")
    print(f"[serve-smoke] metrics: {len(series)} series, "
          f"{exemplars} exemplars (strict parse OK)")
    return trace_id


def flight_probe(url: str, trace_id: str | None, failures: list[str]) -> None:
    """The flight recorder's /debug surface after the round-trip traffic."""
    listing = fetch_json(url, "debug/requests")
    summaries = listing.get("requests", [])
    if not summaries:
        failures.append("/debug/requests is empty after traffic")
    if any(not entry.get("trace_id") for entry in summaries):
        failures.append("/debug/requests entries missing trace IDs")
    listed_ids = {entry.get("trace_id") for entry in summaries}
    if trace_id and trace_id not in listed_ids:
        failures.append(
            f"check trace {trace_id} did not round-trip into /debug/requests"
        )
    checks = fetch_json(url, "debug/requests?op=check").get("requests", [])
    if any(entry.get("op") != "check" for entry in checks):
        failures.append("/debug/requests?op=check returned other ops")
    print(f"[serve-smoke] debug/requests: {len(summaries)} records "
          f"({len(checks)} checks)")

    if trace_id:
        record = fetch_json(url, f"debug/requests/{trace_id}")
        tree = record.get("trace") or {}
        if record.get("error") or tree.get("name") != "request":
            failures.append(
                f"/debug/requests/{trace_id} returned no span tree: "
                f"{record.get('error')}"
            )
        else:
            print(f"[serve-smoke] debug/requests/{trace_id}: "
                  f"{record.get('spans')} spans, "
                  f"{record.get('duration_ms', 0.0):.1f}ms")
    missing = fetch_json(url, "debug/requests/not-a-trace-id")
    if (missing.get("error") or {}).get("type") != "NotFound":
        failures.append("/debug/requests/<bogus> did not 404")

    slow = fetch_json(url, "debug/slow").get("slow", [])
    if not slow:
        failures.append("/debug/slow is empty (daemon runs with REPRO_SLOW_MS=0)")
    print(f"[serve-smoke] debug/slow: {len(slow)} entries")

    if not SLOW_LOG_ARTIFACT.exists():
        failures.append(f"slow log {SLOW_LOG_ARTIFACT.name} was not written")
    else:
        lines = SLOW_LOG_ARTIFACT.read_text().splitlines()
        if not lines or any(
            not json.loads(line).get("trace_id") for line in lines
        ):
            failures.append(f"{SLOW_LOG_ARTIFACT.name} lines lack trace IDs")
        print(f"[serve-smoke] slow log: {len(lines)} JSONL lines")


def client_views(url: str, failures: list[str]) -> None:
    """`repro top` and `repro stats --url` against the live daemon."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    for label, args in (
        ("top", ["top", "--url", url, "--count", "1", "--plain"]),
        ("stats --url", ["stats", "--url", url]),
    ):
        result = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env,
            timeout=60,
        )
        if result.returncode != 0:
            failures.append(
                f"repro {label} exited {result.returncode}: {result.stderr.strip()}"
            )
        else:
            print(f"[serve-smoke] repro {label}: OK "
                  f"({len(result.stdout.splitlines())} lines)")


def saturation_probe(failures: list[str]) -> None:
    """Concurrent hard requests against a 1-slot daemon must draw a 429."""
    process, url = boot_daemon(
        "--max-inflight", "1", "--queue-depth", "0", "--timeout", "60",
    )
    try:
        # distinct hard mappings: no compilation-cache short-circuit, so
        # each request genuinely occupies the single execution slot
        bodies = [
            {
                "mappings": [render_mapping(cons_arbitrary_family(n))],
                "budget": {"deadline_seconds": 15},
            }
            for n in (6, 7, 8, 9)
        ]

        def fire(body):
            try:
                return call_service(url, "check", body, timeout=120.0)
            except ServiceUnavailable as error:
                return {"error": {"type": "Unavailable", "message": str(error)}}

        with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
            responses = list(pool.map(fire, bodies))
        outcomes = [
            (response.get("error") or {}).get("type", "served")
            for response in responses
        ]
        print(f"[serve-smoke] saturation outcomes: {outcomes}")
        if "Saturated" not in outcomes:
            failures.append(f"no request drew a 429 under saturation: {outcomes}")
        if "served" not in outcomes:
            failures.append(f"no request was served under saturation: {outcomes}")
        series = parse_prometheus(fetch_text(url, "metrics"))
        rejected = series.get('repro_rejected_total{reason="saturated"}', 0.0)
        if rejected <= 0:
            failures.append("repro_rejected_total{reason=saturated} did not move")
        print(f"[serve-smoke] rejected_total: {rejected:g}")
    finally:
        shut_down(process)


def main(argv=None) -> int:
    failures: list[str] = []
    SLOW_LOG_ARTIFACT.unlink(missing_ok=True)
    process, url = boot_daemon(
        "--max-inflight", "4", "--queue-depth", "8",
        "--slow-log", str(SLOW_LOG_ARTIFACT),
        # threshold 0: every request counts as slow, so the smoke can
        # assert the slow ring and the JSONL sink are populated
        env={"REPRO_SLOW_MS": "0"},
    )
    print(f"[serve-smoke] daemon up at {url}")
    try:
        trace_id = round_trips(url, failures)
        flight_probe(url, trace_id, failures)
        client_views(url, failures)
    finally:
        shut_down(process)
    saturation_probe(failures)
    for failure in failures:
        print(f"[serve-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[serve-smoke] OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
