"""Figure 1, consistency with data comparisons — experiments F1.5–F1.7.

=========================  =================  ==============================
cell                       paper              measured here
=========================  =================  ==============================
CONS(⇓,∼), arbitrary       undecidable        semi-decision effort (F1.5)
CONS(⇓,∼), nested-rel.     NEXPTIME-complete  witness-guessing sweep (F1.6)
CONS(⇓,⇒,∼)                undecidable        semi-decision effort (F1.7)
=========================  =================  ==============================

Undecidability cannot be timed; what the table shows instead is the cost
curve of the *semi-decision procedure* (bounded witness search), which
grows without bound as the instances force larger witnesses — no
terminating algorithm can cap it (Theorem 5.4).
"""

from harness import print_table, sweep

from repro.consistency.bounded import (
    default_value_domain,
    is_consistent_bounded,
)
from repro.mappings.mapping import SchemaMapping
from repro.workloads.families import (
    distinct_values_family,
    equality_case_split_family,
)


def test_f15_semidecision_effort(benchmark):
    """F1.5: CONS(⇓,∼) — undecidable; bounded search effort explodes."""
    def make(n):
        mapping = distinct_values_family(n)
        return lambda: is_consistent_bounded(
            mapping, max_source_size=n + 1, max_target_size=2
        )

    rows = sweep(range(1, 5), make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.5",
        "CONS(⇓,∼) arbitrary DTDs: undecidable (Thm 5.4); semi-decision only",
        rows,
        size_label="values",
        note="witnesses need n pairwise-distinct values; search domain grows with n",
    )
    benchmark(
        lambda: is_consistent_bounded(
            distinct_values_family(3), max_source_size=4, max_target_size=2
        )
    )


def test_f16_cons_data_nested(benchmark):
    """F1.6: CONS(⇓,∼) over nested-relational DTDs — NEXPTIME witness guessing."""
    def make(n):
        mapping = equality_case_split_family(n)
        return lambda: is_consistent_bounded(
            mapping, max_source_size=n + 1, max_target_size=n + 1
        )

    rows = sweep(range(1, 4), make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.6",
        "CONS(⇓,∼) nested-relational DTDs: NEXPTIME-complete (Thm 5.5)",
        rows,
        size_label="splits",
        note="equality/inequality case splits; guess-and-check over value assignments",
    )
    negative = is_consistent_bounded(
        equality_case_split_family(2, consistent=False), 3, 3
    )
    # the bounded search cannot prove inconsistency: Unknown, not Refuted
    assert negative.is_unknown
    benchmark(
        lambda: is_consistent_bounded(equality_case_split_family(2), 3, 3)
    )


def test_f17_full_class_semidecision(benchmark):
    """F1.7: CONS(⇓,⇒,∼) — undecidable; same story with horizontal axes."""

    def family(n: int) -> SchemaMapping:
        # distinct values demanded of an ordered chain of siblings
        source = "r -> " + ", ".join("a" for __ in range(n)) + "\na(v)"
        chain = " -> ".join(f"a(x{i})" for i in range(n))
        conditions = ", ".join(
            f"x{i} != x{j}" for i in range(n) for j in range(i + 1, n)
        )
        std = f"r[{chain}], {conditions} -> t[c(x0)]" if conditions else \
            f"r[{chain}] -> t[c(x0)]"
        return SchemaMapping.parse(source, "t -> c?\nc(w)", [std])

    def make(n):
        mapping = family(n)
        domain = default_value_domain(mapping)
        return lambda: is_consistent_bounded(
            mapping, max_source_size=n + 1, max_target_size=2,
            value_domain=domain,
        )

    rows = sweep(range(2, 5), make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.7",
        "CONS(⇓,⇒,∼): undecidable (Thm 5.4); semi-decision only",
        rows,
        size_label="chain",
        note="next-sibling chain with pairwise-distinct values",
    )
    benchmark(
        lambda: is_consistent_bounded(family(3), 4, 2)
    )
