"""Figure 2, tree pattern evaluation — experiments F2.1 and F2.2.

===========================  ====================  ========================
cell                         paper                 measured here
===========================  ====================  ========================
pattern evaluation, data     DLOGSPACE-complete    near-linear sweep (F2.1)
pattern evaluation, combined PTIME                 polynomial sweep (F2.2)
===========================  ====================  ========================
"""

from harness import print_table, sweep

from repro.patterns.matching import evaluate, matches_at_root
from repro.patterns.parser import parse_pattern
from repro.workloads.families import flat_document
from repro.xmlmodel.tree import TreeNode


FIXED_PATTERN = parse_pattern("r[a(x) ->* a(y), //a(z)]")


def deep_document(depth: int, fanout: int = 2) -> TreeNode:
    def build(level: int) -> TreeNode:
        if level == 0:
            return TreeNode("a", (level,))
        return TreeNode(
            "a", (level,), tuple(build(level - 1) for __ in range(fanout))
        )

    return TreeNode("r", (), (build(depth),))


def test_f21_pattern_eval_data(benchmark):
    """F2.1: fixed pattern, growing tree — low data complexity."""
    def make(n):
        document = flat_document(n)
        return lambda: len(evaluate(FIXED_PATTERN, document))

    rows = sweep([50, 100, 200, 400, 800], make)
    print_table(
        "F2.1",
        "pattern evaluation, data complexity: DLOGSPACE-complete",
        rows,
        size_label="|T|",
        note="fixed pattern with ->* and //; answers counted; growth ~ |answers|",
    )
    boolean_pattern = parse_pattern("r[a(5) ->* a(6)]")

    def make_boolean(n):
        document = flat_document(n)
        return lambda: matches_at_root(boolean_pattern, document)

    boolean_rows = sweep([200, 400, 800, 1600], make_boolean)
    print_table(
        "F2.1b",
        "Boolean variant (memoized, near-linear)",
        boolean_rows,
        size_label="|T|",
    )
    benchmark(lambda: matches_at_root(FIXED_PATTERN, flat_document(400)))


def test_f22_pattern_eval_combined(benchmark):
    """F2.2: pattern and tree grow together — still PTIME."""

    def chain_pattern(k: int):
        text = "r[" + "a[" * k + "a" + "]" * k + "]"
        return parse_pattern(text)

    def make(k):
        pattern, document = chain_pattern(k), deep_document(2 * k, 1)
        return lambda: matches_at_root(pattern, document)

    rows = sweep([2, 4, 8, 16, 32], make)
    assert all(result is True for result in (row[2] for row in rows))
    print_table(
        "F2.2",
        "pattern evaluation, combined complexity: PTIME",
        rows,
        size_label="k",
        note="child chains of depth k against paths of depth 2k",
    )
    def make_descendant(k):
        # fanout 1: the tree is a path, so the cost measured is the
        # matcher's, not an exponentially growing input
        pattern, document = parse_pattern("r" + "//a" * k), deep_document(4 * k, 1)
        return lambda: matches_at_root(pattern, document)

    descendant_rows = sweep([2, 4, 8, 16], make_descendant)
    assert all(result is True for result in (row[2] for row in descendant_rows))
    print_table(
        "F2.2b",
        "descendant chains (memoized //)",
        descendant_rows,
        size_label="k",
    )
    benchmark(lambda: matches_at_root(chain_pattern(16), deep_document(32, 1)))
