"""Figure 1, consistency row — experiments F1.1–F1.4 (DESIGN.md §4).

Reproduces the comparison-free cells of the paper's consistency table:

=====================  =======================  ==========================
cell                   paper                    measured here
=====================  =======================  ==========================
CONS(⇓), arbitrary     EXPTIME-complete          exponential sweep (F1.1)
CONS(⇓), nested-rel.   PTIME (cubic)             polynomial sweep (F1.2)
CONS(⇓,⇒), arbitrary   EXPTIME-complete          exponential sweep (F1.3)
CONS(⇓,→), nested-rel. PSPACE-hard               exponential sweep (F1.4)
=====================  =======================  ==========================
"""

from harness import print_table, sweep

from repro.consistency import is_consistent_automata, is_consistent_nested
from repro.workloads.families import (
    cons_arbitrary_family,
    cons_nested_family,
    cons_next_sibling_family,
)


def test_f11_cons_down_arbitrary(benchmark):
    """F1.1: CONS(⇓) over arbitrary DTDs — EXPTIME-complete."""
    def make(n):
        mapping = cons_arbitrary_family(n)
        return lambda: is_consistent_automata(mapping)

    rows = sweep(range(1, 7), make)
    assert all(result is True for __, __, result in rows)
    print_table(
        "F1.1",
        "CONS(⇓) arbitrary DTDs: EXPTIME-complete",
        rows,
        size_label="choices",
        note="n independent disjunctive choices; automata state spaces double",
    )
    def make_negative(n):
        mapping = cons_arbitrary_family(n, consistent=False)
        return lambda: is_consistent_automata(mapping)

    negative = sweep(range(1, 5), make_negative)
    assert all(result is False for __, __, result in negative)
    benchmark(lambda: is_consistent_automata(cons_arbitrary_family(4)))


def test_f12_cons_down_nested_ptime(benchmark):
    """F1.2: CONS(⇓) over nested-relational DTDs — PTIME."""
    def make(n):
        mapping = cons_nested_family(n)
        return lambda: is_consistent_nested(mapping)

    rows = sweep([2, 4, 8, 16, 32, 64], make)
    assert all(result is True for __, __, result in rows)
    print_table(
        "F1.2",
        "CONS(⇓) nested-relational DTDs: PTIME (cubic in [4])",
        rows,
        size_label="stds",
        note="same copy workload scaled; growth stays polynomial",
    )
    negative = is_consistent_nested(cons_nested_family(16, consistent=False))
    assert negative is False
    benchmark(lambda: is_consistent_nested(cons_nested_family(32)))


def test_f13_cons_horizontal_arbitrary(benchmark):
    """F1.3: CONS(⇓,⇒) stays EXPTIME-complete (Theorem 5.2)."""
    def make(n):
        mapping = cons_next_sibling_family(n)
        return lambda: is_consistent_automata(mapping)

    rows = sweep(range(2, 9), make)
    assert all(result is True for __, __, result in rows)
    print_table(
        "F1.3",
        "CONS(⇓,⇒): EXPTIME-complete (Theorem 5.2)",
        rows,
        size_label="chain",
        note="next-sibling chains of length n; horizontal NFAs in the closure automaton",
    )
    benchmark(lambda: is_consistent_automata(cons_next_sibling_family(5)))


def test_f14_next_sibling_breaks_nested_ptime(benchmark):
    """F1.4: CONS(⇓,→) over nested-relational DTDs is PSPACE-hard.

    The PTIME algorithm refuses horizontal axes by design; only the
    exponential automata algorithm applies, and its cost grows even
    though the DTDs stay nested-relational — the frontier the paper's
    Proposition 5.3 draws.
    """
    import pytest

    from repro.errors import SignatureError

    with pytest.raises(SignatureError):
        is_consistent_nested(cons_next_sibling_family(3))
    def make(n):
        mapping = cons_next_sibling_family(n, consistent=False)
        return lambda: is_consistent_automata(mapping)

    rows = sweep(range(2, 8), make)
    assert all(result is False for __, __, result in rows)
    print_table(
        "F1.4",
        "CONS(⇓,→) nested-relational DTDs: PSPACE-hard (Prop 5.3)",
        rows,
        size_label="chain",
        note="inconsistent order-contradiction instances; PTIME algorithm inapplicable",
    )
    benchmark(
        lambda: is_consistent_automata(cons_next_sibling_family(5, consistent=False))
    )
