"""Figure 1, consistency row — experiments F1.1–F1.4 and F1.11 (DESIGN.md §4).

Reproduces the comparison-free cells of the paper's consistency table:

=====================  =======================  ==========================
cell                   paper                    measured here
=====================  =======================  ==========================
CONS(⇓), arbitrary     EXPTIME-complete          exponential sweep (F1.1)
CONS(⇓), nested-rel.   PTIME (cubic)             polynomial sweep (F1.2)
CONS(⇓,⇒), arbitrary   EXPTIME-complete          exponential sweep (F1.3)
CONS(⇓,→), nested-rel. PSPACE-hard               exponential sweep (F1.4)
=====================  =======================  ==========================

F1.11 measures the engine layer itself: the shared compilation cache on
repeated-DTD sweep points versus ``CompilationCache(enabled=False)``.
"""

import time

from harness import emit_json, print_table, sweep

from repro.consistency import is_consistent_automata, is_consistent_nested
from repro.workloads.families import (
    cons_arbitrary_family,
    cons_nested_family,
    cons_next_sibling_family,
)


def test_f11_cons_down_arbitrary(benchmark):
    """F1.1: CONS(⇓) over arbitrary DTDs — EXPTIME-complete."""
    def make(n):
        mapping = cons_arbitrary_family(n)
        return lambda: is_consistent_automata(mapping)

    rows = sweep(range(1, 7), make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.1",
        "CONS(⇓) arbitrary DTDs: EXPTIME-complete",
        rows,
        size_label="choices",
        note="n independent disjunctive choices; automata state spaces double",
    )
    def make_negative(n):
        mapping = cons_arbitrary_family(n, consistent=False)
        return lambda: is_consistent_automata(mapping)

    negative = sweep(range(1, 5), make_negative)
    assert all(result.is_refuted for result in (row[2] for row in negative))
    benchmark(lambda: is_consistent_automata(cons_arbitrary_family(4)))


def test_f12_cons_down_nested_ptime(benchmark):
    """F1.2: CONS(⇓) over nested-relational DTDs — PTIME."""
    def make(n):
        mapping = cons_nested_family(n)
        return lambda: is_consistent_nested(mapping)

    rows = sweep([2, 4, 8, 16, 32, 64], make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.2",
        "CONS(⇓) nested-relational DTDs: PTIME (cubic in [4])",
        rows,
        size_label="stds",
        note="same copy workload scaled; growth stays polynomial",
    )
    negative = is_consistent_nested(cons_nested_family(16, consistent=False))
    assert negative.is_refuted
    benchmark(lambda: is_consistent_nested(cons_nested_family(32)))


def test_f13_cons_horizontal_arbitrary(benchmark):
    """F1.3: CONS(⇓,⇒) stays EXPTIME-complete (Theorem 5.2)."""
    def make(n):
        mapping = cons_next_sibling_family(n)
        return lambda: is_consistent_automata(mapping)

    rows = sweep(range(2, 9), make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.3",
        "CONS(⇓,⇒): EXPTIME-complete (Theorem 5.2)",
        rows,
        size_label="chain",
        note="next-sibling chains of length n; horizontal NFAs in the closure automaton",
    )
    benchmark(lambda: is_consistent_automata(cons_next_sibling_family(5)))


def test_f14_next_sibling_breaks_nested_ptime(benchmark):
    """F1.4: CONS(⇓,→) over nested-relational DTDs is PSPACE-hard.

    The PTIME algorithm refuses horizontal axes by design; only the
    exponential automata algorithm applies, and its cost grows even
    though the DTDs stay nested-relational — the frontier the paper's
    Proposition 5.3 draws.
    """
    import pytest

    from repro.errors import SignatureError

    with pytest.raises(SignatureError):
        is_consistent_nested(cons_next_sibling_family(3))
    def make(n):
        mapping = cons_next_sibling_family(n, consistent=False)
        return lambda: is_consistent_automata(mapping)

    rows = sweep(range(2, 8), make)
    assert all(result.is_refuted for result in (row[2] for row in rows))
    print_table(
        "F1.4",
        "CONS(⇓,→) nested-relational DTDs: PSPACE-hard (Prop 5.3)",
        rows,
        size_label="chain",
        note="inconsistent order-contradiction instances; PTIME algorithm inapplicable",
    )
    benchmark(
        lambda: is_consistent_automata(cons_next_sibling_family(5, consistent=False))
    )


def test_f111_compilation_cache_speedup(benchmark):
    """F1.11: the shared CompilationCache on repeated-DTD sweep points.

    Re-deciding the F1.1 sweep points with a shared cache hits the stored
    DTD automata, closure automata and achievable trigger-set tables (the
    exponential reachability pass), so repeated points cost dict lookups.
    The acceptance bar is a measured >= 2x speedup over the same sweep
    with ``CompilationCache(enabled=False)``.
    """
    from repro.engine import (
        CompilationCache,
        ConsistencyProblem,
        ExecutionContext,
        solve,
    )

    mappings = [cons_arbitrary_family(n) for n in range(3, 6)]
    repeats = 5

    def run_sweep(enabled: bool) -> tuple[float, ExecutionContext]:
        context = ExecutionContext(cache=CompilationCache(enabled=enabled))
        started = time.perf_counter()
        for __ in range(repeats):
            for mapping in mappings:
                assert solve(ConsistencyProblem(mapping), context).is_proved
        return time.perf_counter() - started, context

    cold, __ = run_sweep(enabled=False)
    warm, context = run_sweep(enabled=True)
    stats = context.cache.stats()
    speedup = cold / warm
    print()
    print("[F1.11] paper: repeated-DTD sweeps amortize compilation (engine layer)")
    print(f"[F1.11] cache disabled: {cold:.6f}s for {repeats}x{len(mappings)} solves")
    print(f"[F1.11] cache enabled : {warm:.6f}s "
          f"(hits={stats['hits']} misses={stats['misses']} "
          f"evictions={stats['evictions']})")
    print(f"[F1.11] speedup       : {speedup:.2f}x (acceptance bar: >= 2x)")
    emit_json("fig1", "F1.11", {
        "claim": "repeated-DTD sweeps amortize compilation (engine layer)",
        "cache_disabled_seconds": cold,
        "cache_enabled_seconds": warm,
        "speedup": speedup,
        "samples": repeats * len(mappings),
        "cache": stats,
    })
    assert stats["hits"] > 0
    assert speedup >= 2.0, f"cache speedup {speedup:.2f}x below the 2x bar"

    warm_context = ExecutionContext(cache=CompilationCache())
    solve(ConsistencyProblem(mappings[-1]), warm_context)
    benchmark(lambda: solve(ConsistencyProblem(mappings[-1]), warm_context))
