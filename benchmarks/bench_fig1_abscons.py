"""Figure 1, absolute consistency — experiments F1.8–F1.10.

============================  =========================  ======================
cell                          paper                      measured here
============================  =========================  ======================
ABSCONS(⇓), arbitrary         EXPSPACE / NEXPTIME-hard   SM° Pi_2^p sweep +
                                                         bounded refuter (F1.8)
ABSCONS(⇓), nested-rel. + fs  PTIME                      polynomial sweep (F1.9)
  + wildcard or descendant    NEXPTIME-hard              refuter blow-up (F1.10)
============================  =========================  ======================
"""

from harness import print_table, sweep

from repro.consistency.abscons import (
    abscons_counterexample,
    is_absolutely_consistent_ptime,
    is_absolutely_consistent_sm0,
)
from repro.workloads.families import (
    abscons_ptime_family,
    abscons_sm0_family,
    abscons_wildcard_family,
)


def test_f18_abscons_sm0(benchmark):
    """F1.8 (structural part): ABSCONS° is Pi_2^p — automata-set inclusion."""
    def make(n):
        mapping = abscons_sm0_family(n)
        return lambda: is_absolutely_consistent_sm0(mapping)

    rows = sweep(range(1, 7), make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.8a",
        "ABSCONS°(⇓): Pi_2^p-complete (Prop 6.1)",
        rows,
        size_label="stds",
        note="achievable trigger sets vs achievable satisfaction sets",
    )
    def make_negative(n):
        mapping = abscons_sm0_family(n, consistent=False)
        return lambda: is_absolutely_consistent_sm0(mapping)

    negative = sweep(range(1, 5), make_negative)
    assert all(result.is_refuted for result in (row[2] for row in negative))
    benchmark(lambda: is_absolutely_consistent_sm0(abscons_sm0_family(4)))


def test_f18_abscons_general_refuter(benchmark):
    """F1.8 (value part): the general case needs value counting.

    The paper's EXPSPACE procedure is substituted by a bounded refuter
    (DESIGN.md, substitution 1); its cost is the point — counting
    occurrences of data values is what pushes the problem to EXPSPACE.
    """
    def make(n):
        mapping = abscons_ptime_family(n, consistent=False)
        return lambda: abscons_counterexample(
            mapping, max_source_size=4, max_target_size=4
        ) is not None

    rows = sweep(range(1, 4), make)
    assert all(result is True for result in (row[2] for row in rows))
    print_table(
        "F1.8b",
        "ABSCONS(⇓) general: in EXPSPACE, NEXPTIME-hard (Thm 6.2)",
        rows,
        size_label="relations",
        note="bounded counterexample search (values + trees enumerated)",
    )
    benchmark(
        lambda: abscons_counterexample(
            abscons_ptime_family(2, consistent=False), 4, 4
        )
    )


def test_f19_abscons_ptime(benchmark):
    """F1.9: nested-relational + fully-specified stds — PTIME (Thm 6.3)."""
    def make(n):
        mapping = abscons_ptime_family(n)
        return lambda: is_absolutely_consistent_ptime(mapping)

    rows = sweep([2, 4, 8, 16, 32, 64], make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F1.9",
        "ABSCONS(⇓) nested-relational + fully-specified: PTIME (Thm 6.3)",
        rows,
        size_label="stds",
        note="rigidity analysis: union-find over rigid target positions",
    )
    negative = is_absolutely_consistent_ptime(
        abscons_ptime_family(8, consistent=False)
    )
    assert negative.is_refuted
    benchmark(lambda: is_absolutely_consistent_ptime(abscons_ptime_family(32)))


def test_f110_abscons_wildcard_hard(benchmark):
    """F1.10: adding the wildcard leaves the PTIME class (NEXPTIME-hard).

    The PTIME algorithm refuses; the exact *expansion* procedure
    (instantiate the wildcard over the DTD's labels, then run the rigidity
    analysis) takes over at worst-case exponential cost — the tractability
    frontier of Theorem 6.3 made visible with exact answers on both sides.
    """
    import pytest

    from repro.consistency.expansion import is_absolutely_consistent_expanded
    from repro.errors import SignatureError

    with pytest.raises(SignatureError):
        is_absolutely_consistent_ptime(abscons_wildcard_family(3))

    def make(n):
        mapping = abscons_wildcard_family(n, consistent=False)
        return lambda: is_absolutely_consistent_expanded(mapping)

    rows = sweep(range(2, 9), make)
    assert all(result.is_refuted for result in (row[2] for row in rows))
    print_table(
        "F1.10",
        "ABSCONS(⇓) + wildcard: NEXPTIME-hard (Thm 6.3)",
        rows,
        size_label="relations",
        note="exact via source expansion; instantiation count grows with the label set",
    )

    def make_positive(n):
        mapping = abscons_wildcard_family(n, consistent=True)
        return lambda: is_absolutely_consistent_expanded(mapping)

    positive = sweep(range(2, 7), make_positive)
    assert all(result.is_proved for result in (row[2] for row in positive))
    print_table(
        "F1.10b",
        "(consistent variant, same exact procedure)",
        positive,
        size_label="relations",
    )
    benchmark(
        lambda: is_absolutely_consistent_expanded(
            abscons_wildcard_family(4, consistent=False)
        )
    )
