"""Figure 1, batch mode — experiments F1.12 and F1.13 (DESIGN.md §4).

The paper's Figure 1 is a sweep of independent decision problems, which
is exactly the shape :func:`repro.engine.solve_many` parallelizes:

* **F1.12** re-decides the Figure 1 consistency sweep serially and with
  ``jobs=4``; the verdicts must be identical, and on a multi-core
  machine the parallel run must be >= 2x faster.
* **F1.13** runs the same sweep twice against one ``--cache-dir``: the
  second (warm) run reads every compiled automaton from disk and must
  measurably beat the first (cold) run.

Both experiments journal their numbers into the repo-root
``BENCH_fig1.json``.  The CI smoke mode (``--smoke``, seconds not
minutes) shrinks the sweep and asserts only correctness — parallel
verdicts equal to serial — never wall-clock, so it is safe on loaded
single-core runners.

Run directly (``python benchmarks/bench_fig1_parallel.py``) for the full
comparison, or through pytest alongside the other figure benchmarks.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import emit_json, span_breakdown_of

from repro.engine import (
    AbsoluteConsistencyProblem,
    CompilationCache,
    ConsistencyProblem,
    ExecutionContext,
    solve_many,
)
from repro.workloads.families import (
    cons_arbitrary_family,
    cons_nested_family,
    cons_next_sibling_family,
)

PARALLEL_SPEEDUP_TARGET = 2.0
PARALLEL_JOBS = 4


def figure1_problems(scale: int = 1) -> list:
    """The Figure 1 consistency sweep as one mixed batch.

    Mirrors the F1.1–F1.4 rows: EXPTIME automata cells next to PTIME
    nested-relational cells, proved next to refuted, plus absolute
    consistency — the routing matrix ``solve_many`` must preserve.
    """
    problems: list = []
    for n in range(1, 4 + scale):
        problems.append(ConsistencyProblem(cons_arbitrary_family(n)))
        problems.append(
            ConsistencyProblem(cons_arbitrary_family(n, consistent=False))
        )
    for n in (2, 4, 8 * scale):
        problems.append(ConsistencyProblem(cons_nested_family(n)))
        problems.append(AbsoluteConsistencyProblem(cons_nested_family(n)))
    for n in range(2, 4 + scale):
        problems.append(ConsistencyProblem(cons_next_sibling_family(n)))
        problems.append(
            ConsistencyProblem(cons_next_sibling_family(n, consistent=False))
        )
    return problems


def _fresh_context() -> ExecutionContext:
    """Each run gets its own cache so timings do not leak between runs."""
    return ExecutionContext(cache=CompilationCache())


def _timed_batch(problems, **kwargs) -> tuple[float, object]:
    started = time.perf_counter()
    batch = solve_many(problems, context=_fresh_context(), **kwargs)
    return time.perf_counter() - started, batch


def run_parallel_comparison(scale: int = 2, emit: bool = True) -> dict:
    """F1.12: serial vs ``jobs=4`` over the Figure 1 sweep."""
    from repro.obs import collecting

    problems = figure1_problems(scale)
    serial_seconds, serial = _timed_batch(problems, jobs=1)
    # trace the parallel run: the record journals where the time went
    with collecting("bench-f112", jobs=PARALLEL_JOBS):
        parallel_seconds, parallel = _timed_batch(problems, jobs=PARALLEL_JOBS)

    mismatches = [
        i
        for i, (a, b) in enumerate(zip(serial, parallel))
        if a.decision() != b.decision()
    ]
    assert not mismatches, f"verdicts diverge at indices {mismatches}"

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    record = {
        "claim": "independent Figure 1 cells parallelize across workers",
        "problems": len(problems),
        "jobs": PARALLEL_JOBS,
        "cpu_count": os.cpu_count() or 1,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "outcomes": dict(parallel.report.outcomes),
        "verdicts_identical": True,
        "queue_wait_seconds": parallel.report.queue_wait_seconds,
    }
    breakdown = span_breakdown_of(parallel)
    if breakdown:
        record["span_breakdown"] = breakdown
    print(f"[F1.12] {len(problems)} problems: serial {serial_seconds:.4f}s, "
          f"jobs={PARALLEL_JOBS} {parallel_seconds:.4f}s -> {speedup:.2f}x "
          f"({os.cpu_count() or 1} cores)")
    if emit:
        emit_json("fig1", "F1.12", record)
    return record


def run_disk_cache_comparison(cache_dir=None, emit: bool = True) -> dict:
    """F1.13: cold vs warm persistent compilation cache, same sweep."""
    owned = cache_dir is None
    if owned:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        problems = figure1_problems(scale=2)
        cold_seconds, cold = _timed_batch(problems, jobs=1, cache_dir=cache_dir)
        warm_seconds, warm = _timed_batch(problems, jobs=1, cache_dir=cache_dir)
        assert cold.decisions() == warm.decisions()

        speedup = cold_seconds / max(warm_seconds, 1e-9)
        record = {
            "claim": "a warm disk cache beats cold compilation",
            "problems": len(problems),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "cold_cache": dict(cold.report.cache),
            "warm_cache": dict(warm.report.cache),
        }
        print(f"[F1.13] disk cache: cold {cold_seconds:.4f}s, warm "
              f"{warm_seconds:.4f}s -> {speedup:.2f}x "
              f"(disk hits: {warm.report.cache.get('disk_hits', 0)})")
        if emit:
            emit_json("fig1", "F1.13", record)
        return record
    finally:
        if owned:
            shutil.rmtree(cache_dir, ignore_errors=True)


def run_smoke() -> int:
    """CI gate: parallel answers must match serial answers.  No timing
    assertions — smoke runners may be loaded or single-core."""
    problems = figure1_problems(scale=1)
    serial = solve_many(problems, jobs=1, context=_fresh_context())
    parallel = solve_many(
        problems, jobs=2, context=_fresh_context(), chunk_size=1
    )
    if serial.decisions() != parallel.decisions():
        print("smoke: FAIL — parallel verdicts diverge from serial")
        for i, (a, b) in enumerate(zip(serial, parallel)):
            if a.decision() != b.decision():
                print(f"  problem {i}: serial={a!r} parallel={b!r}")
        return 1
    unknown = parallel.report.outcomes.get("unknown", 0)
    if unknown:
        print(f"smoke: FAIL — {unknown} unknown verdicts in a decidable sweep")
        return 1
    print(f"smoke: {len(problems)} problems, parallel verdicts == serial "
          f"({parallel.report.outcomes.get('proved', 0)} proved, "
          f"{parallel.report.outcomes.get('refuted', 0)} refuted)")
    return 0


# -- pytest entry points -------------------------------------------------------


def test_f112_parallel_matches_serial(benchmark):
    """F1.12: identical verdicts; >=2x speedup where the cores exist."""
    record = run_parallel_comparison()
    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        assert record["speedup"] >= PARALLEL_SPEEDUP_TARGET, (
            f"parallel speedup {record['speedup']:.2f}x below "
            f"{PARALLEL_SPEEDUP_TARGET}x on a {record['cpu_count']}-core machine"
        )
    problems = figure1_problems(scale=1)
    benchmark(lambda: solve_many(problems, jobs=1, context=_fresh_context()))


def test_f113_warm_disk_cache_beats_cold(benchmark, tmp_path):
    """F1.13: the second run over one --cache-dir must be faster."""
    record = run_disk_cache_comparison(cache_dir=tmp_path / "cache")
    assert record["warm_cache"].get("disk_hits", 0) > 0
    assert record["warm_seconds"] < record["cold_seconds"], (
        f"warm run {record['warm_seconds']:.4f}s not faster than cold "
        f"{record['cold_seconds']:.4f}s"
    )
    problems = figure1_problems(scale=1)
    benchmark(
        lambda: solve_many(
            problems, jobs=1, context=_fresh_context(),
            cache_dir=tmp_path / "cache",
        )
    )


def main(argv=None) -> int:
    global PARALLEL_JOBS
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only gate: parallel == serial")
    parser.add_argument("--jobs", type=int, default=PARALLEL_JOBS)
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    PARALLEL_JOBS = args.jobs
    record = run_parallel_comparison()
    run_disk_cache_comparison()
    if (os.cpu_count() or 1) >= args.jobs:
        assert record["speedup"] >= PARALLEL_SPEEDUP_TARGET
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
