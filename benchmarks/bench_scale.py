"""Document-scale kernel ladder — ``BENCH_scale.json``.

Two ladders, each run under **both** kernels (``pure`` and ``bitset``,
pinned via :func:`repro.kernel.force_kernel` so the automatic size
cutover does not blur the comparison):

* **document ladder** — trees of 10^3..10^6 nodes; per size, one
  mapping-membership decision (``is_solution`` over flat documents) and
  one pattern-evaluation pass (fresh engine build + a selective
  ``find_matches`` + a sequence-existence query);
* **F1.1 ladder** — the EXPTIME consistency family ``n = 1..6`` with a
  fresh compilation cache per kernel, journaling the bitset speedup at
  the top of the ladder (acceptance bar: >= 5x at ``n = 6``).

``--smoke`` runs a reduced ladder and doubles as the **kernel
equivalence gate**: membership verdicts, match relations and
consistency verdicts must be identical under both kernels, and the
consistency witnesses must certify.  Exits non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import emit_json, print_table, series_payload, sweep

from repro.consistency import is_consistent_automata
from repro.engine import CompilationCache, ExecutionContext
from repro.kernel import BITSET, PURE, force_kernel
from repro.mappings.membership import is_solution
from repro.patterns.matching import engine_for
from repro.patterns.parser import parse_pattern
from repro.workloads.families import (
    cons_arbitrary_family,
    flat_document,
    membership_mapping,
    target_document,
)
from repro.xmlmodel.tree import TreeNode

KERNELS = (PURE, BITSET)

#: Document ladder (node counts, approximate: + root / group framing).
FULL_SIZES = [1_000, 10_000, 100_000, 1_000_000]
SMOKE_SIZES = [1_000, 10_000]

#: F1.1 consistency ladder (number of disjunctive choices).
FULL_CHOICES = range(1, 7)
SMOKE_CHOICES = range(1, 4)

#: Acceptance bar for the bitset kernel at the top of the F1.1 ladder.
SPEEDUP_BAR = 5.0

#: Selective pattern (constant access path) and sequence-existence
#: pattern for the document ladder; see :func:`grouped_document`.
FIND_PATTERN = 'r//group(g)[item(g,"7")]'
EXISTS_PATTERN = "r//group(g)[item(g,x) -> item(g,y)]"

#: Full-enumeration pattern: one valuation per distinct (group, payload)
#: pair — the shape the vectorized ``find_matches`` materialization serves.
ENUM_PATTERN = "r//item(g, v)"


def grouped_document(n_nodes: int, fanout: int = 100) -> TreeNode:
    """A two-level document of about *n_nodes* nodes.

    ``r`` over ``n/fanout`` groups of *fanout* items; every item carries
    its group id plus a small cyclic payload, so patterns joining on the
    group id have work to do at every size.
    """
    n_groups = max(1, n_nodes // (fanout + 1))
    return TreeNode(
        "r",
        (),
        tuple(
            TreeNode(
                "group",
                (str(g),),
                tuple(
                    TreeNode("item", (str(g), str(i % 10)), ())
                    for i in range(fanout)
                ),
            )
            for g in range(n_groups)
        ),
    )


def pattern_eval_rows(sizes, kernel: str):
    """Fresh engine build + selective find + sequence existence, per size."""
    find_pattern = parse_pattern(FIND_PATTERN)
    exists_pattern = parse_pattern(EXISTS_PATTERN)

    def make(n):
        root = grouped_document(n)

        def action():
            root._engine = None  # fresh build: the index is part of the cost
            with force_kernel(kernel):
                engine = engine_for(root)
            matches = engine.find_matches(find_pattern)
            found = engine.exists_anywhere(exists_pattern)
            return (type(engine).__name__, len(matches), found)

        return action

    return sweep(sizes, make)


def membership_rows(sizes, kernel: str):
    """One mapping-membership decision per document size."""
    mapping = membership_mapping(1)

    def make(n):
        source, target = flat_document(n), target_document(n)

        def action():
            source._engine = None
            target._engine = None
            with force_kernel(kernel):
                return is_solution(mapping, source, target)

        return action

    return sweep(sizes, make)


def consistency_rows(choices, kernel: str):
    """The F1.1 EXPTIME family, compiled fresh under *kernel*."""

    def make(n):
        mapping = cons_arbitrary_family(n)

        def action():
            context = ExecutionContext(cache=CompilationCache())
            with force_kernel(kernel):
                return is_consistent_automata(mapping, context)

        return action

    return sweep(choices, make)


def materialization_record(sizes) -> dict:
    """Full-enumeration ``find_matches``: vectorized vs generic path.

    Both arms pay a fresh compact-engine build and the candidate scan;
    the vectorized arm materializes result dicts straight off the index
    arrays, the generic arm runs the frozenset relation algebra and
    converts per row.  The journaled delta is the per-size speedup of
    the shipped path over the pre-vectorization one.
    """
    pattern = parse_pattern(ENUM_PATTERN)
    points = []
    for n in sizes:
        root = grouped_document(n)
        arms: dict[str, float] = {}
        matches = 0
        for arm in ("vectorized", "generic"):
            best = float("inf")
            for __ in range(3):
                root._engine = None
                with force_kernel(BITSET):
                    engine = engine_for(root)
                started = time.perf_counter()
                if arm == "vectorized":
                    result = engine.find_matches(pattern)
                else:  # the pre-vectorization materialization
                    result = list(map(dict, engine.match_at(0, pattern)))
                best = min(best, time.perf_counter() - started)
            arms[arm] = best
            matches = len(result)
        speedup = arms["generic"] / arms["vectorized"] if arms["vectorized"] else 0.0
        points.append({
            "n": n,
            "matches": matches,
            "vectorized_seconds": arms["vectorized"],
            "generic_seconds": arms["generic"],
            "speedup": speedup,
        })
        print(
            f"[scale-materialize] n={n}: {matches} matches, "
            f"vectorized {arms['vectorized']:.4f}s vs generic "
            f"{arms['generic']:.4f}s ({speedup:.2f}x)"
        )
    return {
        "claim": "vectorized full-enumeration find_matches materialization",
        "note": "fresh compact engine per sample; generic arm = relation "
                "algebra + per-row dict conversion",
        "pattern": ENUM_PATTERN,
        "points": points,
    }


def run_ladders(sizes, choices) -> tuple[dict, float]:
    """All ladders under both kernels; returns (records, f11_speedup)."""
    records: dict[str, dict] = {}
    f11_top: dict[str, float] = {}
    for kernel in KERNELS:
        rows = membership_rows(sizes, kernel)
        print_table(
            f"scale-membership[{kernel}]",
            "mapping membership at document scale (DLOGSPACE data complexity)",
            rows,
            size_label="|T|",
            note=f"kernel={kernel}; fresh pattern engines per sample",
        )
        records[f"membership/{kernel}"] = series_payload(
            rows,
            claim="mapping membership at document scale",
            note="fresh pattern engines per sample",
            kernel=kernel,
            size_label="|T|",
        )

        rows = pattern_eval_rows(sizes, kernel)
        print_table(
            f"scale-pattern[{kernel}]",
            "pattern evaluation at document scale (engine build + queries)",
            rows,
            size_label="nodes",
            note=f"kernel={kernel}; selective find_matches + sequence existence",
        )
        records[f"pattern-eval/{kernel}"] = series_payload(
            rows,
            claim="pattern evaluation at document scale",
            note="fresh engine build + selective find_matches + sequence existence",
            kernel=kernel,
            size_label="nodes",
        )

        rows = consistency_rows(choices, kernel)
        print_table(
            f"scale-F1.1[{kernel}]",
            "CONS(⇓) arbitrary DTDs: EXPTIME-complete",
            rows,
            size_label="choices",
            note=f"kernel={kernel}; fresh compilation cache per sample",
        )
        records[f"F1.1/{kernel}"] = series_payload(
            rows,
            claim="CONS(⇓) arbitrary DTDs under both kernels",
            note="fresh compilation cache per sample",
            kernel=kernel,
            size_label="choices",
        )
        f11_top[kernel] = rows[-1].seconds

    records["find-matches-materialization"] = materialization_record(sizes)

    speedup = f11_top[PURE] / f11_top[BITSET] if f11_top[BITSET] > 0 else float("inf")
    records["F1.1-speedup"] = {
        "claim": f"bitset kernel >= {SPEEDUP_BAR}x on the F1.1 ladder top",
        "n": max(choices),
        "pure_seconds": f11_top[PURE],
        "bitset_seconds": f11_top[BITSET],
        "speedup": speedup,
    }
    print()
    print(
        f"[scale-F1.1] speedup at n={max(choices)}: {speedup:.2f}x "
        f"(pure {f11_top[PURE]:.3f}s / bitset {f11_top[BITSET]:.3f}s)"
    )
    return records, speedup


def equivalence_gate(sizes, choices) -> list[str]:
    """Differential gate: both kernels must agree everywhere; returns errors."""
    from repro.engine.certify import CertificationError, certify
    from repro.engine.problems import ConsistencyProblem

    errors: list[str] = []

    mapping = membership_mapping(1)
    for n in sizes:
        source, target = flat_document(n), target_document(n)
        verdicts = {}
        for kernel in KERNELS:
            source._engine = None
            target._engine = None
            with force_kernel(kernel):
                verdicts[kernel] = is_solution(mapping, source, target)
        if verdicts[PURE].is_proved != verdicts[BITSET].is_proved:
            errors.append(f"membership verdict mismatch at |T|={n}: {verdicts}")

    find_pattern = parse_pattern(FIND_PATTERN)
    exists_pattern = parse_pattern(EXISTS_PATTERN)
    for n in sizes:
        root = grouped_document(n)
        results = {}
        for kernel in KERNELS:
            root._engine = None
            with force_kernel(kernel):
                engine = engine_for(root)
            results[kernel] = (
                engine.relation_at_root(find_pattern),
                engine.exists_anywhere(exists_pattern),
            )
        if results[PURE] != results[BITSET]:
            errors.append(f"pattern evaluation mismatch at {n} nodes")

    enum_pattern = parse_pattern(ENUM_PATTERN)
    for n in sizes:
        root = grouped_document(n)
        matches = {}
        for kernel in KERNELS:
            root._engine = None
            with force_kernel(kernel):
                engine = engine_for(root)
            matches[kernel] = sorted(
                sorted((var.name, value) for var, value in match.items())
                for match in engine.find_matches(enum_pattern)
            )
        if matches[PURE] != matches[BITSET]:
            errors.append(
                f"full-enumeration find_matches mismatch at {n} nodes"
            )

    for n in choices:
        for consistent in (True, False):
            mapping = cons_arbitrary_family(n, consistent=consistent)
            verdicts = {}
            for kernel in KERNELS:
                context = ExecutionContext(cache=CompilationCache())
                with force_kernel(kernel):
                    verdicts[kernel] = is_consistent_automata(mapping, context)
            if verdicts[PURE].is_proved != verdicts[BITSET].is_proved:
                errors.append(
                    f"F1.1 verdict mismatch at n={n} consistent={consistent}"
                )
                continue
            for kernel, verdict in verdicts.items():
                if verdict.is_proved:
                    try:
                        with force_kernel(PURE):  # re-check on the oracle path
                            certify(verdict, ConsistencyProblem(mapping))
                    except CertificationError as exc:
                        errors.append(
                            f"F1.1 witness fails certification at n={n} "
                            f"under {kernel}: {exc}"
                        )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced ladder plus the kernel-equivalence gate (CI)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    choices = SMOKE_CHOICES if args.smoke else FULL_CHOICES

    started = time.perf_counter()
    records, speedup = run_ladders(sizes, choices)
    if not args.smoke:  # smoke gates only — never clobber the full ladder
        for experiment, payload in records.items():
            emit_json("scale", experiment, payload, meta={"kernels": list(KERNELS)})
        print(f"\n[scale] journaled {len(records)} records to BENCH_scale.json "
              f"in {time.perf_counter() - started:.1f}s")

    if args.smoke:
        errors = equivalence_gate(sizes, choices)
        if errors:
            for error in errors:
                print(f"[scale] EQUIVALENCE FAILURE: {error}", file=sys.stderr)
            return 1
        print("[scale] kernel equivalence gate: OK")
    elif speedup < SPEEDUP_BAR:
        print(
            f"[scale] FAILURE: F1.1 bitset speedup {speedup:.2f}x "
            f"below the {SPEEDUP_BAR}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
