"""Figure 2, composition — experiments F2.5–F2.7 and Theorem 7.1.

=================================  ======================  ===================
cell                               paper                   measured here
=================================  ======================  ===================
composition membership, data       EXPTIME-complete        middle-choice sweep
  (SM(⇓,⇒))                                                (F2.5)
composition membership, combined   2-EXPTIME/NEXPTIME-hard mapping-size sweep
  (SM(⇓,⇒))                                                (F2.6)
composition over SM(⇓,⇒,∼)         undecidable / not       bounded-search
                                   uniformly decidable     effort (F2.7)
consistency of composition         EXPTIME-complete        exact chained
  (Theorem 7.1 / Prop 7.2)                                 automata (F7.1)
=================================  ======================  ===================
"""

from harness import print_table, sweep

from repro.composition.conscomp import is_composition_consistent
from repro.composition.semantics import composition_contains
from repro.mappings.mapping import SchemaMapping
from repro.workloads.families import composition_choice_family
from repro.xmlmodel.parser import parse_tree


def test_f25_composition_data(benchmark):
    """F2.5: fixed mappings, growing documents — EXPTIME data complexity.

    The mappings are fixed (a simple value-copy chain), but the
    intermediate search space grows with the source document: more
    triggered requirements, a larger active domain, bigger middles.
    """
    m12 = SchemaMapping.parse(
        "r -> a*\na(v)", "m -> b*\nb(u)", ["r[a(x)] -> m[b(x)]"]
    )
    m23 = SchemaMapping.parse(
        "m -> b*\nb(u)", "t -> c*\nc(w)", ["m[b(u)] -> t[c(u)]"]
    )

    def make(n):
        t1 = parse_tree("r[" + ", ".join(f"a({i})" for i in range(n)) + "]")
        t3 = parse_tree("t[" + ", ".join(f"c({i})" for i in range(n)) + "]")
        return lambda: composition_contains(
            m12, m23, t1, t3, max_mid_size=n + 1, extra_fresh=0
        )

    rows = sweep([1, 2, 3, 4], make)
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F2.5",
        "composition membership over SM(⇓,⇒), data: EXPTIME-complete",
        rows,
        size_label="|T1|",
        note="fixed copy chain; intermediate enumeration grows with adom(T1)",
    )
    benchmark(make(3))


def test_f26_composition_combined(benchmark):
    """F2.6: growing mappings — combined complexity up to 2-EXPTIME."""

    def decide(n: int) -> bool:
        m12, m23, t1, t3 = composition_choice_family(n)
        return composition_contains(m12, m23, t1, t3, max_mid_size=2 * n + 1)

    rows = sweep(range(1, 4), lambda n: lambda: decide(n))
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F2.6",
        "composition membership over SM(⇓,⇒), combined: 2-EXPTIME / NEXPTIME-hard",
        rows,
        size_label="choices",
        note="n binary middle choices; exponentially many middle shapes",
    )
    benchmark(lambda: decide(2))


def test_f27_composition_with_values(benchmark):
    """F2.7: with ∼ the problem is undecidable — bounded search only."""

    def family(n: int):
        source_lines = ["r -> " + ", ".join(f"a{i}" for i in range(n))]
        source_lines += [f"a{i}(v)" for i in range(n)]
        mid = "m -> b*\nb(u)"
        stds12 = [f"r[a{i}(x)] -> m[b(x)]" for i in range(n)]
        conditions = ", ".join(
            f"x{i} != x{j}" for i in range(n) for j in range(i + 1, n)
        )
        bindings = ", ".join(f"b(x{i})" for i in range(n))
        std23 = (
            f"m[{bindings}], {conditions} -> t[c(x0)]"
            if conditions
            else f"m[{bindings}] -> t[c(x0)]"
        )
        m12 = SchemaMapping.parse("\n".join(source_lines), mid, stds12)
        m23 = SchemaMapping.parse(mid, "t -> c*\nc(w)", [std23])
        t1 = parse_tree(
            "r[" + ", ".join(f"a{i}({i})" for i in range(n)) + "]"
        )
        # every source value can end up exported as x0 by some trigger order
        t3 = parse_tree("t[" + ", ".join(f"c({i})" for i in range(n)) + "]")
        return m12, m23, t1, t3

    def decide(n: int) -> bool:
        m12, m23, t1, t3 = family(n)
        return composition_contains(
            m12, m23, t1, t3, max_mid_size=n + 1, extra_fresh=0
        )

    rows = sweep(range(1, 4), lambda n: lambda: decide(n))
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F2.7",
        "composition over SM(⇓,⇒,∼): undecidable / not uniformly decidable",
        rows,
        size_label="values",
        note="bounded intermediate search; no terminating complete procedure exists",
    )
    benchmark(lambda: decide(2))


def test_f71_consistency_of_composition(benchmark):
    """Theorem 7.1 / Prop 7.2: CONSCOMP is EXPTIME-complete, exactly decided."""

    def chain(n: int):
        d1 = "r -> a*\na(v)"
        mid_lines = ["m -> " + ", ".join(f"x{i}" for i in range(n))]
        final_lines = ["t -> " + ", ".join(f"y{i}?" for i in range(n))]
        stds12, stds23 = [], []
        for i in range(n):
            mid_lines.append(f"x{i} -> p{i} | q{i}")
            stds12.append(f"r[a(v)] -> m[x{i}[p{i}]]")
            stds23.append(f"m[x{i}[p{i}]] -> t[y{i}]")
        m12 = SchemaMapping.parse(d1, "\n".join(mid_lines), stds12)
        m23 = SchemaMapping.parse("\n".join(mid_lines), "\n".join(final_lines), stds23)
        return [m12, m23]

    rows = sweep(range(1, 6), lambda n: lambda: is_composition_consistent(chain(n)))
    assert all(result.is_proved for result in (row[2] for row in rows))
    print_table(
        "F7.1",
        "consistency of composition over SM(⇓,⇒): EXPTIME-complete (Thm 7.1)",
        rows,
        size_label="choices",
        note="exact chained trigger-set reachability (Prop 7.2 generalizes to n mappings)",
    )
    benchmark(lambda: is_composition_consistent(chain(3)))
