"""Incremental re-solving guard: a single-std edit must beat a cold solve.

The incremental engine's promise (see DESIGN.md §Incremental
re-solving) is that editing one std of an ``n``-std mapping re-solves
only that std's invalidation cone while the other ``n - 1`` stds' com-
piled automata and memoized verdicts stay warm.  This guard measures a
cold ``IncrementalEngine.update`` against single-std-edit deltas over a
ladder of mapping sizes and journals the cold-vs-delta series into
``BENCH_incremental.json``.  Two gates run under ``--smoke`` (CI):

* **speedup** — at the largest ladder size (20 stds) the mean delta
  must be at least :data:`SPEEDUP_BAR` times faster than a cold solve;
* **equivalence** — under random single-std edit sequences the
  incremental verdicts must be *identical* to a cold solve of the same
  revision, under both the pure and the bitset automata kernels (the
  correctness half: reuse may never change an answer).

Run directly (no flags) for the full series with more edits per point.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

if True:  # make both `pytest benchmarks` and direct execution work
    _here = Path(__file__).resolve().parent
    for entry in (_here, _here.parent / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

from harness import emit_json

from repro.engine import CompilationCache
from repro.incremental import IncrementalEngine
from repro.kernel import BITSET, PURE, force_kernel

#: Mean single-std-edit delta must be at least this many times faster
#: than a cold solve at the largest ladder size.
SPEEDUP_BAR = 10.0

#: Mapping sizes (std count) of the cold-vs-delta ladder.
LADDER = (5, 10, 20)


def make_mapping(n: int, edited: dict[int, int] | None = None) -> str:
    """An ``n``-std mapping with per-std disjoint labels.

    Each std ``i`` maps its own source subtree ``a_i/c_i`` to its own
    target subtree ``b_i/d_i``, so per-std compilation artifacts are
    independent and an edit's cone is exactly one std wide.  *edited*
    maps std indices to a variant number; odd variants flatten the
    target pattern (a real semantic edit, not a comment tweak).
    """
    edited = edited or {}
    src = ["source:", "    r -> " + ", ".join(f"a{i}*" for i in range(n))]
    tgt = ["target:", "    r -> " + ", ".join(f"b{i}*" for i in range(n))]
    for i in range(n):
        src += [f"    a{i}(x{i}) -> c{i}*", f"    c{i}(y{i})"]
        tgt += [f"    b{i}(x{i}) -> d{i}*", f"    d{i}(y{i})"]
    stds = []
    for i in range(n):
        if edited.get(i, 0) % 2 == 1:
            stds.append(f"std: r[a{i}(v)[c{i}(w)]] -> r[b{i}(v)]")
        else:
            stds.append(f"std: r[a{i}(v)[c{i}(w)]] -> r[b{i}(v)[d{i}(w)]]")
    return "\n".join(src + tgt + stds) + "\n"


def measure_ladder_point(n: int, edits: int) -> dict:
    """Cold-vs-delta timings for one mapping size (no assertion here)."""
    engine = IncrementalEngine(cache=CompilationCache())
    started = time.perf_counter()
    cold = engine.update("bench", make_mapping(n))
    cold_seconds = time.perf_counter() - started
    variants: dict[int, int] = {}
    delta_seconds = []
    reused = recompiled = invalidated = 0
    for edit in range(edits):
        index = edit % n
        variants[index] = variants.get(index, 0) + 1
        started = time.perf_counter()
        delta = engine.update("bench", make_mapping(n, variants))
        delta_seconds.append(time.perf_counter() - started)
        reused += delta.reused
        recompiled += delta.recompiled
        invalidated += (
            delta.invalidated["artifacts"] + delta.invalidated["results"]
        )
    mean_delta = sum(delta_seconds) / len(delta_seconds)
    record = {
        "n": n,
        "cold_seconds": cold_seconds,
        "delta_seconds_mean": mean_delta,
        "delta_seconds_min": min(delta_seconds),
        "speedup": cold_seconds / max(mean_delta, 1e-9),
        "edits": edits,
        "reused": reused,
        "recompiled": recompiled,
        "invalidated": invalidated,
        "cold_recompiled": cold.recompiled,
        "depgraph": engine.cache.depgraph.stats(),
    }
    print(
        f"[incremental] n={n:>3}: cold {cold_seconds:.4f}s vs delta "
        f"{mean_delta:.4f}s (min {min(delta_seconds):.4f}s) -> "
        f"{record['speedup']:.1f}x over {edits} single-std edits"
    )
    return record


def check_equivalence(kernel: str, seeds: int, edits: int) -> int:
    """Incremental verdicts must equal cold-solve verdicts under *kernel*."""
    checked = 0
    with force_kernel(kernel):
        for seed in range(seeds):
            rng = random.Random(8200 + seed)
            n = rng.choice((3, 5))
            engine = IncrementalEngine(cache=CompilationCache())
            variants: dict[int, int] = {}
            for __ in range(edits + 1):
                text = make_mapping(n, variants)
                incremental = engine.update("equiv", text)
                cold = IncrementalEngine(cache=CompilationCache()).update(
                    "equiv", text
                )
                mine = {k: v.decision() for k, v in incremental.verdicts.items()}
                theirs = {k: v.decision() for k, v in cold.verdicts.items()}
                assert mine == theirs, (
                    f"incremental != cold under {kernel} (seed {seed}): "
                    f"{mine} vs {theirs}"
                )
                checked += len(mine)
                index = rng.randrange(n)
                variants[index] = variants.get(index, 0) + 1
    print(f"[incremental] equivalence under {kernel}: {checked} verdicts agree")
    return checked


def run_guard(smoke: bool = False, emit: bool = True, attempts: int = 3) -> int:
    edits = 5 if smoke else 10
    records: dict[int, dict] = {}
    gate_speedup = 0.0
    for attempt in range(attempts):
        records = {n: measure_ladder_point(n, edits) for n in LADDER}
        gate_speedup = records[max(LADDER)]["speedup"]
        print(
            f"[incremental] gate: {gate_speedup:.1f}x at n={max(LADDER)} "
            f"(bar {SPEEDUP_BAR:.0f}x, attempt {attempt + 1}/{attempts})"
        )
        if gate_speedup >= SPEEDUP_BAR:
            break
    for kernel in (PURE, BITSET):
        check_equivalence(kernel, seeds=2 if smoke else 4, edits=3)
    if emit:
        for n, record in records.items():
            emit_json("incremental", f"delta-n{n}", dict(
                record,
                claim="single-std edit re-solves one invalidation cone, "
                "siblings stay warm",
            ))
        emit_json("incremental", "aggregate", {
            "claim": f"single-std edits of a {max(LADDER)}-std mapping are "
            f">= {SPEEDUP_BAR:.0f}x faster than a cold solve",
            "speedup": gate_speedup,
            "speedup_bar": SPEEDUP_BAR,
            "ladder": list(LADDER),
            "equivalence_kernels": [PURE, BITSET],
        })
    assert gate_speedup >= SPEEDUP_BAR, (
        f"delta speedup {gate_speedup:.1f}x at n={max(LADDER)} below the "
        f"{SPEEDUP_BAR:.0f}x bar"
    )
    return 0


# -- pytest entry point --------------------------------------------------------


def test_incremental_equivalence():
    """The correctness half only — timing gates stay out of tier-1."""
    for kernel in (PURE, BITSET):
        check_equivalence(kernel, seeds=1, edits=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer edits per point for the CI gate")
    args = parser.parse_args(argv)
    try:
        return run_guard(smoke=args.smoke)
    except AssertionError as error:
        print(f"FAIL: {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
