"""Data values, variables, nulls and Skolem terms.

The paper's trees carry *data values* on attributes; patterns carry
*variables* that range over data values; target sides of stds may carry
*Skolem terms* (Section 8).  This module defines the term language shared by
patterns, stds and the composition machinery.

Data values themselves are ordinary hashable Python objects (strings or
ints in practice).  Terms are:

* :class:`Var` -- a named variable,
* :class:`Const` -- a wrapped data value appearing literally in a pattern,
* :class:`SkolemTerm` -- ``f(t1, ..., tn)`` with a function name and
  argument terms,
* :class:`Null` -- a labelled null (fresh invented value), produced when
  existential variables or Skolem terms are instantiated while building
  canonical solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union


@dataclass(frozen=True, slots=True)
class Var:
    """A variable, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A literal data value used inside a pattern."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class SkolemTerm:
    """An applied Skolem function ``f(t1, ..., tn)``.

    Arguments are themselves terms, so nested terms such as ``f(g(x), y)``
    arising from composition are representable.
    """

    function: str
    args: tuple["Term", ...]

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class Null:
    """A labelled null: a fresh value distinct from all data values.

    Two nulls are equal iff their labels are equal, which is exactly the
    semantics needed for Skolem functions (same arguments, same null).
    """

    label: object

    def __str__(self) -> str:
        return f"⊥{self.label}"


Term = Union[Var, Const, SkolemTerm]


def term_variables(term: Term) -> Iterator[Var]:
    """Yield every variable occurring in *term* (depth-first, with repeats)."""
    if isinstance(term, Var):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.args:
            yield from term_variables(arg)


def term_functions(term: Term) -> Iterator[str]:
    """Yield every Skolem function name occurring in *term* (with repeats)."""
    if isinstance(term, SkolemTerm):
        yield term.function
        for arg in term.args:
            yield from term_functions(arg)


def substitute(term: Term, assignment: dict[Var, object]) -> object:
    """Evaluate *term* under a variable *assignment*.

    Variables are replaced by their assigned data values; Skolem terms are
    evaluated to :class:`Null` values labelled by the function name and the
    evaluated arguments, which realizes the "same arguments, same value"
    semantics of Skolem functions.  Raises :class:`KeyError` on unassigned
    variables.
    """
    if isinstance(term, Var):
        return assignment[term]
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SkolemTerm):
        evaluated = tuple(substitute(a, assignment) for a in term.args)
        return Null((term.function, evaluated))
    raise TypeError(f"not a term: {term!r}")


def is_ground(term: Term) -> bool:
    """Return True iff *term* contains no variables."""
    return next(term_variables(term), None) is None


class FreshVariableFactory:
    """Produces variables guaranteed fresh wrt a set of reserved names."""

    def __init__(self, reserved: set[str] | None = None, prefix: str = "v"):
        self._reserved = set(reserved or ())
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str | None = None) -> Var:
        """Return a new :class:`Var` whose name collides with nothing seen."""
        base = hint or self._prefix
        while True:
            self._counter += 1
            name = f"{base}_{self._counter}"
            if name not in self._reserved:
                self._reserved.add(name)
                return Var(name)

    def reserve(self, name: str) -> None:
        """Mark *name* as taken so it is never returned by :meth:`fresh`."""
        self._reserved.add(name)
