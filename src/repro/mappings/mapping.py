"""Schema mappings and their feature-signature classification.

The paper writes ``SM(sigma)`` for the class of mappings whose stds use
only the features in ``sigma``: navigation axes (child is always present;
descendant, next-sibling, following-sibling), wildcard, and the value
comparisons ``=`` / ``!=``.  :meth:`SchemaMapping.signature` computes the
signature of a mapping; the shorthand groups of the paper are exposed as
:data:`VERTICAL` (⇓), :data:`HORIZONTAL` (⇒) and :data:`COMPARISONS` (∼).

Following [4] (and the remark after Definition 3.1), reusing a variable in
a *target* pattern does not count as the ``=`` feature — only source-side
equalities do.  Inequalities never appear inside patterns; they live in the
``alpha`` formulae.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SignatureError
from repro.mappings.std import STD, parse_std
from repro.patterns.features import (
    CHILD,
    COMPARISONS,
    DESCENDANT,
    EQUALITY,
    FOLLOWING_SIBLING,
    HORIZONTAL,
    INEQUALITY,
    NEXT_SIBLING,
    VERTICAL,
    WILDCARD_FEATURE,
    axes_of,
    is_fully_specified,
)
from repro.xmlmodel.dtd import DTD, parse_dtd


@dataclass(frozen=True)
class Signature:
    """A set of mapping features, printable in the paper's ``SM(...)`` style."""

    features: frozenset[str]

    def __contains__(self, feature: str) -> bool:
        return feature in self.features

    def issubset(self, allowed: Iterable[str]) -> bool:
        """Is every used feature allowed?  Child and wildcard are free."""
        allowed_set = set(allowed) | {CHILD, WILDCARD_FEATURE}
        return self.features <= allowed_set

    def __str__(self) -> str:
        groups = []
        if self.features & VERTICAL:
            groups.append("⇓" if DESCENDANT in self.features else "↓")
        if self.features & HORIZONTAL:
            horizontal = self.features & HORIZONTAL
            groups.append("⇒" if horizontal == HORIZONTAL else
                          ("→" if NEXT_SIBLING in horizontal else "→*"))
        if self.features & COMPARISONS:
            comparisons = self.features & COMPARISONS
            groups.append("∼" if comparisons == COMPARISONS else
                          ("=" if EQUALITY in comparisons else "≠"))
        return f"SM({', '.join(groups)})"


class SchemaMapping:
    """An XML schema mapping ``M = (D_s, D_t, Sigma)`` (Definition 3.2)."""

    def __init__(self, source_dtd: DTD, target_dtd: DTD, stds: Iterable[STD | str]):
        self.source_dtd = source_dtd
        self.target_dtd = target_dtd
        self.stds: tuple[STD, ...] = tuple(
            parse_std(std) if isinstance(std, str) else std for std in stds
        )

    @classmethod
    def parse(
        cls, source_dtd: DTD | str, target_dtd: DTD | str, stds: Sequence[str]
    ) -> "SchemaMapping":
        """Build a mapping from textual DTDs and stds (works for subclasses)."""
        if isinstance(source_dtd, str):
            source_dtd = parse_dtd(source_dtd)
        if isinstance(target_dtd, str):
            target_dtd = parse_dtd(target_dtd)
        return cls(source_dtd, target_dtd, stds)

    def __repr__(self) -> str:
        return (
            f"SchemaMapping({self.signature()}, {len(self.stds)} stds, "
            f"source root {self.source_dtd.root!r}, target root {self.target_dtd.root!r})"
        )

    # -- classification -------------------------------------------------------

    def signature(self) -> Signature:
        """The feature set actually used by the stds (memoized — the std
        tuple is fixed at construction, and routing, prediction and the
        linter all re-ask)."""
        cached: Signature | None = self.__dict__.get("_signature")
        if cached is not None:
            return cached
        features: set[str] = {CHILD}
        for std in self.stds:
            for pattern in (std.source, std.target):
                axes = axes_of(pattern)
                if axes.descendant:
                    features.add(DESCENDANT)
                if axes.next_sibling:
                    features.add(NEXT_SIBLING)
                if axes.following_sibling:
                    features.add(FOLLOWING_SIBLING)
                if axes.wildcard:
                    features.add(WILDCARD_FEATURE)
            if std.source.has_repeated_variables():
                features.add(EQUALITY)
            for comparison in std.source_conditions + std.target_conditions:
                features.add(EQUALITY if comparison.op == "=" else INEQUALITY)
        signature = Signature(frozenset(features))
        self.__dict__["_signature"] = signature
        return signature

    def check_signature(self, allowed: Iterable[str]) -> None:
        """Raise :class:`SignatureError` if features outside *allowed* are used."""
        signature = self.signature()
        if not signature.issubset(allowed):
            extra = signature.features - (set(allowed) | {CHILD, WILDCARD_FEATURE})
            raise SignatureError(
                f"mapping uses features {sorted(extra)} outside the class "
                f"SM({sorted(allowed)})"
            )

    def uses_data_comparisons(self) -> bool:
        """True iff the signature contains ``=`` or ``!=`` (the ∼ features)."""
        return bool(self.signature().features & COMPARISONS)

    def uses_skolem_functions(self) -> bool:
        return any(std.skolem_functions() for std in self.stds)

    def is_nested_relational(self) -> bool:
        """Both DTDs nested-relational (the tractable frontier of Fig. 1)."""
        return (
            self.source_dtd.is_nested_relational()
            and self.target_dtd.is_nested_relational()
        )

    def is_fully_specified(self) -> bool:
        """All stds built from fully-specified patterns (grammar (5))."""
        return all(
            is_fully_specified(std.source) and is_fully_specified(std.target)
            for std in self.stds
        )

    # -- transformations --------------------------------------------------------

    def strip_values(self) -> "SchemaMapping":
        """The ``SM°`` mapping: every std stripped of attribute values."""
        return SchemaMapping(
            self.source_dtd, self.target_dtd, [std.strip_values() for std in self.stds]
        )
