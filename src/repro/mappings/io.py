"""The ``.xsm`` mapping file format: a whole schema mapping in one file.

Format (``#`` comments allowed anywhere)::

    # professors to courses
    source:
        r -> prof*
        prof(name) -> teach
        teach(y) -> course, course
        course(cn)
    target:
        r -> course*
        course(cn, y)
    std: r[prof(x)[teach(y)[course(c1)]]] -> r[course(c1, y)]
    std: ...

Sections: exactly one ``source:`` and one ``target:`` block of DTD
declarations (the usual DTD syntax, indented or not), followed by any
number of ``std:`` lines.  :func:`render_mapping` writes the same format,
so composed mappings can be saved and reloaded.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.mappings.skolem import SkolemMapping
from repro.xmlmodel.dtd import parse_dtd


def parse_mapping(text: str) -> SkolemMapping:
    """Parse a mapping from the ``.xsm`` format."""
    source_lines: list[str] = []
    target_lines: list[str] = []
    stds: list[str] = []
    section: list[str] | None = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "source:":
            section = source_lines
        elif line == "target:":
            section = target_lines
        elif line.startswith("std:"):
            stds.append(line[len("std:"):].strip())
            section = None
        elif section is not None:
            section.append(line)
        else:
            raise ParseError(
                f"line {line_number}: expected 'source:', 'target:' or 'std:', "
                f"got {line!r}"
            )
    if not source_lines:
        raise ParseError("mapping file has no 'source:' section")
    if not target_lines:
        raise ParseError("mapping file has no 'target:' section")
    return SkolemMapping(
        parse_dtd("\n".join(source_lines)),
        parse_dtd("\n".join(target_lines)),
        stds,
    )


def _render_dtd(dtd) -> list[str]:
    lines = []
    labels = sorted(dtd.productions, key=lambda l: (l != dtd.root, l))
    for label in labels:
        attrs = dtd.attributes[label]
        head = label if not attrs else f"{label}({', '.join(attrs)})"
        lines.append(f"    {head} -> {dtd.productions[label]}")
    return lines


def render_mapping(mapping) -> str:
    """Write a mapping in the ``.xsm`` format (inverse of :func:`parse_mapping`)."""
    lines = ["source:"]
    lines.extend(_render_dtd(mapping.source_dtd))
    lines.append("target:")
    lines.extend(_render_dtd(mapping.target_dtd))
    for std in mapping.stds:
        lines.append(f"std: {std}")
    return "\n".join(lines) + "\n"
