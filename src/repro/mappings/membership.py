"""Membership in ``[[M]]``: is ``T'`` a solution for ``T``? (Section 4)

For each std and each match ``nu`` of the source pattern on ``T`` whose
values satisfy the source conditions, some extension of ``nu`` restricted
to the shared variables must match the target pattern on ``T'`` and
satisfy the target conditions.

Data complexity of this check is low (DLOGSPACE in the paper; here, a
polynomial pass for a fixed mapping); combined complexity is
``Pi_2^p``-complete — the exponential lives in the number of variables per
pattern, which is exactly what the Figure-2 benchmarks sweep.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD
from repro.patterns.matching import find_matches
from repro.values import Var
from repro.xmlmodel.tree import TreeNode


def _source_matches(std: STD, source_tree: TreeNode) -> Iterator[dict[Var, object]]:
    """Matches of the source side that pass the source conditions."""
    for valuation in find_matches(std.source, source_tree):
        if all(c.evaluate(valuation) for c in std.source_conditions):
            yield valuation


def std_is_satisfied(
    std: STD, source_tree: TreeNode, target_tree: TreeNode
) -> bool:
    """Do ``(T, T')`` satisfy this single std?"""
    if std.skolem_functions():
        raise XsmError(
            "std uses Skolem functions; use repro.mappings.skolem.is_skolem_solution"
        )
    shared = set(std.shared_variables())
    for valuation in _source_matches(std, source_tree):
        exported = {var: value for var, value in valuation.items() if var in shared}
        target_pattern = std.target.substitute(exported)
        satisfied = False
        for extension in find_matches(target_pattern, target_tree):
            combined = {**exported, **extension}
            if all(c.evaluate(combined) for c in std.target_conditions):
                satisfied = True
                break
        if not satisfied:
            return False
    return True


def is_solution(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    target_tree: TreeNode,
    check_conformance: bool = True,
) -> bool:
    """``(T, T') ∈ [[M]]``: conformance to both DTDs plus all stds."""
    if check_conformance:
        if not mapping.source_dtd.conforms(source_tree):
            return False
        if not mapping.target_dtd.conforms(target_tree):
            return False
    return all(
        std_is_satisfied(std, source_tree, target_tree) for std in mapping.stds
    )


def violations(
    mapping: SchemaMapping, source_tree: TreeNode, target_tree: TreeNode
) -> list[tuple[STD, dict[Var, object]]]:
    """Diagnostic version: every (std, source match) lacking a target match."""
    failures: list[tuple[STD, dict[Var, object]]] = []
    for std in mapping.stds:
        shared = set(std.shared_variables())
        for valuation in _source_matches(std, source_tree):
            exported = {v: value for v, value in valuation.items() if v in shared}
            target_pattern = std.target.substitute(exported)
            for extension in find_matches(target_pattern, target_tree):
                combined = {**exported, **extension}
                if all(c.evaluate(combined) for c in std.target_conditions):
                    break
            else:
                failures.append((std, valuation))
    return failures


def triggered_requirements(
    mapping: SchemaMapping, source_tree: TreeNode
) -> list[tuple[STD, dict[Var, object]]]:
    """All (std, exported shared-variable assignment) pairs the source fires.

    These are the obligations any solution must fulfil; the canonical
    solution construction in :mod:`repro.exchange` consumes them.
    """
    requirements: list[tuple[STD, dict[Var, object]]] = []
    for std in mapping.stds:
        shared = set(std.shared_variables())
        seen: set[tuple] = set()
        for valuation in _source_matches(std, source_tree):
            exported = {v: value for v, value in valuation.items() if v in shared}
            key = tuple(sorted(((v.name, value) for v, value in exported.items()), key=repr))
            if key not in seen:
                seen.add(key)
                requirements.append((std, exported))
    return requirements
