"""Membership in ``[[M]]``: is ``T'`` a solution for ``T``? (Section 4)

For each std and each match ``nu`` of the source pattern on ``T`` whose
values satisfy the source conditions, some extension of ``nu`` restricted
to the shared variables must match the target pattern on ``T'`` and
satisfy the target conditions.

Data complexity of this check is low (DLOGSPACE in the paper; here, a
polynomial pass for a fixed mapping); combined complexity is
``Pi_2^p``-complete — the exponential lives in the number of variables per
pattern, which is exactly what the Figure-2 benchmarks sweep.

The check runs on the pattern engine of :mod:`repro.patterns.matching`:
source-side obligations are deduplicated down to their *exported*
shared-variable assignments (distinct source matches exporting the same
values impose the same requirement), and target sides without conditions
are decided in the engine's Boolean semi-join mode, which short-circuits
without materializing valuation sets.  :class:`SolutionChecker` exposes
the "one fixed source, many candidate targets" shape used by the bounded
searches and the oracles, computing the obligations once.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.verdicts import (
    ConformanceFailure,
    ObligationsMet,
    Proved,
    Refuted,
    Verdict,
    ViolationWitness,
)
from repro.errors import XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD
from repro.patterns.ast import Pattern
from repro.patterns.matching import find_matches, matches_at_root
from repro.values import Var
from repro.xmlmodel.tree import TreeNode


def _source_matches(std: STD, source_tree: TreeNode) -> Iterator[dict[Var, object]]:
    """Matches of the source side that pass the source conditions."""
    for valuation in find_matches(std.source, source_tree):
        if all(c.evaluate(valuation) for c in std.source_conditions):
            yield valuation


def _exported_assignments(
    std: STD, source_tree: TreeNode
) -> list[dict[Var, object]]:
    """Deduplicated shared-variable assignments the source side fires.

    Target satisfaction depends only on the exported values, so source
    matches that agree on the shared variables collapse into one
    obligation.
    """
    shared = set(std.shared_variables())
    seen: set[frozenset] = set()
    exports: list[dict[Var, object]] = []
    for valuation in _source_matches(std, source_tree):
        exported = {var: value for var, value in valuation.items() if var in shared}
        key = frozenset(exported.items())
        if key not in seen:
            seen.add(key)
            exports.append(exported)
    return exports


def _target_satisfied(
    std: STD, target_pattern: Pattern, exported: dict[Var, object], target_tree: TreeNode
) -> bool:
    """Does some extension of *exported* match the target side on *target_tree*?"""
    if not std.target_conditions:
        # pure existence: Boolean semi-join mode, no valuation sets built
        return matches_at_root(target_pattern, target_tree)
    for extension in find_matches(target_pattern, target_tree):
        combined = {**exported, **extension}
        if all(c.evaluate(combined) for c in std.target_conditions):
            return True
    return False


class SolutionChecker:
    """Checks many candidate targets against one fixed ``(mapping, T)``.

    Source-side obligations (std, substituted target pattern, exported
    assignment) are computed once in the constructor; each
    :meth:`is_solution_for` call then only evaluates target sides, and
    the substituted patterns are shared across calls so the candidate
    trees' engines can reuse their memo entries.
    """

    def __init__(self, mapping: SchemaMapping, source_tree: TreeNode):
        self.mapping = mapping
        self.source_tree = source_tree
        self.obligations: list[tuple[STD, Pattern, dict[Var, object]]] = []
        for std in mapping.stds:
            if std.skolem_functions():
                raise XsmError(
                    "std uses Skolem functions; use "
                    "repro.mappings.skolem.SkolemSolutionChecker"
                )
            for exported in _exported_assignments(std, source_tree):
                self.obligations.append(
                    (std, std.target.substitute(exported), exported)
                )

    def is_solution_for(
        self, target_tree: TreeNode, check_conformance: bool = True
    ) -> bool:
        """``(T, target_tree) ∈ [[M]]`` for the fixed source ``T``."""
        if check_conformance and not self.mapping.target_dtd.conforms(target_tree):
            return False
        return all(
            _target_satisfied(std, pattern, exported, target_tree)
            for std, pattern, exported in self.obligations
        )


def std_is_satisfied(
    std: STD, source_tree: TreeNode, target_tree: TreeNode
) -> bool:
    """Do ``(T, T')`` satisfy this single std?"""
    if std.skolem_functions():
        raise XsmError(
            "std uses Skolem functions; use repro.mappings.skolem.is_skolem_solution"
        )
    return all(
        _target_satisfied(std, std.target.substitute(exported), exported, target_tree)
        for exported in _exported_assignments(std, source_tree)
    )


def is_solution(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    target_tree: TreeNode,
    check_conformance: bool = True,
) -> Verdict:
    """``(T, T') ∈ [[M]]``: conformance to both DTDs plus all stds.

    Returns a :class:`~repro.engine.verdicts.Verdict` (membership is
    decidable, so never ``Unknown``): ``Proved`` carries the number of
    checked obligations, ``Refuted`` either the non-conforming side or the
    first exported valuation with no target match.
    """
    if check_conformance:
        if not mapping.source_dtd.conforms(source_tree):
            return Refuted(ConformanceFailure("source"))
        if not mapping.target_dtd.conforms(target_tree):
            return Refuted(ConformanceFailure("target"))
    obligations = 0
    for index, std in enumerate(mapping.stds):
        if std.skolem_functions():
            raise XsmError(
                "std uses Skolem functions; use "
                "repro.mappings.skolem.is_skolem_solution"
            )
        for exported in _exported_assignments(std, source_tree):
            obligations += 1
            if not _target_satisfied(
                std, std.target.substitute(exported), exported, target_tree
            ):
                valuation = tuple(
                    sorted(
                        ((var.name, value) for var, value in exported.items()),
                        key=lambda item: (item[0], repr(item[1])),
                    )
                )
                return Refuted(ViolationWitness(index, valuation))
    return Proved(ObligationsMet(obligations))


def violations(
    mapping: SchemaMapping, source_tree: TreeNode, target_tree: TreeNode
) -> list[tuple[STD, dict[Var, object]]]:
    """Diagnostic version: every (std, source match) lacking a target match."""
    failures: list[tuple[STD, dict[Var, object]]] = []
    for std in mapping.stds:
        shared = set(std.shared_variables())
        for valuation in _source_matches(std, source_tree):
            exported = {v: value for v, value in valuation.items() if v in shared}
            target_pattern = std.target.substitute(exported)
            if not _target_satisfied(std, target_pattern, exported, target_tree):
                failures.append((std, valuation))
    return failures


def triggered_requirements(
    mapping: SchemaMapping, source_tree: TreeNode
) -> list[tuple[STD, dict[Var, object]]]:
    """All (std, exported shared-variable assignment) pairs the source fires.

    These are the obligations any solution must fulfil; the canonical
    solution construction in :mod:`repro.exchange` consumes them.
    """
    return [
        (std, exported)
        for std in mapping.stds
        for exported in _exported_assignments(std, source_tree)
    ]
