"""Source-to-target dependencies (Definition 3.1).

An std is

    pi(x, y), alpha(x, y)  ->  pi'(x, z), alpha'(x, z)

with ``alpha`` / ``alpha'`` conjunctions of equalities and inequalities
over data values (the paper's ``alpha_{=,!=}`` formulae).  Semantics: for
every match of ``pi`` on the source tree whose values satisfy ``alpha``,
some extension of the shared values must match ``pi'`` on the target tree
and satisfy ``alpha'``.

Text syntax (``parse_std``)::

    r[a(x), b(y)], x != y -> r2[c(x) ->* d(y)], x = z

The left/right split is on the *top-level* ``->`` (inside brackets ``->``
is the next-sibling axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError, XsmError
from repro.patterns.ast import Pattern
from repro.patterns.parser import _Parser, serialize_pattern, serialize_term
from repro.values import Const, SkolemTerm, Term, Var


@dataclass(frozen=True, slots=True)
class Comparison:
    """An atomic comparison ``left op right`` with ``op`` in {"=", "!="}."""

    left: Term
    op: str
    right: Term

    def __post_init__(self):
        if self.op not in ("=", "!="):
            raise ValueError(f"comparison operator must be '=' or '!=', got {self.op!r}")

    def variables(self) -> Iterator[Var]:
        for term in (self.left, self.right):
            if isinstance(term, Var):
                yield term
            elif isinstance(term, SkolemTerm):
                yield from _skolem_vars(term)

    def evaluate(self, assignment: dict[Var, object]) -> bool:
        """Truth value under a (total, for the mentioned variables) assignment."""
        left = _eval_term(self.left, assignment)
        right = _eval_term(self.right, assignment)
        return (left == right) if self.op == "=" else (left != right)

    def substitute(self, assignment: dict[Var, object]) -> "Comparison":
        """Replace assigned variables by constants."""
        return Comparison(
            _subst_term(self.left, assignment),
            self.op,
            _subst_term(self.right, assignment),
        )

    def __str__(self) -> str:
        return f"{serialize_term(self.left)} {self.op} {serialize_term(self.right)}"


def _skolem_vars(term: SkolemTerm) -> Iterator[Var]:
    for arg in term.args:
        if isinstance(arg, Var):
            yield arg
        elif isinstance(arg, SkolemTerm):
            yield from _skolem_vars(arg)


def _eval_term(term: Term, assignment: dict[Var, object]):
    if isinstance(term, Var):
        if term not in assignment:
            raise XsmError(f"comparison evaluated with unbound variable {term}")
        return assignment[term]
    if isinstance(term, Const):
        return term.value
    raise XsmError(
        f"cannot evaluate Skolem term {term} directly; use repro.mappings.skolem"
    )


def _subst_term(term: Term, assignment: dict[Var, object]) -> Term:
    if isinstance(term, Var) and term in assignment:
        return Const(assignment[term])
    if isinstance(term, SkolemTerm):
        return SkolemTerm(term.function, tuple(_subst_term(a, assignment) for a in term.args))
    return term


@dataclass(frozen=True, slots=True)
class STD:
    """One source-to-target dependency."""

    source: Pattern
    target: Pattern
    source_conditions: tuple[Comparison, ...] = ()
    target_conditions: tuple[Comparison, ...] = ()

    # -- variable bookkeeping ------------------------------------------------

    def source_variables(self) -> tuple[Var, ...]:
        """Variables of the source side (pattern + alpha), in order."""
        seen: dict[Var, None] = {}
        for var in self.source.variables():
            seen.setdefault(var, None)
        for comparison in self.source_conditions:
            for var in comparison.variables():
                seen.setdefault(var, None)
        return tuple(seen)

    def target_variables(self) -> tuple[Var, ...]:
        seen: dict[Var, None] = {}
        for var in self.target.variables():
            seen.setdefault(var, None)
        for comparison in self.target_conditions:
            for var in comparison.variables():
                seen.setdefault(var, None)
        return tuple(seen)

    def shared_variables(self) -> tuple[Var, ...]:
        """The universally quantified tuple ``x`` passed from source to target."""
        source_vars = set(self.source_variables())
        return tuple(v for v in self.target_variables() if v in source_vars)

    def existential_variables(self) -> tuple[Var, ...]:
        """The target-only tuple ``z`` (existentially quantified)."""
        source_vars = set(self.source_variables())
        return tuple(v for v in self.target_variables() if v not in source_vars)

    def skolem_functions(self) -> frozenset[str]:
        """Names of Skolem functions used on the target side (Section 8)."""
        names: set[str] = set()

        def collect(term: Term) -> None:
            if isinstance(term, SkolemTerm):
                names.add(term.function)
                for arg in term.args:
                    collect(arg)

        for term in self.target.terms():
            collect(term)
        for comparison in self.target_conditions:
            collect(comparison.left)
            collect(comparison.right)
        return frozenset(names)

    def strip_values(self) -> "STD":
        """The ``SM°`` projection: drop all attribute terms and conditions."""
        return STD(self.source.strip_values(), self.target.strip_values())

    def __str__(self) -> str:
        left = ", ".join(
            [serialize_pattern(self.source)]
            + [str(c) for c in self.source_conditions]
        )
        right = ", ".join(
            [serialize_pattern(self.target)]
            + [str(c) for c in self.target_conditions]
        )
        return f"{left} -> {right}"


def _parse_comparisons(parser: _Parser) -> list[Comparison]:
    comparisons = []
    while parser.peek() is not None and parser.peek()[1] == ",":
        parser.next()
        left = parser.parse_term()
        token = parser.next()
        if token[1] not in ("=", "!="):
            raise ParseError(
                f"expected '=' or '!=', got {token[1]!r}", parser.text, token[2]
            )
        right = parser.parse_term()
        comparisons.append(Comparison(left, token[1], right))
    return comparisons


def parse_std(text: str) -> STD:
    """Parse an std: ``pattern (, comparison)* -> pattern (, comparison)*``."""
    parser = _Parser(text)
    source = parser.parse_path()
    source_conditions = _parse_comparisons(parser)
    token = parser.next()
    if token[0] != "arrow":
        raise ParseError(f"expected '->', got {token[1]!r}", text, token[2])
    target = parser.parse_path()
    target_conditions = _parse_comparisons(parser)
    if parser.peek() is not None:
        __, value, offset = parser.peek()
        raise ParseError(f"trailing input {value!r} in std", text, offset)
    return STD(source, target, tuple(source_conditions), tuple(target_conditions))
