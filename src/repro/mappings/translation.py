"""Embedding relational schema mappings into XML schema mappings (Section 3).

The paper observes that XML schema mappings generalize relational ones:
a relational schema ``S = {S1(A,B), S2(C,D)}`` becomes the DTD

    r -> s1, s2 ; s1 -> t1* ; s2 -> t2*

with ``t1``/``t2`` carrying the attributes, and a conjunctive query such
as ``S1(x,y), S2(y,z)`` becomes the pattern

    r[s1[t1(x, y)], s2[t2(y, z)]]

(variable reuse expressing the join).  This module implements the
embedding: schemas to DTDs, instances to trees (and back), conjunctive
queries to patterns, and relational stds to XML stds — so the library's
XML machinery can be cross-validated against plain relational semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD, Comparison
from repro.patterns.ast import Pattern, Sequence as PatternSequence
from repro.values import Const, Term, Var
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


@dataclass(frozen=True)
class RelationalSchema:
    """A relational schema: relation name -> ordered attribute names."""

    relations: tuple[tuple[str, tuple[str, ...]], ...]

    @staticmethod
    def of(relations: Mapping[str, Sequence[str]]) -> "RelationalSchema":
        return RelationalSchema(
            tuple((name, tuple(attrs)) for name, attrs in relations.items())
        )

    def arity(self, relation: str) -> int:
        for name, attrs in self.relations:
            if name == relation:
                return len(attrs)
        raise XsmError(f"unknown relation {relation!r}")

    def names(self) -> tuple[str, ...]:
        return tuple(name for name, __ in self.relations)


def wrapper_label(relation: str) -> str:
    """The per-relation wrapper element (``s1`` in the paper's example)."""
    return relation.lower()


def tuple_label(relation: str) -> str:
    """The per-tuple element (``t1`` in the paper's example)."""
    return relation.lower() + "_t"


def schema_to_dtd(schema: RelationalSchema, root: str = "r") -> DTD:
    """The paper's DTD encoding of a relational schema."""
    productions: dict[str, str] = {
        root: ", ".join(wrapper_label(name) for name in schema.names()) or "eps"
    }
    attributes: dict[str, tuple[str, ...]] = {}
    for name, attrs in schema.relations:
        productions[wrapper_label(name)] = tuple_label(name) + "*"
        productions[tuple_label(name)] = "eps"
        attributes[tuple_label(name)] = tuple(attrs)
    return DTD(root, productions, attributes)


Instance = dict[str, set[tuple]]


def instance_to_tree(schema: RelationalSchema, instance: Instance, root: str = "r") -> TreeNode:
    """Encode a relational instance as a conforming tree (tuples sorted)."""
    wrappers = []
    for name, attrs in schema.relations:
        rows = sorted(instance.get(name, ()), key=repr)
        for row in rows:
            if len(row) != len(attrs):
                raise XsmError(
                    f"tuple {row!r} has wrong arity for {name}({', '.join(attrs)})"
                )
        children = tuple(TreeNode(tuple_label(name), row) for row in rows)
        wrappers.append(TreeNode(wrapper_label(name), (), children))
    return TreeNode(root, (), tuple(wrappers))


def tree_to_instance(schema: RelationalSchema, tree: TreeNode) -> Instance:
    """Decode a conforming tree back into a relational instance."""
    instance: Instance = {name: set() for name in schema.names()}
    by_wrapper = {wrapper_label(name): name for name in schema.names()}
    for wrapper in tree.children:
        name = by_wrapper.get(wrapper.label)
        if name is None:
            raise XsmError(f"unexpected wrapper element {wrapper.label!r}")
        for row in wrapper.children:
            instance[name].add(row.attrs)
    return instance


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)``; strings coerce to variables."""

    relation: str
    terms: tuple[Term, ...]

    @staticmethod
    def of(relation: str, *terms) -> "Atom":
        coerced = tuple(
            Var(t) if isinstance(t, str) else (t if isinstance(t, (Var, Const)) else Const(t))
            for t in terms
        )
        return Atom(relation, coerced)


def cq_to_pattern(schema: RelationalSchema, atoms: Iterable[Atom], root: str = "r") -> Pattern:
    """Translate a conjunction of atoms into a tree pattern over the DTD encoding.

    Joins are expressed by direct variable reuse (the paper notes the two
    styles — reuse vs. explicit equalities — are interchangeable).
    """
    items = []
    for atom in atoms:
        if len(atom.terms) != schema.arity(atom.relation):
            raise XsmError(f"atom {atom} has wrong arity")
        tuple_node = Pattern(tuple_label(atom.relation), tuple(atom.terms))
        wrapper_node = Pattern(
            wrapper_label(atom.relation), None, (PatternSequence((tuple_node,)),)
        )
        items.append(PatternSequence((wrapper_node,)))
    return Pattern(root, None, tuple(items))


def relational_std(
    source_schema: RelationalSchema,
    target_schema: RelationalSchema,
    source_atoms: Iterable[Atom],
    target_atoms: Iterable[Atom],
    source_conditions: Iterable[Comparison] = (),
    target_conditions: Iterable[Comparison] = (),
) -> STD:
    """An XML std encoding the relational std ``phi_s -> psi_t``."""
    return STD(
        cq_to_pattern(source_schema, source_atoms),
        cq_to_pattern(target_schema, target_atoms),
        tuple(source_conditions),
        tuple(target_conditions),
    )


def relational_mapping(
    source_schema: RelationalSchema,
    target_schema: RelationalSchema,
    stds: Iterable[tuple[Iterable[Atom], Iterable[Atom]]],
) -> SchemaMapping:
    """A full XML schema mapping encoding a relational mapping."""
    return SchemaMapping(
        schema_to_dtd(source_schema),
        schema_to_dtd(target_schema),
        [
            relational_std(source_schema, target_schema, source_atoms, target_atoms)
            for source_atoms, target_atoms in stds
        ],
    )
