"""Schema mappings with Skolem functions (Section 8).

Target sides may use terms ``f(u1, ..., uk)`` over the source variables;
the semantics existentially quantifies the *functions*: ``(T, T') ∈ [[M]]``
iff there is a valuation of the Skolem function symbols such that every
triggered std instance is satisfied on ``T'``.  The same function symbol
may occur in several stds, so its value choices are shared globally — this
is what lets Skolem mappings express "the same null for the same key", and
it is the extra power needed for closure under composition (Theorem 8.2).

Deciding membership is NP (Fagin's theorem in the relational case); we
decide it by reducing to one big conjunctive match over the target tree:

1. every triggered std instance contributes a *requirement pattern* in
   which Skolem applications become shared *unknown variables* (one per
   distinct instantiated application, with the application structure kept
   in a registry) and plain existential variables are renamed apart per
   instance;
2. requirements are joined left to right, propagating the partial
   assignment of unknowns and pruning with any comparison whose variables
   are all bound;
3. a final **congruence closure** over the registry enforces that Skolem
   symbols denote *functions*: applications with provably equal arguments
   must have equal results (this matters for nested terms such as
   ``f(g(x))``, which composition produces), equalities from ``alpha'``
   are merged in, and inequalities are checked against the closure.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.budget import current_context
from repro.engine.verdicts import (
    ConformanceFailure,
    ObligationsMet,
    Proved,
    Refuted,
    Verdict,
    AnalysisCertificate,
)
from repro.errors import NotInClassError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import Comparison
from repro.patterns.ast import Pattern
from repro.patterns.features import INEQUALITY
from repro.patterns.matching import find_matches
from repro.values import Const, SkolemTerm, Term, Var
from repro.xmlmodel.tree import TreeNode


class SkolemMapping(SchemaMapping):
    """A schema mapping whose stds may use Skolem terms on target sides."""

    def check_composable_class(self) -> None:
        """Verify membership in the class closed under composition (Thm 8.2).

        Requirements: both DTDs strictly nested-relational, all stds
        fully specified, equality only (no inequalities).
        """
        if not self.source_dtd.is_strictly_nested_relational():
            raise NotInClassError("source DTD is not strictly nested-relational")
        if not self.target_dtd.is_strictly_nested_relational():
            raise NotInClassError("target DTD is not strictly nested-relational")
        if not self.is_fully_specified():
            raise NotInClassError("stds must be fully specified (grammar (5))")
        if INEQUALITY in self.signature().features:
            raise NotInClassError("inequalities are not allowed in the composable class")


#: Registry of unknown variables standing for instantiated Skolem
#: applications: unknown -> SkolemTerm whose args are Const or unknown Var.
Registry = dict[Var, SkolemTerm]


class _Instantiator:
    """Grounds target terms, inventing shared unknowns for Skolem applications."""

    def __init__(self):
        self.registry: Registry = {}

    def term(self, term: Term, assignment: dict[Var, object]) -> Term:
        if isinstance(term, Var):
            if term in assignment:
                return Const(assignment[term])
            return term  # plain existential variable; renamed apart by caller
        if isinstance(term, Const):
            return term
        assert isinstance(term, SkolemTerm)
        args = tuple(self.term(a, assignment) for a in term.args)
        application = SkolemTerm(term.function, args)
        unknown = Var("!sk:" + _application_key(application))
        self.registry.setdefault(unknown, application)
        return unknown

    def pattern(self, pattern: Pattern, assignment: dict[Var, object]) -> Pattern:
        def on_node(p: Pattern) -> Pattern:
            if p.vars is None:
                return p
            return Pattern(
                p.label, tuple(self.term(t, assignment) for t in p.vars), p.items
            )

        return pattern.map_patterns(on_node)

    def comparison(self, c: Comparison, assignment: dict[Var, object]) -> Comparison:
        return Comparison(
            self.term(c.left, assignment), c.op, self.term(c.right, assignment)
        )


def _application_key(application: SkolemTerm) -> str:
    parts = []
    for arg in application.args:
        if isinstance(arg, Const):
            parts.append(f"c{arg.value!r}")
        else:
            assert isinstance(arg, Var)
            parts.append(arg.name)
    return f"{application.function}({','.join(parts)})"


def _rename_term(term: Term, renaming: dict[Var, Var]) -> Term:
    if isinstance(term, Var):
        return renaming.get(term, term)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(term.function, tuple(_rename_term(a, renaming) for a in term.args))
    return term


class Requirement:
    """One triggered std instance: preconditions -> pattern + conditions.

    *preconditions* are instantiated source comparisons that mention
    Skolem terms (SO-tgd style, Section 8): the instance only fires under
    function valuations satisfying them, so a solution may alternatively
    *defeat* one of them.
    """

    __slots__ = ("preconditions", "pattern", "conditions")

    def __init__(self, preconditions, pattern, conditions):
        self.preconditions: tuple[Comparison, ...] = preconditions
        self.pattern: Pattern = pattern
        self.conditions: tuple[Comparison, ...] = conditions


def _contains_skolem(comparison: Comparison) -> bool:
    return isinstance(comparison.left, SkolemTerm) or isinstance(
        comparison.right, SkolemTerm
    )


def skolem_requirements(
    mapping: SchemaMapping, source_tree: TreeNode
) -> tuple[list[Requirement], Registry]:
    """All instantiated target obligations fired by *source_tree*.

    Returns ``(requirements, registry)``; the registry maps every unknown
    variable to the Skolem application it denotes.  Pure-variable source
    conditions are evaluated immediately; Skolem-term source conditions
    become the requirement's preconditions.
    """
    instantiator = _Instantiator()
    requirements: list[Requirement] = []
    for std_index, std in enumerate(mapping.stds):
        existentials = set(std.existential_variables())
        plain_conditions = [
            c for c in std.source_conditions if not _contains_skolem(c)
        ]
        skolem_conditions = [c for c in std.source_conditions if _contains_skolem(c)]
        for match_index, valuation in enumerate(
            find_matches(std.source, source_tree)
        ):
            if not all(c.evaluate(valuation) for c in plain_conditions):
                continue
            renaming = {
                var: Var(f"!ex{std_index}.{match_index}:{var.name}")
                for var in existentials
            }
            preconditions = tuple(
                instantiator.comparison(c, valuation) for c in skolem_conditions
            )
            pattern = instantiator.pattern(
                std.target.rename_variables(renaming), valuation
            )
            conditions = tuple(
                instantiator.comparison(
                    Comparison(
                        _rename_term(c.left, renaming),
                        c.op,
                        _rename_term(c.right, renaming),
                    ),
                    valuation,
                )
                for c in std.target_conditions
            )
            requirements.append(Requirement(preconditions, pattern, conditions))
    return requirements, instantiator.registry


class _Congruence:
    """Union-find with congruence closure over Skolem applications.

    Nodes: ``("const", v)``, ``("var", Var)`` and ``("app", f, arg_roots)``
    handled implicitly through the registry.  A class may be pinned to at
    most one constant; merging two differently pinned classes is
    inconsistent.
    """

    def __init__(self):
        self._parent: dict = {}
        self._pinned: dict = {}  # root -> constant value
        self.consistent = True

    def _find(self, node):
        self._parent.setdefault(node, node)
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def node_of(self, term: Term, bound: dict[Var, object]):
        if isinstance(term, Const):
            node = ("const", term.value)
            self._pinned.setdefault(self._find(node), term.value)
            return node
        assert isinstance(term, Var)
        if term in bound:
            node = ("const", bound[term])
            self._pinned.setdefault(self._find(node), bound[term])
            return node
        return ("var", term)

    def merge(self, a, b) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        pa, pb = self._pinned.get(ra), self._pinned.get(rb)
        if pa is not None and pb is not None and pa != pb:
            self.consistent = False
            return
        self._parent[ra] = rb
        if pa is not None:
            self._pinned[rb] = pa

    def same(self, a, b) -> bool:
        return self._find(a) == self._find(b)


def _constraints_solvable(
    registry: Registry,
    conditions: list[Comparison],
    bound: dict[Var, object],
) -> bool:
    """Check functional consistency + conditions under the assignment *bound*.

    Unbound variables (Skolem applications appearing only in ``alpha'``)
    range over an infinite domain, so after the congruence closure an
    inequality fails only when its two sides fall in the same class.
    """
    congruence = _Congruence()
    app_nodes: list[tuple[str, tuple, object]] = []  # (function, arg nodes, result node)
    for unknown, application in registry.items():
        result = congruence.node_of(unknown, bound)
        args = tuple(congruence.node_of(arg, bound) for arg in application.args)
        app_nodes.append((application.function, args, result))
    for condition in conditions:
        if condition.op == "=":
            congruence.merge(
                congruence.node_of(condition.left, bound),
                congruence.node_of(condition.right, bound),
            )
    # congruence closure fixpoint: equal arguments force equal results
    changed = True
    while changed and congruence.consistent:
        changed = False
        for i in range(len(app_nodes)):
            fi, args_i, result_i = app_nodes[i]
            for j in range(i + 1, len(app_nodes)):
                fj, args_j, result_j = app_nodes[j]
                if fi != fj or len(args_i) != len(args_j):
                    continue
                if congruence.same(result_i, result_j):
                    continue
                if all(congruence.same(a, b) for a, b in zip(args_i, args_j)):
                    congruence.merge(result_i, result_j)
                    changed = True
    if not congruence.consistent:
        return False
    for condition in conditions:
        if condition.op == "!=":
            left = congruence.node_of(condition.left, bound)
            right = congruence.node_of(condition.right, bound)
            if congruence.same(left, right):
                return False
    return True


def _negate(comparison: Comparison) -> Comparison:
    return Comparison(
        comparison.left, "=" if comparison.op == "!=" else "!=", comparison.right
    )


def _solve_requirements(
    requirements: list[Requirement],
    registry: Registry,
    target_tree: TreeNode,
) -> Iterator[dict[Var, object]]:
    """Assignments to the unknowns satisfying every requirement on the target.

    Each requirement is either *satisfied* (preconditions asserted, pattern
    matched, conditions asserted) or *defeated* (one precondition negated,
    pattern not required).  Consistency of the accumulated constraint set —
    including functional consistency of the Skolem applications — is
    re-checked through the congruence closure at every step, pruning dead
    branches early.
    """

    context = current_context()

    def backtrack(
        index: int, bound: dict[Var, object], constraints: list[Comparison]
    ) -> Iterator[dict[Var, object]]:
        if context is not None:
            context.charge()
        if not _constraints_solvable(registry, constraints, bound):
            return
        if index == len(requirements):
            yield dict(bound)
            return
        requirement = requirements[index]
        grounded = requirement.pattern.substitute(bound)
        asserted = (
            constraints
            + list(requirement.preconditions)
            + list(requirement.conditions)
        )
        for extension in find_matches(grounded, target_tree):
            yield from backtrack(index + 1, {**bound, **extension}, asserted)
        for precondition in requirement.preconditions:
            yield from backtrack(
                index + 1, bound, constraints + [_negate(precondition)]
            )

    yield from backtrack(0, {}, [])


def find_skolem_witness(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    target_tree: TreeNode,
) -> dict[Var, object] | None:
    """A valuation of the shared unknowns witnessing ``(T,T') ∈ [[M]]``, or None."""
    requirements, registry = skolem_requirements(mapping, source_tree)
    for solution in _solve_requirements(requirements, registry, target_tree):
        return solution
    return None


class SkolemSolutionChecker:
    """Checks many candidate targets against one fixed ``(mapping, T)``.

    The Skolem analogue of
    :class:`repro.mappings.membership.SolutionChecker`: the triggered
    requirements and the unknown registry depend only on the source tree,
    so they are instantiated once and reused across every candidate
    target (the bounded-search and composition loops).
    """

    def __init__(self, mapping: SchemaMapping, source_tree: TreeNode):
        self.mapping = mapping
        self.source_tree = source_tree
        self.requirements, self.registry = skolem_requirements(mapping, source_tree)

    def is_solution_for(
        self, target_tree: TreeNode, check_conformance: bool = True
    ) -> bool:
        """``(T, target_tree) ∈ [[M]]`` under the Skolem semantics."""
        if check_conformance and not self.mapping.target_dtd.conforms(target_tree):
            return False
        for __ in _solve_requirements(self.requirements, self.registry, target_tree):
            return True
        return False


def is_skolem_solution(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    target_tree: TreeNode,
    check_conformance: bool = True,
) -> Verdict:
    """``(T, T') ∈ [[M]]`` under the Skolem semantics of Section 8.

    Returns a :class:`~repro.engine.verdicts.Verdict` (never ``Unknown`` —
    the unknowns range over a finite candidate space per target tree).
    """
    if check_conformance:
        if not mapping.source_dtd.conforms(source_tree):
            return Refuted(ConformanceFailure("source"))
        if not mapping.target_dtd.conforms(target_tree):
            return Refuted(ConformanceFailure("target"))
    requirements, registry = skolem_requirements(mapping, source_tree)
    for __ in _solve_requirements(requirements, registry, target_tree):
        return Proved(ObligationsMet(len(requirements)))
    return Refuted(
        AnalysisCertificate(
            "skolem-membership",
            "no valuation of the shared Skolem unknowns satisfies every "
            "triggered requirement",
        )
    )
