"""XML schema mappings (Definition 3.1 / 3.2 of the paper).

A mapping ``M = (D_s, D_t, Sigma)`` consists of a source DTD, a target DTD
and a set of source-to-target dependencies (stds)

    pi(x, y), alpha(x, y)  ->  pi'(x, z), alpha'(x, z)

where ``pi`` / ``pi'`` are tree patterns and ``alpha`` / ``alpha'`` are
conjunctions of (in)equalities over data values.  ``[[M]]`` is the set of
pairs of trees ``(T, T')`` with ``T |= D_s``, ``T' |= D_t`` and every std
satisfied; membership in ``[[M]]`` is decided by
:func:`~repro.mappings.membership.is_solution`.

Section 8's extension with Skolem functions lives in
:mod:`repro.mappings.skolem`; the canonical embedding of relational schema
mappings (Section 3) in :mod:`repro.mappings.translation`.
"""

from repro.mappings.std import STD, Comparison, parse_std
from repro.mappings.mapping import SchemaMapping, Signature
from repro.mappings.membership import is_solution, violations
from repro.mappings.skolem import SkolemMapping, is_skolem_solution

__all__ = [
    "STD",
    "Comparison",
    "parse_std",
    "SchemaMapping",
    "Signature",
    "is_solution",
    "violations",
    "SkolemMapping",
    "is_skolem_solution",
]
