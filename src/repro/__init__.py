"""repro — a reproduction of "XML Schema Mappings" (PODS 2009).

Expressive XML schema mappings with vertical/horizontal navigation and data
comparisons, their static analysis (consistency, absolute consistency),
complexity, and composition, as defined by Amano, Libkin and Murlak.

The public API is re-exported here; see README.md for a tour.
"""

from repro.xmlmodel import (
    DTD,
    TreeNode,
    from_xml,
    parse_dtd,
    parse_tree,
    serialize_tree,
    to_xml,
    tree,
)

__all__ = [
    "DTD",
    "TreeNode",
    "parse_dtd",
    "parse_tree",
    "serialize_tree",
    "tree",
    "from_xml",
    "to_xml",
]

__version__ = "1.0.0"
