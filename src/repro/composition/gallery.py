"""The Proposition 8.1 gallery: features that break closure under composition.

The paper exhibits mapping pairs whose composition is a *disjunctive*
relation that no mapping of the std language defines.  For the features
(a) wildcard, (b) descendant, (c) next-sibling, (d) inequality — with
attributes only on starred element types — the composition over
``D = {r -> eps}`` and ``D' = {r -> c1? c2? c3?}`` is exactly

    { (r, T) : T matches r/c1  or  T matches r/c2 } ,

and for fully-specified stds with an attribute on an *unstarred* element
type (the paper's second illustration) it is

    { (T, r) : T carries at most two distinct data values } ,

whose definition would need ``x = y ∨ y = z ∨ x = z``.

Inexpressibility itself is a proof, not a computation; what the library
*demonstrates* (see ``tests/test_composition_closure.py``) is that the
semantics of each pair really is the stated disjunction, by exhaustive
enumeration over the possible trees.
"""

from __future__ import annotations

from repro.mappings.skolem import SkolemMapping

#: Source and final DTDs shared by the (a)-(d) gallery entries.
D1_TEXT = "r -> eps"
D3_TEXT = "r -> c1? c2? c3?"


def wildcard_pair() -> tuple[SkolemMapping, SkolemMapping]:
    """(a) The paper's base example: r -> r/_/b3 composed with r/bi -> r/ci.

    Every middle tree is r[b1[b3]] or r[b2[b3]]; the choice of branch
    decides whether c1 or c2 is required.
    """
    d2 = "r -> b1 | b2\nb1 -> b3\nb2 -> b3"
    m12 = SkolemMapping.parse(D1_TEXT, d2, ["r -> r/_/b3"])
    m23 = SkolemMapping.parse(d2, D3_TEXT, ["r/b1 -> r/c1", "r/b2 -> r/c2"])
    return m12, m23


def descendant_pair() -> tuple[SkolemMapping, SkolemMapping]:
    """(b) Descendant instead of wildcard: r -> r//b3."""
    d2 = "r -> b1 | b2\nb1 -> b3\nb2 -> b3"
    m12 = SkolemMapping.parse(D1_TEXT, d2, ["r -> r//b3"])
    m23 = SkolemMapping.parse(d2, D3_TEXT, ["r/b1 -> r/c1", "r/b2 -> r/c2"])
    return m12, m23


def next_sibling_pair() -> tuple[SkolemMapping, SkolemMapping]:
    """(c) Next-sibling: the middle is (b1, b3) or (b3, b2)."""
    d2 = "r -> (b1, b3) | (b3, b2)"
    m12 = SkolemMapping.parse(D1_TEXT, d2, ["r -> r[_ -> _]"])
    m23 = SkolemMapping.parse(d2, D3_TEXT, ["r/b1 -> r/c1", "r/b2 -> r/c2"])
    return m12, m23


def inequality_pair() -> tuple[SkolemMapping, SkolemMapping]:
    """(d) Inequality: the middle carries one d-value and one e-value.

    Sigma12 forces at least one ``d`` and one ``e``; a minimal middle has
    exactly one of each.  If their values are chosen equal, only the
    equality std of Sigma23 fires (requiring c1); if distinct, only the
    inequality std fires (requiring c2).  Hence the composition is exactly
    the disjunction c1-or-c2.
    """
    d2 = "r -> d*, e*\nd(x)\ne(y)"
    m12 = SkolemMapping.parse(D1_TEXT, d2, ["r -> r[d(u), e(w)]"])
    m23 = SkolemMapping.parse(
        d2,
        D3_TEXT,
        ["r[d(x), e(x)] -> r/c1", "r[d(x), e(y)], x != y -> r/c2"],
    )
    return m12, m23


def unstarred_attribute_pair() -> tuple[SkolemMapping, SkolemMapping]:
    """Fully-specified stds, but attributes on unstarred elements.

    The paper's second illustration: D1 = {r -> a*}, D2 = {r -> b, b},
    D3 = {r -> eps}, with Sigma12 copying every a-value into a b and
    Sigma23 trivial.  The middle has exactly two b's, so a source tree has
    a solution iff it carries at most two distinct values — a condition
    needing the disjunction ``x = y ∨ y = z ∨ x = z``.
    """
    d2 = "r2 -> b, b\nb(x)"  # two b children; b is unstarred yet carries a value
    m12 = SkolemMapping.parse("r -> a*\na(x)", d2, ["r/a(x) -> r2/b(x)"])
    m23 = SkolemMapping.parse(d2, "r3 -> eps", ["r2 -> r3"])
    return m12, m23
