"""Membership in the composition ``[[M12]] ∘ [[M23]]`` (Section 7.2).

``(T1, T3)`` belongs to the composition iff some ``T2 |= D2`` is a solution
for ``T1`` under ``M12`` and has ``T3`` as a solution under ``M23``.  We
search for ``T2`` directly, made feasible by a **finite value
abstraction**:

    For mappings without data comparisons, if any ``T2`` works then the
    tree obtained by collapsing every value outside
    ``adom(T1) ∪ adom(T3) ∪ constants`` to a single fresh value also
    works: collapsing preserves the requirement matches of ``Sigma12``
    (constants and exported values survive), and every ``Sigma23``
    trigger exports only values that must literally occur in ``T3``
    anyway.

So for ``SM(⇓, ⇒)`` the abstraction is exact, and the only approximation
left is the bound on ``|T2|`` (the paper's upper bound is 2-EXPTIME with a
construction not given in the text; see DESIGN.md, substitution 2) — which
is why exhausting the middle-tree bound yields ``Unknown`` rather than a
refutation.  With comparisons, composition is undecidable (Theorem 7.3),
and this search is the corresponding sound-but-bounded procedure — extra
fresh values can be requested via *extra_fresh* since distinct values then
matter.
"""

from __future__ import annotations

from repro.consistency.bounded import mapping_constants
from repro.engine.budget import ExecutionContext, resolve_budget
from repro.engine.verdicts import (
    ConformanceFailure,
    MiddleTree,
    Proved,
    Refuted,
    Unknown,
    Verdict,
)
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import SolutionChecker, is_solution
from repro.mappings.skolem import SkolemSolutionChecker, is_skolem_solution
from repro.verification.enumeration import enumerate_trees
from repro.xmlmodel.tree import TreeNode


def composition_value_domain(
    m12: SchemaMapping,
    m23: SchemaMapping,
    source_tree: TreeNode,
    final_tree: TreeNode,
    extra_fresh: int = 1,
) -> tuple:
    """The finite domain for intermediate values; exact for SM(⇓,⇒) with 1 fresh."""
    domain: dict[object, None] = {}
    for value in sorted(source_tree.adom() | final_tree.adom(), key=repr):
        domain.setdefault(value, None)
    for value in mapping_constants(m12) + mapping_constants(m23):
        domain.setdefault(value, None)
    for i in range(extra_fresh):
        domain.setdefault(f"#mid{i}", None)
    return tuple(domain)


def default_mid_size(
    m12: SchemaMapping, m23: SchemaMapping, source_tree: TreeNode
) -> int:
    """Heuristic bound on the intermediate tree size.

    The canonical middle merges one target-pattern instance per
    ``Sigma12`` trigger plus the required structure of ``D2``; this bound
    covers it for the instance families used in tests and benchmarks.
    """
    pattern_budget = sum(std.target.size for std in m12.stds)
    triggers = max(1, sum(1 for node in source_tree.nodes()))
    return min(3 + pattern_budget * 2, 2 + pattern_budget + triggers)


def find_composition_middle(
    m12: SchemaMapping,
    m23: SchemaMapping,
    source_tree: TreeNode,
    final_tree: TreeNode,
    max_mid_size: int | None = None,
    extra_fresh: int = 1,
    skolem: bool = False,
    context: ExecutionContext | None = None,
) -> TreeNode | None:
    """An intermediate ``T2`` witnessing the composition pair, or None.

    The raw search behind :func:`composition_contains`; None means no
    middle within the size bound.  *max_mid_size* defaults to the
    context budget's ``max_mid_size`` when set, else the
    :func:`default_mid_size` heuristic.
    """
    if max_mid_size is None:
        max_mid_size = resolve_budget(context).max_mid_size
    if max_mid_size is None:
        max_mid_size = default_mid_size(m12, m23, source_tree)
    domain = composition_value_domain(m12, m23, source_tree, final_tree, extra_fresh)
    check = is_skolem_solution if skolem else is_solution
    # T1 is fixed while T2 varies: precompute the Sigma12 obligations once;
    # the M23 checks share T3's engine (and its memo tables) across middles
    checker12 = (SkolemSolutionChecker if skolem else SolutionChecker)(
        m12, source_tree
    )
    for middle in enumerate_trees(m12.target_dtd, max_mid_size, domain):
        if context is not None:
            context.charge()
        if checker12.is_solution_for(middle, check_conformance=False) and check(
            m23, middle, final_tree, check_conformance=False
        ):
            return middle
    return None


def composition_contains(
    m12: SchemaMapping,
    m23: SchemaMapping,
    source_tree: TreeNode,
    final_tree: TreeNode,
    max_mid_size: int | None = None,
    extra_fresh: int = 1,
    skolem: bool = False,
    context: ExecutionContext | None = None,
) -> Verdict:
    """Is ``(T1, T3) ∈ [[M12]] ∘ [[M23]]`` (with a bounded intermediate)?

    ``Proved`` carries the intermediate tree; a non-conforming input pair
    is ``Refuted`` outright; an exhausted middle-tree bound is
    ``Unknown`` (exact only up to the bound — module docstring).
    """
    if not m12.source_dtd.conforms(source_tree):
        return Refuted(ConformanceFailure("source"))
    if not m23.target_dtd.conforms(final_tree):
        return Refuted(ConformanceFailure("target"))
    middle = find_composition_middle(
        m12, m23, source_tree, final_tree,
        max_mid_size, extra_fresh, skolem, context,
    )
    if middle is not None:
        return Proved(MiddleTree(middle))
    return Unknown(
        "no intermediate tree within the size bound; the bound-free upper "
        "bound (2-EXPTIME, Theorem 7.4) has no published construction",
        bound_exhausted=True,
    )


def composition_contains_exact(
    m12: SchemaMapping,
    m23: SchemaMapping,
    source_tree: TreeNode,
    final_tree: TreeNode,
) -> Verdict:
    """Exact composition membership for the Theorem 8.2 class.

    For Skolem mappings over strictly nested-relational DTDs with
    fully-specified stds, the composed mapping is *equal* to the
    composition, so membership reduces to one Skolem-membership check on
    ``compose(M12, M23)`` — no intermediate-tree bound at all, hence
    never ``Unknown``.  Raises :class:`~repro.errors.NotInClassError`
    outside the class (fall back to :func:`composition_contains` there).
    """
    from repro.composition.compose import compose
    from repro.mappings.skolem import SkolemMapping

    composed = compose(
        SkolemMapping(m12.source_dtd, m12.target_dtd, m12.stds),
        SkolemMapping(m23.source_dtd, m23.target_dtd, m23.stds),
    )
    return is_skolem_solution(composed, source_tree, final_tree)
