"""Composition of schema mappings (Sections 7 and 8).

* :mod:`repro.composition.semantics` — membership in
  ``[[M12]] ∘ [[M23]]`` (Theorem 7.3) via intermediate-tree search with a
  finite data-value abstraction.
* :mod:`repro.composition.conscomp` — consistency of composition
  (Theorem 7.1 / Proposition 7.2), exact for comparison-free mappings via
  chained trigger-set reachability over tree automata.
* :mod:`repro.composition.compose` — the constructive closure result
  (Theorem 8.2): syntactic composition for Skolem mappings over strictly
  nested-relational DTDs with fully-specified stds.
* :mod:`repro.composition.gallery` — the Proposition 8.1 counterexamples
  showing which features break closure.
"""

from repro.composition.semantics import (
    composition_contains,
    composition_contains_exact,
    composition_value_domain,
)
from repro.composition.conscomp import (
    is_composition_consistent,
    is_composition_consistent_bounded,
)
from repro.composition.compose import compose

__all__ = [
    "composition_contains",
    "composition_contains_exact",
    "composition_value_domain",
    "is_composition_consistent",
    "is_composition_consistent_bounded",
    "compose",
]
