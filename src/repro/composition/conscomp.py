"""Consistency of composition: is ``[[M1]] ∘ ... ∘ [[Mn]]`` non-empty?
(Theorem 7.1 and Proposition 7.2.)

For comparison-free mappings the problem is EXPTIME-complete and decided
exactly by chaining the trigger-set machinery of Section 5:

* the first source DTD yields the achievable trigger sets of ``Sigma_1``'s
  source patterns;
* each intermediate DTD ``D_i`` yields achievable pairs
  ``(satisfied targets of Sigma_{i-1}, triggered sources of Sigma_i)``
  from **one** closure automaton holding both pattern families — a tree
  ``T_i`` works iff its satisfied-set covers some feasible trigger set
  from the previous stage, in which case its own trigger set becomes
  feasible for the next;
* the last target DTD must cover some feasible final trigger set.

All data values are taken equal, which is lossless without comparisons
(same argument as in :mod:`repro.consistency.cons_automata`).

With comparisons the problem is undecidable (Theorem 7.1(2)); the bounded
variant searches for an explicit witness chain and reports ``Unknown``
when its bounds are exhausted.
"""

from __future__ import annotations

from repro.engine.budget import ExecutionContext, resolve_budget
from repro.engine.cache import achievable_sets, dtd_automaton
from repro.engine.verdicts import (
    AnalysisCertificate,
    Proved,
    Refuted,
    Unknown,
    Verdict,
    WitnessChain,
)
from repro.errors import SignatureError, XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import SolutionChecker
from repro.patterns.ast import Pattern
from repro.values import Const
from repro.verification.enumeration import enumerate_trees
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def _check_chain(mappings: list[SchemaMapping]) -> None:
    if not mappings:
        raise XsmError("composition of zero mappings")
    for mapping in mappings:
        if mapping.uses_data_comparisons():
            raise SignatureError(
                "exact consistency of composition handles comparison-free "
                "mappings only (the problem is undecidable with ∼); "
                "use is_composition_consistent_bounded"
            )
        for std in mapping.stds:
            for pattern in (std.source, std.target):
                if any(isinstance(t, Const) for t in pattern.terms()):
                    raise SignatureError("constants are outside SM(⇓,⇒)")
    for left, right in zip(mappings, mappings[1:]):
        if left.target_dtd.labels != right.source_dtd.labels or any(
            str(left.target_dtd.productions[label])
            != str(right.source_dtd.productions[label])
            for label in left.target_dtd.labels
        ):
            raise XsmError("mappings do not chain: target DTD differs from next source DTD")


def _pattern_labels(patterns: list[Pattern]) -> frozenset[str]:
    labels: set[str] = set()
    for pattern in patterns:
        labels.update(pattern.labels_used())
    return frozenset(labels)


def _achievable(
    dtd: DTD, patterns: list[Pattern], context: ExecutionContext | None
) -> dict[frozenset[int], TreeNode]:
    """Achievable satisfaction bit-sets of *patterns*, with witness trees.

    One product reachability pass, compiled and memoized through the
    engine's :class:`~repro.engine.cache.CompilationCache`.
    """
    return achievable_sets(
        dtd, patterns, _pattern_labels(patterns), with_arity=True, context=context
    )


def is_composition_consistent(
    mappings: list[SchemaMapping], context: ExecutionContext | None = None
) -> Verdict:
    """Exact ``CONSCOMP`` for a chain of comparison-free mappings (EXPTIME).

    ``Proved`` carries a witness chain ``T_1, ..., T_{n+1}`` (all values
    0) with consecutive pairs in the respective ``[[M_i]]``; ``Refuted``
    names the stage at which no conforming tree can serve.
    """
    _check_chain(mappings)
    first = mappings[0]
    source_sets = _achievable(
        first.source_dtd, [std.source for std in first.stds], context
    )
    if not source_sets:
        return Refuted(
            AnalysisCertificate(
                "conscomp", "the first mapping's source DTD is unsatisfiable"
            )
        )
    # feasible trigger set -> a chain of (undecorated) witness trees so far
    feasible: dict[frozenset[int], tuple[TreeNode, ...]] = {
        triggered: (witness,) for triggered, witness in source_sets.items()
    }
    for index in range(len(mappings)):
        current = mappings[index]
        nxt = mappings[index + 1] if index + 1 < len(mappings) else None
        target_patterns = [std.target for std in current.stds]
        next_sources = [std.source for std in nxt.stds] if nxt else []
        combined = _achievable(
            current.target_dtd, target_patterns + next_sources, context
        )
        k = len(target_patterns)
        new_feasible: dict[frozenset[int], tuple[TreeNode, ...]] = {}
        for bits, witness in combined.items():
            satisfied = frozenset(i for i in bits if i < k)
            triggered = frozenset(i - k for i in bits if i >= k)
            for required, chain in feasible.items():
                if required <= satisfied:
                    new_feasible.setdefault(triggered, chain + (witness,))
                    break
        if not new_feasible:
            return Refuted(
                AnalysisCertificate(
                    "conscomp",
                    f"stage {index + 1}: no conforming tree of the "
                    f"intermediate DTD satisfies all targets of any feasible "
                    f"trigger set of mapping {index + 1}",
                )
            )
        feasible = new_feasible
    # the final stage's "triggered" sets are all empty frozensets; success
    chain = min(feasible.values(), key=lambda trees: sum(t.size for t in trees))
    dtds = [mappings[0].source_dtd] + [m.target_dtd for m in mappings]
    decorated = tuple(
        dtd_automaton(dtd, context=context).decorate(tree)
        for dtd, tree in zip(dtds, chain)
    )
    return Proved(WitnessChain(decorated))


def is_composition_consistent_bounded(
    mappings: list[SchemaMapping],
    max_tree_size: int | None = None,
    value_domain: tuple = (0, 1),
    context: ExecutionContext | None = None,
) -> Verdict:
    """Bounded witness-chain search (sound only): works with comparisons.

    ``Proved`` carries the witness chain; exhausting the bounds yields
    ``Unknown`` (the class is undecidable, so no refutation is possible).
    """
    if not mappings:
        raise XsmError("composition of zero mappings")
    if max_tree_size is None:
        max_tree_size = resolve_budget(context).max_chain_size

    def extend(index: int, previous: TreeNode, chain: list[TreeNode]) -> bool:
        if index == len(mappings):
            return True
        mapping = mappings[index]
        # *previous* is fixed for this whole stage: one obligation set
        checker = SolutionChecker(mapping, previous)
        for tree in enumerate_trees(mapping.target_dtd, max_tree_size, value_domain):
            if context is not None:
                context.charge()
            if checker.is_solution_for(tree, check_conformance=False):
                chain.append(tree)
                if extend(index + 1, tree, chain):
                    return True
                chain.pop()
        return False

    first = mappings[0]
    for source in enumerate_trees(first.source_dtd, max_tree_size, value_domain):
        if context is not None:
            context.charge()
        chain: list[TreeNode] = [source]
        if extend(0, source, chain):
            return Proved(WitnessChain(tuple(chain)))
    return Unknown(
        f"no witness chain with trees of size <= {max_tree_size} over the "
        f"value domain {value_domain!r}; the class admits no complete "
        "procedure (Theorem 7.1(2))",
        bound_exhausted=True,
    )
