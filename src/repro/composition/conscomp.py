"""Consistency of composition: is ``[[M1]] ∘ ... ∘ [[Mn]]`` non-empty?
(Theorem 7.1 and Proposition 7.2.)

For comparison-free mappings the problem is EXPTIME-complete and decided
exactly by chaining the trigger-set machinery of Section 5:

* the first source DTD yields the achievable trigger sets of ``Sigma_1``'s
  source patterns;
* each intermediate DTD ``D_i`` yields achievable pairs
  ``(satisfied targets of Sigma_{i-1}, triggered sources of Sigma_i)``
  from **one** closure automaton holding both pattern families — a tree
  ``T_i`` works iff its satisfied-set covers some feasible trigger set
  from the previous stage, in which case its own trigger set becomes
  feasible for the next;
* the last target DTD must cover some feasible final trigger set.

All data values are taken equal, which is lossless without comparisons
(same argument as in :mod:`repro.consistency.cons_automata`).

With comparisons the problem is undecidable (Theorem 7.1(2)); the bounded
variant searches for an explicit witness chain.
"""

from __future__ import annotations

from repro.automata.dtd_automaton import DTDAutomaton
from repro.automata.duta import ProductAutomaton, reachable_states
from repro.automata.pattern_automaton import PatternClosureAutomaton
from repro.errors import SignatureError, XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import SolutionChecker
from repro.patterns.ast import Pattern
from repro.values import Const
from repro.verification.enumeration import enumerate_trees
from repro.xmlmodel.dtd import DTD


def _check_chain(mappings: list[SchemaMapping]) -> None:
    if not mappings:
        raise XsmError("composition of zero mappings")
    for mapping in mappings:
        if mapping.uses_data_comparisons():
            raise SignatureError(
                "exact consistency of composition handles comparison-free "
                "mappings only (the problem is undecidable with ∼); "
                "use is_composition_consistent_bounded"
            )
        for std in mapping.stds:
            for pattern in (std.source, std.target):
                if any(isinstance(t, Const) for t in pattern.terms()):
                    raise SignatureError("constants are outside SM(⇓,⇒)")
    for left, right in zip(mappings, mappings[1:]):
        if left.target_dtd.labels != right.source_dtd.labels or any(
            str(left.target_dtd.productions[l]) != str(right.source_dtd.productions[l])
            for l in left.target_dtd.labels
        ):
            raise XsmError("mappings do not chain: target DTD differs from next source DTD")


def _pattern_labels(patterns: list[Pattern]) -> frozenset[str]:
    labels: set[str] = set()
    for pattern in patterns:
        labels.update(pattern.labels_used())
    return frozenset(labels)


def _achievable(dtd: DTD, patterns: list[Pattern]):
    """Achievable satisfaction bit-sets of *patterns* over conforming trees."""
    extra = _pattern_labels(patterns)
    closure = PatternClosureAutomaton(
        patterns, extra_labels=dtd.labels | extra, arity_of=dtd.arity
    )
    dtd_automaton = DTDAutomaton(dtd, extra_labels=extra)
    product = ProductAutomaton([dtd_automaton, closure])
    realized = reachable_states(
        product,
        prune=lambda state: not state[0][1],
        prune_horizontal=lambda label, h: dtd_automaton.horizontal_dead(h[0]),
    )
    sets = set()
    for state, __ in realized.items():
        if dtd_automaton.is_accepting(state[0]):
            sets.add(closure.trigger_set(state[1]))
    return sets


def is_composition_consistent(mappings: list[SchemaMapping]) -> bool:
    """Exact ``CONSCOMP`` for a chain of comparison-free mappings (EXPTIME)."""
    _check_chain(mappings)
    first = mappings[0]
    feasible = _achievable(first.source_dtd, [std.source for std in first.stds])
    if not feasible:
        return False
    for index in range(len(mappings)):
        current = mappings[index]
        nxt = mappings[index + 1] if index + 1 < len(mappings) else None
        target_patterns = [std.target for std in current.stds]
        next_sources = [std.source for std in nxt.stds] if nxt else []
        combined = _achievable(current.target_dtd, target_patterns + next_sources)
        k = len(target_patterns)
        new_feasible = set()
        for bits in combined:
            satisfied = frozenset(i for i in bits if i < k)
            triggered = frozenset(i - k for i in bits if i >= k)
            if any(required <= satisfied for required in feasible):
                new_feasible.add(triggered)
        if not new_feasible:
            return False
        feasible = new_feasible
    # the final stage's "triggered" sets are all empty frozensets; success
    return True


def is_composition_consistent_bounded(
    mappings: list[SchemaMapping],
    max_tree_size: int = 5,
    value_domain: tuple = (0, 1),
) -> bool:
    """Bounded witness-chain search (sound only): works with comparisons."""
    if not mappings:
        raise XsmError("composition of zero mappings")

    def extend(index: int, previous) -> bool:
        if index == len(mappings):
            return True
        mapping = mappings[index]
        # *previous* is fixed for this whole stage: one obligation set
        checker = SolutionChecker(mapping, previous)
        for tree in enumerate_trees(mapping.target_dtd, max_tree_size, value_domain):
            if checker.is_solution_for(tree, check_conformance=False):
                if extend(index + 1, tree):
                    return True
        return False

    first = mappings[0]
    for source in enumerate_trees(first.source_dtd, max_tree_size, value_domain):
        if extend(0, source):
            return True
    return False
