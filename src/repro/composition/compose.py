"""Syntactic composition for the closed class (Theorem 8.2).

Given ``M12`` and ``M23`` — Skolem mappings over strictly
nested-relational DTDs with fully-specified stds and equality only — this
module produces ``M13`` with ``[[M13]] = [[M12]] ∘ [[M23]]``, following
the relational recipe of Fagin, Kolaitis, Popa and Tan [17] lifted to
nested trees:

1. **Skolemize** ``Sigma12``: every existential target variable ``z``
   becomes a fresh term ``f_z(source variables)``, so the canonical middle
   tree is entirely described by terms over ``T1``'s values.

2. **Chase** each ``sigma23`` source pattern into that symbolic middle.
   Strict nesting gives the middle a rigid/starred dichotomy:

   - nodes on *rigid* label paths (every step of multiplicity ``1``/``?``)
     are unique in any middle tree and carry no attributes (strictness),
     so all copies of all requirements share them;
   - below the first ``*`` step everything is starred, so each maximal
     starred subtree of ``pi23`` must embed into a single requirement
     instance (*copy*) of some Skolemized ``sigma12`` target.

   Enumerating, per starred component, the choice of std and the
   embedding of the component into its target pattern — plus a support
   check that every ``?``-step on a rigid path is forced to exist by some
   chosen copy — yields the homomorphisms of the relational chase.

3. **Emit** one composed std per homomorphism: its source is the merge of
   the chosen copies' (renamed) source patterns; the unification of
   ``pi23``'s variables with the copies' terms instantiates ``pi'23`` and
   produces equality conditions — pure-variable ones become source
   conditions, Skolem-term ones become source *preconditions* in the
   SO-tgd style (the composed std only fires under function valuations
   that realize the merge).

Implementation restriction (documented in DESIGN.md): the middle DTD may
not use ``+`` — a ``+``-filler node would carry attributes whose values
exist in every middle tree without being introduced by any requirement,
which the std language cannot name.  (``*``, ``?`` and ``1`` are fully
supported; ``+`` in the outer DTDs is fine.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NotInClassError, XsmError
from repro.mappings.skolem import SkolemMapping
from repro.mappings.std import STD, Comparison
from repro.patterns.ast import Pattern, Sequence
from repro.values import Const, SkolemTerm, Term, Var
from repro.xmlmodel.dtd import DTD


# ---------------------------------------------------------------------------
# pattern node indexing (fully-specified patterns are plain trees)
# ---------------------------------------------------------------------------


@dataclass
class PNode:
    """A positional node of a fully-specified pattern."""

    pattern: Pattern
    parent: "PNode | None"
    path: tuple[str, ...]
    children: list["PNode"] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.pattern.label

    @property
    def vars(self):
        return self.pattern.vars

    def subtree(self):
        yield self
        for child in self.children:
            yield from child.subtree()


def index_pattern(pattern: Pattern) -> PNode:
    """Build the positional tree of a fully-specified pattern."""

    def build(node: Pattern, parent: PNode | None, path: tuple[str, ...]) -> PNode:
        pnode = PNode(node, parent, path)
        for item in node.items:
            if not isinstance(item, Sequence) or len(item.elements) != 1:
                raise NotInClassError("composition requires fully-specified stds")
            (child,) = item.elements
            pnode.children.append(build(child, pnode, path + (child.label,)))
        return pnode

    return build(pattern, None, (pattern.label,))


# ---------------------------------------------------------------------------
# middle-DTD path classification
# ---------------------------------------------------------------------------


class _MiddleShape:
    """Rigidity / multiplicity facts about paths of the middle DTD."""

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self.multiplicity: dict[tuple[str, str], str] = {}
        for label in dtd.labels:
            for child, mult in dtd.nested_relational_children(label):
                if mult == "+":
                    raise NotInClassError(
                        "composition does not support '+' in the middle DTD "
                        "(a forced filler node would carry unnameable values); "
                        "use '*' with an explicit requirement instead"
                    )
                if mult in ("1", "?") and dtd.arity(child) > 0:
                    # "only starred element types can have attributes" must
                    # hold per occurrence for the chase's rigid/starred
                    # dichotomy: a value on a rigid path would be global
                    # middle state the composed stds cannot name
                    raise NotInClassError(
                        f"middle DTD puts the attribute-carrying element "
                        f"{child!r} at a non-starred position under {label!r}; "
                        "the composable class requires attribute-carrying "
                        "elements to occur only under '*'"
                    )
                self.multiplicity[(label, child)] = mult

    def step_mult(self, parent: str, child: str) -> str:
        mult = self.multiplicity.get((parent, child))
        if mult is None:
            raise XsmError(f"no {child!r} child in the production of {parent!r}")
        return mult

    def is_starred(self, path: tuple[str, ...]) -> bool:
        """Does the path from the root pass through a ``*`` step?"""
        return any(
            self.step_mult(parent, child) == "*"
            for parent, child in zip(path, path[1:])
        )

    def optional_prefix(self, path: tuple[str, ...]) -> tuple[str, ...] | None:
        """The prefix of *path* up to its last ``?``-step, or None.

        A rigid path exists in every middle tree iff it has no ``?``-step;
        otherwise its existence is forced exactly when this prefix is
        covered by some requirement's path (the ``1``-steps after the last
        ``?`` then come for free).
        """
        last_optional = 0
        for index, (parent, child) in enumerate(zip(path, path[1:])):
            if self.step_mult(parent, child) == "?":
                last_optional = index + 2  # prefix length including this step
        if last_optional == 0:
            return None
        return path[:last_optional]

    def forced_prefix_ok(self, path: tuple[str, ...], required: set) -> bool:
        """Is a rigid *path* guaranteed to exist given the *required* paths?"""
        prefix = self.optional_prefix(path)
        if prefix is None:
            return True
        return any(other[: len(prefix)] == prefix for other in required)


# ---------------------------------------------------------------------------
# term utilities
# ---------------------------------------------------------------------------


def _rename_term(term: Term, prefix: str) -> Term:
    if isinstance(term, Var):
        return Var(prefix + term.name)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(term.function, tuple(_rename_term(a, prefix) for a in term.args))
    return term


def _rename_pattern(pattern: Pattern, prefix: str) -> Pattern:
    def on_node(p: Pattern) -> Pattern:
        if p.vars is None:
            return p
        return Pattern(p.label, tuple(_rename_term(t, prefix) for t in p.vars), p.items)

    return pattern.map_patterns(on_node)


def _substitute_terms(pattern: Pattern, substitution: dict[Var, Term]) -> Pattern:
    """Replace variables by arbitrary terms throughout a pattern."""

    def on_term(term: Term) -> Term:
        if isinstance(term, Var):
            return substitution.get(term, term)
        if isinstance(term, SkolemTerm):
            return SkolemTerm(term.function, tuple(on_term(a) for a in term.args))
        return term

    def on_node(p: Pattern) -> Pattern:
        if p.vars is None:
            return p
        return Pattern(p.label, tuple(on_term(t) for t in p.vars), p.items)

    return pattern.map_patterns(on_node)


def _substitute_comparison(c: Comparison, substitution: dict[Var, Term]) -> Comparison:
    def on_term(term: Term) -> Term:
        if isinstance(term, Var):
            return substitution.get(term, term)
        if isinstance(term, SkolemTerm):
            return SkolemTerm(term.function, tuple(on_term(a) for a in term.args))
        return term

    return Comparison(on_term(c.left), c.op, on_term(c.right))


def _has_skolem(term: Term) -> bool:
    return isinstance(term, SkolemTerm)


# ---------------------------------------------------------------------------
# step 1: Skolemization
# ---------------------------------------------------------------------------


def skolemize(mapping: SkolemMapping, taken: set[str]) -> list[STD]:
    """Replace each target existential ``z`` by a fresh Skolem term."""
    result = []
    for index, std in enumerate(mapping.stds):
        source_vars = tuple(std.source_variables())
        substitution: dict[Var, Term] = {}
        for z in std.existential_variables():
            base = f"sk{index}_{z.name}"
            name = base
            counter = 0
            while name in taken:
                counter += 1
                name = f"{base}_{counter}"
            taken.add(name)
            substitution[z] = SkolemTerm(name, source_vars)
        result.append(
            STD(
                std.source,
                _substitute_terms(std.target, substitution),
                std.source_conditions,
                tuple(
                    _substitute_comparison(c, substitution)
                    for c in std.target_conditions
                ),
            )
        )
    return result


# ---------------------------------------------------------------------------
# step 2+3: chase and emission
# ---------------------------------------------------------------------------


class _FreshValues:
    """Implicit fresh values for middle attributes no requirement constrains.

    A requirement node written without attribute terms leaves its values
    unconstrained; canonically they are fresh per trigger, i.e. Skolem
    terms over the std's source variables.
    """

    def __init__(self, taken: set[str]):
        self._taken = taken
        self._cache: dict[tuple[int, int, int], str] = {}

    def term_for(
        self, std_index: int, node_id: int, slot: int, source_vars: tuple[Var, ...]
    ) -> SkolemTerm:
        key = (std_index, node_id, slot)
        name = self._cache.get(key)
        if name is None:
            base = f"fv{std_index}_{node_id}_{slot}"
            name = base
            counter = 0
            while name in self._taken:
                counter += 1
                name = f"{base}_{counter}"
            self._taken.add(name)
            self._cache[key] = name
        return SkolemTerm(name, source_vars)


@dataclass
class _Copy:
    """One requirement instance chosen by the chase."""

    std_index: int
    copy_id: int

    @property
    def prefix(self) -> str:
        return f"c{self.copy_id}_"


def _component_roots(root: PNode, shape: _MiddleShape) -> list[PNode]:
    """Roots of the maximal starred subtrees of an indexed pattern."""
    roots: list[PNode] = []

    def walk(node: PNode) -> None:
        if shape.is_starred(node.path):
            roots.append(node)  # everything below is starred too
            return
        for child in node.children:
            walk(child)

    walk(root)
    return roots


def _embeddings(q: PNode, u: PNode) -> list[dict]:
    """All structure-preserving maps of the subtree at *q* into *u*'s subtree."""
    if q.label != u.label:
        return []
    if (
        q.vars is not None
        and u.vars is not None
        and len(q.vars) != len(u.vars)
    ):
        return []
    partial_maps: list[dict] = [{id(q): (q, u)}]
    for qc in q.children:
        options = [uc for uc in u.children if uc.label == qc.label]
        extended: list[dict] = []
        for option in options:
            for sub in _embeddings(qc, option):
                for base in partial_maps:
                    extended.append({**base, **sub})
        partial_maps = extended
        if not partial_maps:
            return []
    return partial_maps


def compose(
    m12: SkolemMapping, m23: SkolemMapping, check_class: bool = True
) -> SkolemMapping:
    """The composed mapping ``M13`` with ``[[M13]] = [[M12]] ∘ [[M23]]``."""
    if check_class:
        m12.check_composable_class()
        m23.check_composable_class()
    shape = _MiddleShape(m12.target_dtd)
    taken = {
        name
        for mapping in (m12, m23)
        for std in mapping.stds
        for name in std.skolem_functions()
    }
    sigma12 = skolemize(m12, taken)
    fresh_values = _FreshValues(taken)
    # index the Skolemized targets once; remember node ids for fresh values
    indexed_targets = [index_pattern(std.target) for std in sigma12]
    target_paths = [
        {node.path for node in root.subtree()} for root in indexed_targets
    ]

    composed: dict[str, STD] = {}
    for sigma23 in m23.stds:
        source_root = index_pattern(sigma23.source)
        if sigma23.source.label != m12.target_dtd.root:
            continue  # never matches a middle tree
        # rigid nodes must be attribute-free in a strictly nested-relational DTD
        rigid_ok = all(
            shape.is_starred(node.path) or not node.vars
            for node in source_root.subtree()
        )
        if not rigid_ok:
            continue  # source pattern unsatisfiable against the middle DTD
        components = _component_roots(source_root, shape)
        # per component: all (std_index, embedding) choices
        per_component: list[list[tuple[int, dict]]] = []
        for component in components:
            choices: list[tuple[int, dict]] = []
            for std_index, target_root in enumerate(indexed_targets):
                if sigma12[std_index].source.label != m12.source_dtd.root:
                    continue  # this requirement can never fire
                for u in target_root.subtree():
                    if u.path != component.path:
                        continue
                    for embedding in _embeddings(component, u):
                        choices.append((std_index, embedding))
            per_component.append(choices)
        for selection in itertools.product(*per_component):
            # rigid ?-paths of pi23 must be forced to exist: collect the
            # optional prefixes not covered by the selected copies and
            # enumerate additional *support copies* that cover them
            covered: set = set()
            for std_index, __ in selection:
                covered.update(target_paths[std_index])
            needed: list[tuple[str, ...]] = []
            for node in source_root.subtree():
                if shape.is_starred(node.path):
                    continue
                prefix = shape.optional_prefix(node.path)
                if prefix is None or prefix in needed:
                    continue
                if not any(p[: len(prefix)] == prefix for p in covered):
                    needed.append(prefix)
            support_options: list[list[int]] = []
            for prefix in needed:
                candidates = [
                    std_index
                    for std_index in range(len(sigma12))
                    if sigma12[std_index].source.label == m12.source_dtd.root
                    and any(
                        p[: len(prefix)] == prefix for p in target_paths[std_index]
                    )
                ]
                support_options.append(candidates)
            for support in itertools.product(*support_options):
                std13 = _emit(
                    m12,
                    sigma12,
                    sigma23,
                    source_root,
                    selection,
                    tuple(support),
                    shape,
                    target_paths,
                    fresh_values,
                    indexed_targets,
                )
                if std13 is not None:
                    composed.setdefault(str(std13), std13)
    return SkolemMapping(m12.source_dtd, m23.target_dtd, list(composed.values()))


def _emit(
    m12: SkolemMapping,
    sigma12: list[STD],
    sigma23: STD,
    source_root: PNode,
    selection: tuple[tuple[int, dict], ...],
    support: tuple[int, ...],
    shape: _MiddleShape,
    target_paths: list[set],
    fresh_values: _FreshValues,
    indexed_targets: list[PNode],
) -> STD | None:
    """Build one composed std from a chase homomorphism, or None if invalid."""
    copies = [
        _Copy(std_index, copy_id) for copy_id, (std_index, __) in enumerate(selection)
    ]
    support_copies = [
        _Copy(std_index, len(copies) + offset)
        for offset, std_index in enumerate(support)
    ]

    # unify sigma23 variables with copy terms
    theta: dict[Var, Term] = {}
    source_conditions: list[Comparison] = []
    precondition_equalities: list[Comparison] = []

    def emit_equality(left: Term, right: Term) -> bool:
        if left == right:
            return True
        if (
            isinstance(left, Const)
            and isinstance(right, Const)
            and left.value != right.value
        ):
            return False
        comparison = Comparison(left, "=", right)
        if _has_skolem(left) or _has_skolem(right):
            precondition_equalities.append(comparison)
        else:
            source_conditions.append(comparison)
        return True

    node_ids = {}
    for std_index, target_root in enumerate(indexed_targets):
        for node_id, node in enumerate(target_root.subtree()):
            node_ids[id(node)] = node_id

    for copy, (std_index, embedding) in zip(copies, selection):
        source_vars = tuple(
            Var(copy.prefix + v.name) for v in sigma12[std_index].source_variables()
        )
        for q, u in embedding.values():
            if q.vars is None:
                continue
            for slot, term in enumerate(q.vars):
                if u.vars is not None:
                    middle_term = _rename_term(u.vars[slot], copy.prefix)
                else:
                    middle_term = SkolemTerm(
                        fresh_values.term_for(
                            std_index, node_ids[id(u)], slot,
                            sigma12[std_index].source_variables(),
                        ).function,
                        source_vars,
                    )
                if isinstance(term, Const):
                    if not emit_equality(term, middle_term):
                        return None
                else:
                    assert isinstance(term, Var)
                    if term in theta:
                        if not emit_equality(theta[term], middle_term):
                            return None
                    else:
                        theta[term] = middle_term

    # sigma23's own source conditions, translated through theta
    for condition in sigma23.source_conditions:
        translated = _substitute_comparison(condition, theta)
        if any(
            isinstance(t, Var) and t in set(sigma23.source_variables())
            for t in (translated.left, translated.right)
        ):
            return None  # a condition variable was never bound by the chase
        if not emit_equality(translated.left, translated.right):
            return None

    # merged source pattern: all copies' (renamed) sigma12 sources
    items: list = []
    copy_source_conditions: list[Comparison] = []
    all_copies = list(zip(copies, (i for i, __ in selection))) + list(
        zip(support_copies, support)
    )
    for copy, std_index in all_copies:
        renamed = _rename_pattern(sigma12[std_index].source, copy.prefix)
        items.extend(renamed.items)
        copy_source_conditions.extend(
            Comparison(
                _rename_term(c.left, copy.prefix),
                c.op,
                _rename_term(c.right, copy.prefix),
            )
            for c in sigma12[std_index].source_conditions
        )
    source_pattern = Pattern(m12.source_dtd.root, None, tuple(items))

    # target: sigma23's target with theta applied; existentials renamed apart
    existential_renaming = {
        z: Var("e23_" + z.name) for z in sigma23.existential_variables()
    }
    target_pattern = _substitute_terms(
        sigma23.target.rename_variables(existential_renaming), theta
    )
    target_conditions = tuple(
        _substitute_comparison(
            _substitute_comparison(
                c,
                {k: v for k, v in existential_renaming.items()},
            ),
            theta,
        )
        for c in sigma23.target_conditions
    )
    return STD(
        source_pattern,
        target_pattern,
        tuple(copy_source_conditions + source_conditions + precondition_equalities),
        target_conditions,
    )


def composition_agrees_on(
    m12: SkolemMapping,
    m23: SkolemMapping,
    source_tree,
    final_tree,
    max_mid_size: int | None = None,
) -> bool:
    """Spot-check Theorem 8.2 on one pair of trees.

    ``compose(m12, m23)`` must accept ``(T1, T3)`` exactly when some
    bounded intermediate tree witnesses direct composition membership.
    Both sides run through the pattern engine (the composed side via the
    Skolem membership checker, the direct side via the per-middle
    semi-join checks), so this doubles as an end-to-end engine test; the
    randomized suites call it on enumerated tree pairs.
    """
    from repro.composition.semantics import composition_contains
    from repro.mappings.skolem import is_skolem_solution

    composed = compose(m12, m23)
    via_composed = is_skolem_solution(composed, source_tree, final_tree)
    via_search = composition_contains(
        m12, m23, source_tree, final_tree, max_mid_size=max_mid_size, skolem=True
    )
    # the bounded search reports Unknown (not Refuted) past its bound;
    # within these spot-check instances that means "no middle": not proved
    return via_composed.is_proved == via_search.is_proved
