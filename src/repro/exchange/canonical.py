"""Canonical target construction for fully-specified stds over
nested-relational target DTDs.

Every triggered std instance contributes a ground *fragment* (its target
pattern with shared variables replaced by source values and existential
variables by labelled nulls, one null per (std, exported tuple, variable) —
the Skolem-function discipline).  Fragments merge into one target tree:

* children of multiplicity ``1``/``?`` (rigid) merge recursively — their
  attribute values must unify, with nulls resolved by union-find;
* starred children stay apart (one copy per distinct fragment);
* required children (multiplicity ``1``/``+``) missing from every fragment
  are filled with minimal subtrees carrying fresh nulls.

For the Skolem-free class the construction is complete: a canonical
solution exists iff any solution does (rigid merges are forced in every
solution, starred copies are the freest choice), and the result is
returned with its null values resolved.  On value conflicts
:func:`canonical_solution` returns None — the source tree has no solution
at all.

Skolem targets (e.g. composed mappings from Theorem 8.2) are supported:
each application ``f(values)`` grounds to the labelled null
``Null((f, values))``, realizing the same-arguments-same-null semantics,
and nulls may collapse onto constants during rigid merges.  Soundness is
unchanged (results are verified solutions); completeness can be lost only
in exotic nested-term cases where resolving an inner application onto a
constant would have unlocked an outer merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SignatureError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import triggered_requirements
from repro.patterns.ast import Pattern, Sequence
from repro.values import Const, Null, SkolemTerm, Var, substitute
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


@dataclass
class _Fragment:
    """A ground tree-shaped requirement (values are constants or nulls)."""

    label: str
    attrs: tuple | None  # None: unconstrained (filled with fresh nulls later)
    children: list["_Fragment"] = field(default_factory=list)

    def freeze(self) -> tuple:
        return (
            self.label,
            self.attrs,
            tuple(child.freeze() for child in self.children),
        )


class _NullUnifier:
    """Union-find over values where nulls may collapse to constants."""

    def __init__(self):
        self._parent: dict = {}

    def _find(self, value):
        self._parent.setdefault(value, value)
        root = value
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[value] != root:
            self._parent[value], value = root, self._parent[value]
        return root

    def unify(self, left, right) -> bool:
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return True
        left_null = isinstance(left_root, Null)
        right_null = isinstance(right_root, Null)
        if not left_null and not right_null:
            return False  # two distinct constants
        if left_null:
            self._parent[left_root] = right_root
        else:
            self._parent[right_root] = left_root
        return True

    def resolve(self, value):
        return self._find(value)


def _check_applicable(mapping: SchemaMapping) -> None:
    if not mapping.is_fully_specified():
        raise SignatureError(
            "canonical solutions require fully-specified stds (grammar (5))"
        )
    if not mapping.target_dtd.is_nested_relational():
        raise SignatureError("canonical solutions require a nested-relational target DTD")
    for std in mapping.stds:
        if std.target_conditions or std.source_conditions:
            raise SignatureError(
                "canonical solutions are defined for condition-free stds "
                "(the tractable class of [4])"
            )


def _ground_fragment(
    pattern: Pattern,
    values: dict[Var, object],
    null_factory,
) -> _Fragment:
    if pattern.vars is None:
        attrs = None
    else:
        resolved = []
        for term in pattern.vars:
            if isinstance(term, Const):
                resolved.append(term.value)
            elif isinstance(term, Var):
                resolved.append(values.get(term) if term in values else null_factory(term))
            elif isinstance(term, SkolemTerm):
                # Skolem semantics: the same application yields the same
                # labelled null everywhere (repro.values.substitute); nulls
                # may later collapse onto constants during rigid merges
                resolved.append(substitute(term, values))
            else:
                raise SignatureError(f"unexpected term {term!r} in target pattern")
        attrs = tuple(resolved)
    fragment = _Fragment(pattern.label, attrs)
    for item in pattern.items:
        assert isinstance(item, Sequence) and len(item.elements) == 1
        fragment.children.append(
            _ground_fragment(item.elements[0], values, null_factory)
        )
    return fragment


def _merge_attrs(
    fragments: list[_Fragment], label: str, dtd: DTD, unifier: _NullUnifier
) -> tuple | None:
    """Unify the attribute tuples of fragments merging into one node."""
    arity = dtd.arity(label)
    merged: list = [None] * arity
    for fragment in fragments:
        if fragment.attrs is None:
            continue
        if len(fragment.attrs) != arity:
            return None
        for index, value in enumerate(fragment.attrs):
            if merged[index] is None:
                merged[index] = value
            elif not unifier.unify(merged[index], value):
                return None
    return tuple(merged)


def _build(
    label: str,
    fragments: list[_Fragment],
    dtd: DTD,
    unifier: _NullUnifier,
    fresh_null,
) -> TreeNode | None:
    attrs = _merge_attrs(fragments, label, dtd, unifier)
    if attrs is None:
        return None
    resolved_attrs = tuple(
        value if value is not None else fresh_null() for value in attrs
    )
    children: list[TreeNode] = []
    by_label: dict[str, list[_Fragment]] = {}
    for fragment in fragments:
        for child in fragment.children:
            by_label.setdefault(child.label, []).append(child)
    for child_label, multiplicity in dtd.nested_relational_children(label):
        provided = by_label.pop(child_label, [])
        if multiplicity in ("1", "?"):
            if provided:
                built = _build(child_label, provided, dtd, unifier, fresh_null)
                if built is None:
                    return None
                children.append(built)
            elif multiplicity == "1":
                built = _build(child_label, [], dtd, unifier, fresh_null)
                if built is None:
                    return None
                children.append(built)
        else:  # * or +
            distinct: dict[tuple, _Fragment] = {}
            for fragment in provided:
                distinct.setdefault(fragment.freeze(), fragment)
            for fragment in distinct.values():
                built = _build(child_label, [fragment], dtd, unifier, fresh_null)
                if built is None:
                    return None
                children.append(built)
            if multiplicity == "+" and not provided:
                built = _build(child_label, [], dtd, unifier, fresh_null)
                if built is None:
                    return None
                children.append(built)
    if by_label:
        return None  # fragment child label outside the production
    return TreeNode(label, resolved_attrs, children)


def canonical_solution(
    mapping: SchemaMapping, source_tree: TreeNode
) -> TreeNode | None:
    """The canonical solution for *source_tree*, or None if none exists.

    Requires fully-specified stds and a nested-relational target DTD; see
    the module docstring for the construction and its completeness.
    """
    _check_applicable(mapping)
    requirements = triggered_requirements(mapping, source_tree)
    root_label = mapping.target_dtd.root
    fragments: list[_Fragment] = []
    counter = [0]

    def fresh_null() -> Null:
        counter[0] += 1
        return Null(("fresh", counter[0]))

    for index, (std, exported) in enumerate(requirements):
        if std.target.label != root_label:
            return None  # a triggered requirement can never be satisfied
        export_key = tuple(sorted(((v.name, value) for v, value in exported.items()),
                                  key=repr))

        def null_for(var: Var, index=index, export_key=export_key) -> Null:
            return Null((index, export_key, var.name))

        fragments.append(_ground_fragment(std.target, exported, null_for))
    unifier = _NullUnifier()
    tree = _build(root_label, fragments, mapping.target_dtd, unifier, fresh_null)
    if tree is None:
        return None
    return tree.map_values(unifier.resolve)
