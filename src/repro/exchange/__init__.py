"""Data exchange: constructing target instances (the paper's Section 9
future-work direction, realized for the tractable class).

:func:`~repro.exchange.canonical.canonical_solution` builds a canonical
target tree for a source tree under a mapping with fully-specified stds
and a nested-relational target DTD — the class where solutions merge
deterministically (rigid positions are forced together, starred positions
stay apart, missing required structure is filled minimally with nulls).
"""

from repro.exchange.canonical import canonical_solution

__all__ = ["canonical_solution"]
