"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`XsmError` so callers can
catch everything coming out of the schema-mapping machinery with a single
``except`` clause while still being able to distinguish parse problems from
semantic ones.
"""

from __future__ import annotations


class XsmError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(XsmError):
    """Raised when parsing a tree, DTD, regex, or pattern from text fails.

    Carries the offending ``text`` and the ``position`` (character offset)
    where the parser gave up, when available.
    """

    def __init__(self, message: str, text: str | None = None, position: int | None = None):
        self.text = text
        self.position = position
        if text is not None and position is not None:
            snippet = text[max(0, position - 15):position + 15]
            message = f"{message} (at offset {position}: ...{snippet!r}...)"
        super().__init__(message)


class ConformanceError(XsmError):
    """Raised when a tree is required to conform to a DTD but does not."""


class ArityError(XsmError):
    """Raised when attribute tuples have the wrong length for an element type."""


class SignatureError(XsmError):
    """Raised when a mapping uses features outside the declared class SM(sigma)."""


class NotInClassError(XsmError):
    """Raised when an operation requires a restricted mapping class.

    For example, the syntactic composition of Theorem 8.2 requires strictly
    nested-relational DTDs and fully-specified stds; feeding it anything else
    raises this error and names the violated restriction.
    """


class UnknownVerdictError(XsmError):
    """Raised when an ``Unknown`` verdict is forced into a boolean.

    The engine's verdicts are truthy (``Proved`` is True, ``Refuted`` is
    False) so existing boolean call sites keep working, but an ``Unknown``
    has no honest boolean value — callers must inspect ``.is_unknown`` or
    ``.decision()``.
    """


class BoundExceededError(XsmError):
    """Raised by bounded decision procedures that could not conclude.

    The bounded procedures (general absolute consistency, composition
    membership with unrestricted intermediates, semi-decision procedures for
    the undecidable fragments) are sound whenever they answer; when the
    search bound is exhausted without an answer they raise this error rather
    than guessing.
    """

    def __init__(self, message: str, bound: int | None = None):
        self.bound = bound
        super().__init__(message)
