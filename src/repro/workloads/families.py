"""Parameterized hard-instance families for the figure benchmarks.

Each function documents the experiment id (DESIGN.md §4) it drives and the
complexity phenomenon it is built to expose.  Families come in consistent
and inconsistent variants where the decision answer matters, so benchmarks
exercise both outcomes.
"""

from __future__ import annotations

from repro.mappings.mapping import SchemaMapping
from repro.mappings.skolem import SkolemMapping
from repro.xmlmodel.tree import TreeNode


# ---------------------------------------------------------------------------
# F1.1 / F1.3: CONS over arbitrary DTDs (EXPTIME via automata products)
# ---------------------------------------------------------------------------


def cons_arbitrary_family(n: int, consistent: bool = True) -> SchemaMapping:
    """``n`` independent binary choices on both sides (experiment F1.1).

    Source: ``r -> x1, ..., xn`` with ``xi -> ai | bi``; each choice is
    reported by an std into a matching target choice.  The closure
    automata track ``2n`` patterns at once, so their state spaces — and
    the consistency check — grow exponentially with ``n``, which is the
    EXPTIME-completeness of CONS(⇓) made visible.  The inconsistent
    variant adds an always-triggered std with an unsatisfiable target.
    """
    source_lines = ["r -> " + ", ".join(f"x{i}" for i in range(n))]
    target_lines = ["t -> " + ", ".join(f"y{i}" for i in range(n))]
    stds = []
    for i in range(n):
        source_lines.append(f"x{i} -> a{i} | b{i}")
        target_lines.append(f"y{i} -> c{i} | d{i}")
        stds.append(f"r[x{i}[a{i}]] -> t[y{i}[c{i}]]")
        stds.append(f"r[x{i}[b{i}]] -> t[y{i}[d{i}]]")
    if not consistent:
        stds.append(f"r[x0] -> t[y0[c0], y0[d0]]")  # c0 and d0 exclude each other
    return SchemaMapping.parse("\n".join(source_lines), "\n".join(target_lines), stds)


# ---------------------------------------------------------------------------
# F1.2: CONS(⇓) over nested-relational DTDs (PTIME)
# ---------------------------------------------------------------------------


def cons_nested_family(n: int, consistent: bool = True) -> SchemaMapping:
    """``n`` optional source relations copied into ``n`` target relations."""
    source_lines = ["r -> " + ", ".join(f"a{i}*" for i in range(n))]
    source_lines += [f"a{i}(v)" for i in range(n)]
    target_lines = ["t -> " + ", ".join(f"b{i}*" for i in range(n))]
    target_lines += [f"b{i}(w)" for i in range(n)]
    stds = [f"r[a{i}(x)] -> t[b{i}(x)]" for i in range(n)]
    if not consistent:
        # force a trigger whose target label does not exist
        parts = ["a0+"] + [f"a{i}*" for i in range(1, n)]
        source_lines[0] = "r -> " + ", ".join(parts)
        stds.append("r[a0(x)] -> t[zzz(x)]")
    return SchemaMapping.parse("\n".join(source_lines), "\n".join(target_lines), stds)


# ---------------------------------------------------------------------------
# F1.4: CONS(⇓, →) over nested-relational DTDs (PSPACE-hard flavour)
# ---------------------------------------------------------------------------


def cons_next_sibling_family(n: int, consistent: bool = True) -> SchemaMapping:
    """Sibling-order chains of length ``n`` over a starred production.

    The horizontal NFAs of the closure automaton must track all chain
    prefixes simultaneously; state spaces grow quickly with ``n``, showing
    why adding ``→`` destroys the nested-relational PTIME result.
    """
    if n < 2:
        raise ValueError("the next-sibling family needs n >= 2")
    source = "r -> a*\na(v)"
    target_order = ", ".join(f"c{i}" for i in range(n))
    target = f"t -> ({target_order})?"
    chain = " -> ".join("a" for __ in range(n))
    target_chain = " -> ".join(f"c{i}" for i in range(n))
    if consistent:
        stds = [f"r[{chain}] -> t[{target_chain}]"]
    else:
        # exactly n a's force the trigger; the reversed target chain is
        # unsatisfiable under the fixed target order
        reversed_chain = " -> ".join(f"c{i}" for i in reversed(range(n)))
        stds = [f"r[{chain}] -> t[{reversed_chain}]"]
        source = "r -> " + ", ".join("a" for __ in range(n)) + "\na(v)"
    return SchemaMapping.parse(source, target, stds)


# ---------------------------------------------------------------------------
# F1.5 / F1.7: undecidable cells — semi-decision search effort
# ---------------------------------------------------------------------------


def distinct_values_family(n: int, consistent: bool = True) -> SchemaMapping:
    """Witnesses need ``n`` pairwise distinct data values (experiments F1.5/F1.7).

    The bounded search must enumerate value assignments over a domain of
    size ``n``, so its cost explodes with ``n`` — the visible face of the
    undecidability of CONS with data comparisons: no algorithm can bound
    the witness search in general.
    """
    source_lines = ["r -> " + ", ".join(f"a{i}" for i in range(n))]
    source_lines += [f"a{i}(v)" for i in range(n)]
    target_lines = ["t -> c?", "c(w)"]
    stds = []
    # punish every equal pair: witnesses must use pairwise distinct values
    for i in range(n):
        for j in range(i + 1, n):
            stds.append(f"r[a{i}(x), a{j}(y)], x = y -> t[zzz]")
    variables = [f"x{i}" for i in range(n)]
    bindings = ", ".join(f"a{i}({variables[i]})" for i in range(n))
    conditions = ", ".join(
        f"{variables[i]} != {variables[j]}"
        for i in range(n)
        for j in range(i + 1, n)
    )
    target = "t[c(x0)]" if consistent else "t[zzz]"
    if conditions:
        stds.append(f"r[{bindings}], {conditions} -> {target}")
    else:
        stds.append(f"r[{bindings}] -> {target}")
    return SchemaMapping.parse("\n".join(source_lines), "\n".join(target_lines), stds)


# ---------------------------------------------------------------------------
# F1.6: CONS(⇓, ∼) over nested-relational DTDs (NEXPTIME flavour)
# ---------------------------------------------------------------------------


def equality_case_split_family(n: int, consistent: bool = True) -> SchemaMapping:
    """``n`` value comparisons whose case split the search must explore."""
    source_lines = ["r -> " + ", ".join(f"a{i}" for i in range(n))]
    source_lines += [f"a{i}(v)" for i in range(n)]
    target_lines = ["t -> " + ", ".join(f"c{i}?" for i in range(n))]
    target_lines += [f"c{i}(w)" for i in range(n)]
    stds = []
    for i in range(n):
        j = (i + 1) % n
        if consistent:
            stds.append(f"r[a{i}(x), a{j}(y)], x = y -> t[c{i}(x)]")
            stds.append(f"r[a{i}(x), a{j}(y)], x != y -> t[c{i}(y)]")
        else:
            # one of the two branches fires whatever the values are
            stds.append(f"r[a{i}(x), a{j}(y)], x = y -> t[zzz]")
            stds.append(f"r[a{i}(x), a{j}(y)], x != y -> t[zzz]")
    return SchemaMapping.parse("\n".join(source_lines), "\n".join(target_lines), stds)


# ---------------------------------------------------------------------------
# F1.8 – F1.10: absolute consistency families
# ---------------------------------------------------------------------------


def abscons_sm0_family(n: int, consistent: bool = True) -> SchemaMapping:
    """SM° absolute consistency over ``n`` optional triggers (Pi_2^p, F1.8)."""
    source_lines = ["r -> " + ", ".join(f"a{i}?" for i in range(n))]
    target_lines = ["t -> " + ", ".join(f"c{i}?" for i in range(n))]
    stds = [f"r[a{i}] -> t[c{i}]" for i in range(n)]
    if not consistent:
        stds.append("r[a0] -> t[zzz]")
    return SchemaMapping.parse(
        "\n".join(source_lines), "\n".join(target_lines), stds
    ).strip_values()


def abscons_ptime_family(n: int, consistent: bool = True) -> SchemaMapping:
    """Fully-specified nested-relational ABSCONS instances (PTIME, F1.9).

    The inconsistent variant writes a repeatable source value into a rigid
    target position (the paper's Section 6 counting example, scaled).
    """
    source_lines = ["r -> " + ", ".join(f"a{i}*" for i in range(n))]
    source_lines += [f"a{i}(v)" for i in range(n)]
    if consistent:
        target_lines = ["t -> " + ", ".join(f"b{i}*" for i in range(n))]
    else:
        target_lines = ["t -> " + ", ".join(
            ("b0" if i == 0 else f"b{i}*") for i in range(n)
        )]
    target_lines += [f"b{i}(w)" for i in range(n)]
    stds = [f"r[a{i}(x)] -> t[b{i}(x)]" for i in range(n)]
    return SchemaMapping.parse("\n".join(source_lines), "\n".join(target_lines), stds)


def abscons_wildcard_family(n: int, consistent: bool = True) -> SchemaMapping:
    """F1.9 plus a wildcard: outside the PTIME class (NEXPTIME-hard, F1.10)."""
    mapping = abscons_ptime_family(n, consistent)
    extra = "r[_(x)] -> t[b0(x)]" if not consistent else "r[_(x)] -> t[b1(x)]"
    if n < 2:
        raise ValueError("wildcard family needs n >= 2")
    return SchemaMapping(
        mapping.source_dtd, mapping.target_dtd, list(mapping.stds) + [extra]
    )


# ---------------------------------------------------------------------------
# F2.x: evaluation / membership / composition scaling
# ---------------------------------------------------------------------------


def flat_document(n_items: int, n_values: int = 8, label: str = "a") -> TreeNode:
    """A flat conforming document ``r[a(v1), ..., a(vn)]``."""
    return TreeNode(
        "r",
        (),
        tuple(TreeNode(label, (i % n_values,)) for i in range(n_items)),
    )


def membership_mapping(k_variables: int) -> SchemaMapping:
    """One std with ``k`` variables (combined-complexity driver, F2.4)."""
    bindings = ", ".join(f"a(x{i})" for i in range(k_variables))
    outputs = ", ".join(f"b(x{i})" for i in range(k_variables))
    return SchemaMapping.parse(
        "r -> a*\na(v)",
        "t -> b*\nb(w)",
        [f"r[{bindings}] -> t[{outputs}]"],
    )


def target_document(n_items: int, n_values: int = 8) -> TreeNode:
    return TreeNode(
        "t",
        (),
        tuple(TreeNode("b", (i % n_values,)) for i in range(n_items)),
    )


def composition_choice_family(
    n: int,
) -> tuple[SchemaMapping, SchemaMapping, TreeNode, TreeNode]:
    """``n``-way middle choice for composition membership (F2.5/F2.6).

    The middle DTD makes ``n`` independent binary choices; deciding
    ``(T1, T3) ∈ [[M12]] ∘ [[M23]]`` must reason about exponentially many
    middle shapes.  Returns ``(M12, M23, T1, T3)`` with a positive answer.
    """
    d1 = "r -> a*\na(v)"
    mid_lines = ["m -> " + ", ".join(f"x{i}" for i in range(n))]
    final_lines = ["t -> " + ", ".join(f"y{i}?" for i in range(n))]
    stds12 = []
    stds23 = []
    for i in range(n):
        mid_lines.append(f"x{i} -> p{i} | q{i}")
        stds12.append(f"r[a(v)] -> m[x{i}]")
        stds23.append(f"m[x{i}[p{i}]] -> t[y{i}]")
    m12 = SchemaMapping.parse(d1, "\n".join(mid_lines), stds12)
    m23 = SchemaMapping.parse("\n".join(mid_lines), "\n".join(final_lines), stds23)
    t1 = flat_document(1)
    t3 = TreeNode("t", (), tuple(TreeNode(f"y{i}") for i in range(n)))
    return m12, m23, t1, t3


def skolem_copy_chain(n_relations: int, stage: int) -> SkolemMapping:
    """Stage ``stage`` of an iterated-composition chain (experiment F8.1)."""
    left = f"s{stage}"
    right = f"s{stage + 1}"
    source_lines = [f"{left} -> " + ", ".join(
        f"{left}rel{i}*" for i in range(n_relations)
    )]
    source_lines += [f"{left}rel{i}(v)" for i in range(n_relations)]
    target_lines = [f"{right} -> " + ", ".join(
        f"{right}rel{i}*" for i in range(n_relations)
    )]
    target_lines += [f"{right}rel{i}(v)" for i in range(n_relations)]
    stds = [
        f"{left}[{left}rel{i}(x)] -> {right}[{right}rel{i}(x), {right}rel{(i + 1) % n_relations}(z)]"
        for i in range(n_relations)
    ]
    return SkolemMapping.parse("\n".join(source_lines), "\n".join(target_lines), stds)
