"""Seeded random generators for DTDs, trees and mappings.

All functions take a :class:`random.Random` so every workload is
reproducible from a seed; the benchmark harness prints the seeds it uses.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD
from repro.patterns.ast import Pattern, Sequence as PatternSequence
from repro.values import Var
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode

MULTIPLICITY_CHOICES = ("1", "?", "*", "+")


def random_nested_relational_dtd(
    rng: random.Random,
    n_labels: int = 6,
    max_children: int = 3,
    max_arity: int = 2,
    root: str = "r",
    label_prefix: str = "n",
    starred_attributes_only: bool = False,
    multiplicities: tuple[str, ...] = MULTIPLICITY_CHOICES,
) -> DTD:
    """A random nested-relational DTD with *n_labels* element types.

    Labels are layered to guarantee non-recursion; each label gets up to
    *max_children* children from later layers with random multiplicities
    (drawn from *multiplicities*) and up to *max_arity* attributes.  With
    ``starred_attributes_only`` the DTD is strictly nested-relational.
    """
    labels = [root] + [f"{label_prefix}{i}" for i in range(1, n_labels)]
    productions: dict[str, str] = {}
    attributes: dict[str, tuple[str, ...]] = {}
    starred: set[str] = set()
    for index, label in enumerate(labels):
        pool = labels[index + 1:]
        rng.shuffle(pool)
        chosen = pool[: rng.randint(0, min(max_children, len(pool)))]
        parts = []
        for child in chosen:
            multiplicity = rng.choice(multiplicities)
            if multiplicity in ("*", "+"):
                starred.add(child)
            parts.append(child + (multiplicity if multiplicity != "1" else ""))
        productions[label] = ", ".join(parts) if parts else "eps"
    for label in labels:
        if label == root:
            continue
        if starred_attributes_only and label not in starred:
            continue
        arity = rng.randint(0, max_arity)
        if arity:
            attributes[label] = tuple(f"at{i}" for i in range(arity))
    return DTD(root, productions, attributes)


def random_conforming_tree(
    dtd: DTD,
    rng: random.Random,
    max_repeat: int = 3,
    value_pool: Sequence[object] = (0, 1, 2),
    max_depth: int = 12,
) -> TreeNode:
    """A random tree conforming to *dtd* (random walk over the productions).

    Starred children repeat between 0/1 and *max_repeat* times.  Works for
    nested-relational DTDs (the generic case would need automaton
    sampling); raises on recursion deeper than *max_depth*.
    """

    def build(label: str, depth: int) -> TreeNode:
        if depth > max_depth:
            raise XsmError("DTD recursion exceeded max_depth while sampling")
        children: list[TreeNode] = []
        for child_label, multiplicity in dtd.nested_relational_children(label):
            if multiplicity == "1":
                count = 1
            elif multiplicity == "?":
                count = rng.randint(0, 1)
            elif multiplicity == "*":
                count = rng.randint(0, max_repeat)
            else:
                count = rng.randint(1, max_repeat)
            children.extend(build(child_label, depth + 1) for __ in range(count))
        attrs = tuple(rng.choice(value_pool) for __ in dtd.attributes[label])
        return TreeNode(label, attrs, children)

    return build(dtd.root, 0)


def _random_pattern_for(
    dtd: DTD,
    rng: random.Random,
    variables: list[Var],
    branch_probability: float = 0.7,
) -> Pattern:
    """A random fully-specified pattern satisfiable against *dtd*."""

    def build(label: str, depth: int) -> Pattern:
        items = []
        if depth < 4:
            for child_label, __ in dtd.nested_relational_children(label):
                if rng.random() < branch_probability:
                    items.append(PatternSequence((build(child_label, depth + 1),)))
        arity = dtd.arity(label)
        if arity and rng.random() < 0.9:
            vars_ = tuple(
                variables[rng.randrange(len(variables))] for __ in range(arity)
            )
        else:
            vars_ = None
        return Pattern(label, vars_, tuple(items))

    return build(dtd.root, 0)


def random_stds_between(
    rng: random.Random,
    source_dtd: DTD,
    target_dtd: DTD,
    n_stds: int,
) -> list[STD]:
    """Random fully-specified stds from *source_dtd* into *target_dtd*.

    Source patterns use each variable exactly once; target patterns reuse
    the source variables or introduce existentials.
    """
    stds = []
    for __ in range(n_stds):
        counter = [0]

        def fresh(prefix="x"):
            counter[0] += 1
            return Var(f"{prefix}{counter[0]}")

        source_vars: list[Var] = []

        def source_pattern(label: str, depth: int) -> Pattern:
            items = []
            if depth < 4:
                for child_label, __ in source_dtd.nested_relational_children(label):
                    if rng.random() < 0.7:
                        items.append(
                            PatternSequence((source_pattern(child_label, depth + 1),))
                        )
            arity = source_dtd.arity(label)
            vars_ = None
            if arity:
                slot_vars = tuple(fresh() for __ in range(arity))
                source_vars.extend(slot_vars)
                vars_ = slot_vars
            return Pattern(label, vars_, tuple(items))

        source = source_pattern(source_dtd.root, 0)
        target_variables = list(source_vars) or [fresh("z")]
        existentials = [fresh("z") for __ in range(rng.randint(0, 2))]
        target = _random_pattern_for(target_dtd, rng, target_variables + existentials)
        stds.append(STD(source, target))
    return stds


def random_composable_pair(
    rng: random.Random,
    n_labels: int = 4,
    n_stds: int = 2,
) -> tuple["SkolemMapping", "SkolemMapping"]:
    """A random pair of mappings in the Theorem 8.2 composable class.

    All three DTDs are strictly nested-relational; the shared middle DTD
    avoids ``+`` (the compose() implementation restriction).
    """
    from repro.mappings.skolem import SkolemMapping

    first = random_nested_relational_dtd(
        rng, n_labels, root="r", label_prefix="s", starred_attributes_only=True
    )
    middle = random_nested_relational_dtd(
        rng, n_labels, root="m", label_prefix="m",
        starred_attributes_only=True, multiplicities=("1", "?", "*"),
    )
    # compose() requires attribute-carrying middle elements to occur only
    # under '*'; strip attributes from labels with any rigid occurrence
    rigid_children = {
        child
        for label in middle.labels
        for child, mult in middle.nested_relational_children(label)
        if mult in ("1", "?")
    }
    if any(middle.arity(label) for label in rigid_children):
        middle = DTD(
            middle.root,
            {label: middle.productions[label] for label in middle.labels},
            {
                label: attrs
                for label, attrs in middle.attributes.items()
                if attrs and label not in rigid_children
            },
        )
    last = random_nested_relational_dtd(
        rng, n_labels, root="t", label_prefix="t", starred_attributes_only=True
    )
    # keep M12 requirements small: the exhaustive semantic verification of
    # compose() enumerates middles large enough to merge all of them
    for __ in range(20):
        stds12 = random_stds_between(rng, first, middle, n_stds)
        if sum(std.target.size for std in stds12) <= 4:
            break
    m12 = SkolemMapping(first, middle, stds12)
    m23 = SkolemMapping(middle, last, random_stds_between(rng, middle, last, n_stds))
    return m12, m23


def random_fully_specified_mapping(
    rng: random.Random,
    n_stds: int = 3,
    source_labels: int = 5,
    target_labels: int = 5,
    n_variables: int = 3,
) -> SchemaMapping:
    """A random mapping with fully-specified stds over nested-relational DTDs.

    Source patterns use each variable at most once (fresh variables per
    slot); target patterns reuse the source variables or introduce
    existentials.
    """
    source_dtd = random_nested_relational_dtd(
        rng, source_labels, root="r", label_prefix="s"
    )
    target_dtd = random_nested_relational_dtd(
        rng, target_labels, root="t", label_prefix="t"
    )
    stds = []
    for __ in range(n_stds):
        counter = [0]

        def fresh(prefix="x"):
            counter[0] += 1
            return Var(f"{prefix}{counter[0]}")

        source_vars: list[Var] = []

        def source_pattern(label: str, depth: int) -> Pattern:
            items = []
            if depth < 4:
                for child_label, __ in source_dtd.nested_relational_children(label):
                    if rng.random() < 0.7:
                        items.append(
                            PatternSequence((source_pattern(child_label, depth + 1),))
                        )
            arity = source_dtd.arity(label)
            vars_ = None
            if arity:
                slot_vars = tuple(fresh() for __ in range(arity))
                source_vars.extend(slot_vars)
                vars_ = slot_vars
            return Pattern(label, vars_, tuple(items))

        source = source_pattern(source_dtd.root, 0)
        target_variables = list(source_vars) or [fresh("z")]
        existentials = [fresh("z") for __ in range(rng.randint(0, 2))]
        target = _random_pattern_for(
            target_dtd, rng, target_variables + existentials
        )
        stds.append(STD(source, target))
    return SchemaMapping(source_dtd, target_dtd, stds)


# ---------------------------------------------------------------------------
# arbitrary (non-nested-relational) DTDs and structural mappings
# ---------------------------------------------------------------------------


def random_production(rng: random.Random, symbols: list[str]) -> str:
    """A small random production over *symbols* (may use , | * + ?)."""
    if not symbols:
        return "eps"
    parts = []
    for __ in range(rng.randint(1, min(3, len(symbols)))):
        symbol = rng.choice(symbols)
        form = rng.random()
        if form < 0.35:
            parts.append(symbol)
        elif form < 0.5:
            parts.append(symbol + "?")
        elif form < 0.65:
            parts.append(symbol + "*")
        elif form < 0.75:
            parts.append(symbol + "+")
        else:
            other = rng.choice(symbols)
            parts.append(f"({symbol} | {other})")
    return ", ".join(parts)


def random_arbitrary_dtd(
    rng: random.Random,
    n_labels: int = 5,
    max_arity: int = 1,
    root: str = "r",
    label_prefix: str = "n",
) -> DTD:
    """A random DTD with disjunctive productions (layered, non-recursive)."""
    labels = [root] + [f"{label_prefix}{i}" for i in range(1, n_labels)]
    productions: dict[str, str] = {}
    attributes: dict[str, tuple[str, ...]] = {}
    for index, label in enumerate(labels):
        pool = labels[index + 1:]
        productions[label] = random_production(rng, pool) if pool else "eps"
    for label in labels[1:]:
        arity = rng.randint(0, max_arity)
        if arity:
            attributes[label] = tuple(f"at{i}" for i in range(arity))
    return DTD(root, productions, attributes)


def random_tree_from_dtd(
    dtd: DTD,
    rng: random.Random,
    value_pool: Sequence[object] = (0, 1),
    max_nodes: int = 30,
) -> TreeNode:
    """A random conforming tree for an arbitrary (satisfiable) DTD.

    Children words are sampled by a random walk over the production NFA,
    biased toward accepting states once the node budget runs low (using
    the DTD's minimal subtree costs to guarantee termination).
    """
    costs = dtd.label_costs()
    if costs[dtd.root] == float("inf"):
        raise XsmError("cannot sample from an unsatisfiable DTD")
    budget = [max_nodes]

    def sample_word(label: str) -> tuple[str, ...]:
        nfa = dtd.production_nfa(label)
        states = nfa.initial
        word: list[str] = []
        while True:
            can_stop = bool(states & nfa.accepting)
            options = sorted(
                {
                    symbol
                    for state in states
                    for symbol in nfa.transitions.get(state, {})
                    if costs.get(symbol, float("inf")) != float("inf")
                },
            )
            low_budget = budget[0] <= 0 or len(word) >= 4
            if can_stop and (not options or low_budget or rng.random() < 0.45):
                return tuple(word)
            if not options:
                # dead-ish branch: restart the walk (productions are tiny)
                states = nfa.initial
                word = []
                continue
            symbol = rng.choice(options)
            word.append(symbol)
            states = nfa.step(states, symbol)

    def build(label: str) -> TreeNode:
        budget[0] -= 1
        word = sample_word(label) if budget[0] > 0 else \
            dtd._cheapest_word(label, costs)
        attrs = tuple(rng.choice(value_pool) for __ in dtd.attributes[label])
        return TreeNode(label, attrs, tuple(build(child) for child in word))

    return build(dtd.root)


def abstract_pattern_from_tree(rng: random.Random, node: TreeNode) -> Pattern:
    """A random pattern that matches *node* by construction.

    Walks the tree, keeping each child subtree with probability ~0.6,
    occasionally wildcarding a label, turning a kept child into a
    descendant item, or recording the order of two kept children with
    ``->*``.  Attribute slots get fresh variables.  The result is a
    satisfiable pattern whose feature signature varies per draw — ideal
    fuel for randomized consistency testing.
    """
    from repro.patterns.ast import Descendant, Sequence as PatternSequence

    counter = [0]

    def fresh() -> Var:
        counter[0] += 1
        return Var(f"v{counter[0]}")

    def walk(current: TreeNode, depth: int) -> Pattern:
        label = "_" if rng.random() < 0.1 else current.label
        vars_ = None
        if current.attrs and rng.random() < 0.8:
            vars_ = tuple(fresh() for __ in current.attrs)
        kept = [
            child for child in current.children
            if depth < 4 and rng.random() < 0.6
        ]
        items = []
        index = 0
        while index < len(kept):
            child_pattern = walk(kept[index], depth + 1)
            roll = rng.random()
            if roll < 0.15:
                items.append(Descendant(child_pattern))
                index += 1
            elif roll < 0.3 and index + 1 < len(kept):
                # record the sibling order of two kept children
                second = walk(kept[index + 1], depth + 1)
                connector = "next" if _adjacent(current, kept[index], kept[index + 1]) \
                    else "following"
                items.append(
                    PatternSequence((child_pattern, second), (connector,))
                )
                index += 2
            else:
                items.append(PatternSequence((child_pattern,)))
                index += 1
        return Pattern(label, vars_, tuple(items))

    return walk(node, 0)


def _adjacent(parent: TreeNode, left: TreeNode, right: TreeNode) -> bool:
    for first, second in zip(parent.children, parent.children[1:]):
        if first is left and second is right:
            return True
    return False
