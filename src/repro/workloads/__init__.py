"""Workload generators: random instances and the benchmark scaling families.

* :mod:`repro.workloads.random_instances` — random nested-relational DTDs,
  random conforming trees, random fully-specified mappings (seeded,
  reproducible).
* :mod:`repro.workloads.families` — the parameterized *hard-instance
  families* behind every figure benchmark: each function documents which
  experiment id of DESIGN.md it drives.
* :mod:`repro.workloads.university` — the paper's running example (the
  professors/courses scenario of the Introduction) as ready-made DTDs,
  mappings and document generators.
"""

from repro.workloads.random_instances import (
    random_conforming_tree,
    random_fully_specified_mapping,
    random_nested_relational_dtd,
)
from repro.workloads.university import (
    university_mapping,
    university_source_dtd,
    university_source_document,
    university_target_dtd,
)

__all__ = [
    "random_nested_relational_dtd",
    "random_conforming_tree",
    "random_fully_specified_mapping",
    "university_source_dtd",
    "university_target_dtd",
    "university_mapping",
    "university_source_document",
]
