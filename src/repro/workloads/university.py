"""The paper's running example: professors, courses and students.

The Introduction's two DTDs (``D1``: professors with teaching and
supervision duties; ``D2``: courses and students at a university) and its
third mapping — horizontal order preservation plus an inequality — are
provided ready-made, together with a deterministic document generator used
by the examples and benchmarks.
"""

from __future__ import annotations

import random

from repro.mappings.mapping import SchemaMapping
from repro.xmlmodel.dtd import DTD, parse_dtd
from repro.xmlmodel.tree import TreeNode

SOURCE_DTD_TEXT = """
r -> prof*
prof(name) -> teach, supervise
teach -> year
year(y) -> course, course
supervise -> student*
course(cn)
student(sid)
"""

TARGET_DTD_TEXT = """
r -> course*, student*
course(cn, y) -> taughtby
student(sid) -> supervisor
taughtby(name)
supervisor(name)
"""

#: The paper's third mapping (Section 3): order preservation + inequality.
ORDER_PRESERVING_STD = (
    "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], "
    "supervise[student(s)]]], cn1 != cn2 -> "
    "r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)], "
    "student(s)[supervisor(x)]]"
)

#: The paper's first mapping (Introduction), without order or inequality.
BASIC_STD = (
    "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], "
    "supervise[student(s)]]] -> "
    "r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)], "
    "student(s)[supervisor(x)]]"
)


def university_source_dtd() -> DTD:
    return parse_dtd(SOURCE_DTD_TEXT)


def university_target_dtd() -> DTD:
    return parse_dtd(TARGET_DTD_TEXT)


def university_mapping(order_preserving: bool = True) -> SchemaMapping:
    """The Introduction's mapping, with or without the horizontal/≠ features."""
    std = ORDER_PRESERVING_STD if order_preserving else BASIC_STD
    return SchemaMapping.parse(SOURCE_DTD_TEXT, TARGET_DTD_TEXT, [std])


def university_source_document(
    n_professors: int = 3,
    students_per_professor: int = 2,
    seed: int = 2009,
) -> TreeNode:
    """A deterministic conforming source document of configurable size."""
    rng = random.Random(seed)
    professors = []
    for p in range(n_professors):
        year = 2000 + rng.randint(0, 9)
        courses = rng.sample(range(100, 999), 2)
        students = [
            TreeNode("student", (f"s{p}.{i}",))
            for i in range(students_per_professor)
        ]
        professors.append(
            TreeNode(
                "prof",
                (f"prof{p}",),
                (
                    TreeNode(
                        "teach",
                        (),
                        (
                            TreeNode(
                                "year",
                                (year,),
                                (
                                    TreeNode("course", (f"c{courses[0]}",)),
                                    TreeNode("course", (f"c{courses[1]}",)),
                                ),
                            ),
                        ),
                    ),
                    TreeNode("supervise", (), tuple(students)),
                ),
            )
        )
    return TreeNode("r", (), tuple(professors))


def university_target_document(source: TreeNode) -> TreeNode:
    """A hand-built order-preserving solution for a generated source."""
    courses: list[TreeNode] = []
    students: list[TreeNode] = []
    for prof in source.children:
        name = prof.attrs[0]
        (teach, supervise) = prof.children
        (year,) = teach.children
        for course in year.children:
            courses.append(
                TreeNode(
                    "course",
                    (course.attrs[0], year.attrs[0]),
                    (TreeNode("taughtby", (name,)),),
                )
            )
        for student in supervise.children:
            students.append(
                TreeNode(
                    "student", (student.attrs[0],), (TreeNode("supervisor", (name,)),)
                )
            )
    return TreeNode("r", (), tuple(courses + students))
