"""The PTIME consistency algorithm for ``CONS(⇓)`` over nested-relational
DTDs (Fact 5.1, following [4]).

Nested-relational productions ``l -> l1^m1 ... lk^mk`` have **no
disjunction**, which buys two structural facts:

1. *Unique minimal tree.*  ``T_min`` (required children only) embeds into
   every conforming tree, and downward patterns are preserved under that
   embedding, so ``T_min`` triggers the fewest stds of all source trees —
   ``trig(T_min) ⊆ trig(T)`` for every ``T |= D_s``.
2. *Individual = joint satisfiability.*  Any set of ``⇓``-patterns each
   individually satisfiable against a nested-relational DTD is jointly
   satisfiable: productions never forbid combinations of children, so
   witnesses merge (choose all data values equal to defuse target-side
   variable reuse).

Hence ``M`` is consistent iff every std triggered by ``T_min`` has a
target pattern embeddable into ``D_t`` — a quadratic number of
label-vs-subpattern embeddability checks, each computable by memoized
recursion, in line with the paper's cubic bound.
"""

from __future__ import annotations

from functools import reduce

from repro.engine.budget import ExecutionContext
from repro.engine.verdicts import (
    AnalysisCertificate,
    Proved,
    Refuted,
    TriggerRefutation,
    Verdict,
)
from repro.errors import SignatureError, XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.patterns.matching import engine_for
from repro.values import Const
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def _check_applicable(mapping: SchemaMapping) -> None:
    if mapping.uses_data_comparisons():
        raise SignatureError("the nested-relational PTIME algorithm handles SM(⇓) only")
    for std in mapping.stds:
        for pattern in (std.source, std.target):
            for sub in pattern.subpatterns():
                for item in sub.items:
                    if isinstance(item, Sequence) and len(item.elements) > 1:
                        raise SignatureError(
                            "horizontal axes are outside CONS(⇓); "
                            "use the automata algorithm"
                        )
            if any(isinstance(t, Const) for t in pattern.terms()):
                raise SignatureError("constants are outside SM(⇓)")
    if not mapping.source_dtd.is_nested_relational():
        raise SignatureError("source DTD is not nested-relational")
    if not mapping.target_dtd.is_nested_relational():
        raise SignatureError("target DTD is not nested-relational")


def _strict_descendant_labels(dtd: DTD) -> dict[str, frozenset[str]]:
    """For each label, the labels reachable through >= 1 production step."""
    children = {
        label: frozenset(production.symbols())
        for label, production in dtd.productions.items()
    }
    reach: dict[str, set[str]] = {label: set(kids) for label, kids in children.items()}
    changed = True
    while changed:
        changed = False
        for label in reach:
            extended = set(reach[label])
            for child in list(reach[label]):
                extended |= reach.get(child, set())
            if extended != reach[label]:
                reach[label] = extended
                changed = True
    return {label: frozenset(labels) for label, labels in reach.items()}


class _Embedder:
    """Memoized 'pattern embeddable at label' recursion (PTIME)."""

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self.reach = _strict_descendant_labels(dtd)
        self._memo: dict[tuple[Pattern, str], bool] = {}

    def embeddable(self, pattern: Pattern, label: str) -> bool:
        key = (pattern, label)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self._memo[key] = False  # guards against (impossible) cycles
        result = self._embeddable(pattern, label)
        self._memo[key] = result
        return result

    def _embeddable(self, pattern: Pattern, label: str) -> bool:
        if pattern.label != WILDCARD and pattern.label != label:
            return False
        if pattern.vars is not None and len(pattern.vars) != self.dtd.arity(label):
            return False
        for item in pattern.items:
            if isinstance(item, Descendant):
                if not any(
                    self.embeddable(item.pattern, below)
                    for below in self.reach.get(label, ())
                ):
                    return False
            else:
                (element,) = item.elements
                child_labels = self.dtd.productions[label].symbols()
                if not any(self.embeddable(element, child) for child in child_labels):
                    return False
        return True


def target_satisfiable_nested(dtd: DTD, pattern: Pattern) -> bool:
    """Is the ``⇓``-pattern satisfiable against the nested-relational DTD?"""
    return _Embedder(dtd).embeddable(pattern, dtd.root)


def triggered_by_minimal_tree(mapping: SchemaMapping) -> list[STD]:
    """The stds whose source pattern matches ``T_min`` (all values equal)."""
    # one engine over T_min serves every std: the Boolean semi-join mode
    # never materializes valuation sets, and the index is built once
    engine = engine_for(mapping.source_dtd.minimal_tree())
    return [std for std in mapping.stds if engine.exists_at_root(std.source)]


def is_consistent_nested(
    mapping: SchemaMapping, context: ExecutionContext | None = None
) -> Verdict:
    """Decide ``CONS(⇓)`` over nested-relational DTDs in polynomial time.

    Exact (never ``Unknown``).  ``Proved`` carries the triggered-std
    analysis (the witness pair itself is built on demand by
    :func:`nested_consistency_witness`); ``Refuted`` carries ``T_min`` and
    the triggered stds whose targets do not embed into ``D_t``.
    """
    _check_applicable(mapping)
    embedder = _Embedder(mapping.target_dtd)
    engine = engine_for(mapping.source_dtd.minimal_tree())
    triggered: list[int] = []
    failing: list[int] = []
    for index, std in enumerate(mapping.stds):
        if context is not None:
            context.charge()
        if not engine.exists_at_root(std.source):
            continue
        triggered.append(index)
        if not embedder.embeddable(std.target, mapping.target_dtd.root):
            failing.append(index)
    if failing:
        return Refuted(
            TriggerRefutation(mapping.source_dtd.minimal_tree(), tuple(failing))
        )
    return Proved(
        AnalysisCertificate(
            "cons-nested",
            "every std triggered by T_min has a target embeddable into D_t; "
            f"triggered: {triggered}",
        )
    )


# -- witness construction ------------------------------------------------------


def merge_nested_trees(dtd: DTD, left: TreeNode, right: TreeNode) -> TreeNode:
    """Merge two conforming trees of a nested-relational DTD.

    Children of multiplicity ``1``/``?`` are merged recursively; starred
    children are concatenated.  Attribute values must agree (they do in
    this module: everything is decorated with the single value 0).
    """
    if left.label != right.label:
        raise XsmError(f"cannot merge {left.label!r} with {right.label!r}")
    if left.attrs != right.attrs:
        raise XsmError(f"attribute clash while merging {left.label!r}")
    by_label_left: dict[str, list[TreeNode]] = {}
    for child in left.children:
        by_label_left.setdefault(child.label, []).append(child)
    by_label_right: dict[str, list[TreeNode]] = {}
    for child in right.children:
        by_label_right.setdefault(child.label, []).append(child)
    children: list[TreeNode] = []
    for child_label, multiplicity in dtd.nested_relational_children(left.label):
        ours = by_label_left.get(child_label, [])
        theirs = by_label_right.get(child_label, [])
        if multiplicity in ("1", "?"):
            if ours and theirs:
                children.append(merge_nested_trees(dtd, ours[0], theirs[0]))
            else:
                children.extend(ours or theirs)
        else:
            children.extend(ours)
            children.extend(theirs)
    return TreeNode(left.label, left.attrs, children)


def nested_consistency_witness(
    mapping: SchemaMapping,
) -> tuple[TreeNode, TreeNode] | None:
    """A witness pair for the PTIME algorithm: ``(T_min, merged targets)``."""
    from repro.patterns.satisfiability import satisfying_tree

    _check_applicable(mapping)
    triggered = triggered_by_minimal_tree(mapping)
    witnesses = []
    for std in triggered:
        witness = satisfying_tree(mapping.target_dtd, std.target)
        if witness is None:
            return None
        witnesses.append(witness)
    base = mapping.target_dtd.minimal_tree()
    target = reduce(
        lambda acc, tree: merge_nested_trees(mapping.target_dtd, acc, tree),
        witnesses,
        base,
    )
    return mapping.source_dtd.minimal_tree(), target
