"""Static analysis of schema mappings: consistency (Sections 5 and 6).

* :mod:`repro.consistency.cons_automata` — the EXPTIME algorithm for
  ``CONS(⇓, ⇒)`` (Theorem 5.2): mappings without data comparisons, decided
  by trigger-set reachability over products of tree automata.
* :mod:`repro.consistency.cons_nested` — the PTIME algorithm for
  ``CONS(⇓)`` over nested-relational DTDs (Fact 5.1, from [4]).
* :mod:`repro.consistency.bounded` — bounded witness search for the classes
  with data comparisons: a sound procedure that doubles as the NEXPTIME
  witness-guessing for nested-relational ``CONS(⇓, ∼)`` (Theorem 5.5) and
  as the semi-decision procedure for the undecidable classes (Theorem 5.4).
* :mod:`repro.consistency.abscons` — absolute consistency (Section 6).

:func:`is_consistent` dispatches to the strongest applicable algorithm.
"""

from repro.consistency.cons_automata import (
    consistency_witness_automata,
    is_consistent_automata,
)
from repro.consistency.cons_nested import (
    is_consistent_nested,
    nested_consistency_witness,
)
from repro.consistency.bounded import (
    find_consistency_witness_bounded,
    is_consistent_bounded,
)
from repro.consistency.dispatch import consistency_witness, is_consistent
from repro.consistency.expansion import (
    expand_mapping_sources,
    expand_source_pattern,
    is_absolutely_consistent_expanded,
)
from repro.consistency.abscons import (
    abscons_counterexample,
    abscons_ptime_analysis,
    is_absolutely_consistent,
    is_absolutely_consistent_sm0,
    is_absolutely_consistent_ptime,
)

__all__ = [
    "is_consistent",
    "consistency_witness",
    "is_consistent_automata",
    "consistency_witness_automata",
    "is_consistent_nested",
    "nested_consistency_witness",
    "is_consistent_bounded",
    "find_consistency_witness_bounded",
    "is_absolutely_consistent",
    "is_absolutely_consistent_sm0",
    "is_absolutely_consistent_ptime",
    "abscons_counterexample",
    "abscons_ptime_analysis",
    "expand_source_pattern",
    "expand_mapping_sources",
    "is_absolutely_consistent_expanded",
]
