"""The EXPTIME consistency algorithm for ``SM(⇓, ⇒)`` (Theorem 5.2).

Applicable to mappings **without data comparisons** (no ``alpha`` formulae,
no repeated source variables, no constants).  The paper's key observation:
for such mappings, ``CONS`` is no harder than ``CONS°`` — data values do
not matter, because

* source patterns bind each variable once and test nothing, so the set of
  stds *triggered* by a tree is purely structural, and
* choosing **all data values equal** (in both trees) makes every exported
  tuple constant, so target-side variable reuse is satisfied for free.

Consistency thus becomes an automata question.  Let ``trig(T)`` be the set
of stds whose source pattern matches ``T`` and ``sat(T')`` the set whose
target pattern matches ``T'``.  Then ``M`` is consistent iff

    ∃ T |= D_s, ∃ T' |= D_t :  trig(T) ⊆ sat(T')

and both ``trig`` and ``sat`` are computed by the pattern *closure
automaton* (one deterministic automaton per side — no 2^|Sigma| subset
enumeration, negative information is free because the automaton is
deterministic).  The exponential cost lives in the automaton state spaces,
matching the EXPTIME-completeness of the problem.
"""

from __future__ import annotations

from repro.engine.budget import ExecutionContext
from repro.engine.cache import achievable_sets, dtd_automaton
from repro.engine.verdicts import (
    AnalysisCertificate,
    Proved,
    Refuted,
    TriggerRefutation,
    Verdict,
    WitnessPair,
)
from repro.errors import SignatureError, XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import is_solution
from repro.patterns.ast import Pattern
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode
from repro.values import Const


def _check_applicable(mapping: SchemaMapping) -> None:
    if mapping.uses_data_comparisons():
        raise SignatureError(
            "the automata algorithm decides CONS only for mappings without "
            "data comparisons (SM(⇓,⇒)); use the bounded procedures for SM(..,∼)"
        )
    for std in mapping.stds:
        for pattern in (std.source, std.target):
            if any(isinstance(t, Const) for t in pattern.terms()):
                raise SignatureError(
                    "constants in patterns are outside SM(⇓,⇒); "
                    "use the bounded procedures"
                )


def _pattern_labels(mapping: SchemaMapping) -> frozenset[str]:
    return frozenset(
        label
        for std in mapping.stds
        for pattern in (std.source, std.target)
        for label in pattern.labels_used()
    )


def _achievable_sets(
    dtd: DTD,
    patterns: list[Pattern],
    extra_labels: frozenset[str],
    context: ExecutionContext | None = None,
) -> list[tuple[frozenset[int], TreeNode]]:
    """All achievable (pattern satisfaction set, witness tree) pairs.

    One reachability pass over the product of the DTD automaton and the
    closure automaton of *patterns* — compiled and memoized through the
    engine's :class:`~repro.engine.cache.CompilationCache`.
    """
    return list(achievable_sets(dtd, patterns, extra_labels, True, context).items())


def consistency_witness_automata(
    mapping: SchemaMapping,
    verify: bool = False,
    context: ExecutionContext | None = None,
) -> tuple[TreeNode, TreeNode] | None:
    """A pair ``(T, T') ∈ [[M]]`` (all values 0), or None if inconsistent.

    With ``verify=True`` the returned pair is re-checked against the
    mapping semantics through the pattern engine's semi-join mode — an
    independent (and cheap, Boolean-only) cross-check of the automata
    construction, used by the tests.
    """
    verdict = decide_consistency_automata(mapping, context)
    if not verdict.is_proved:
        return None
    pair = (verdict.certificate.source, verdict.certificate.target)
    if verify and not is_solution(mapping, *pair):
        raise XsmError(
            "internal error: automata witness failed the "
            "pattern-engine membership check"
        )
    return pair


def decide_consistency_automata(
    mapping: SchemaMapping, context: ExecutionContext | None = None
) -> Verdict:
    """The verdict-level automata decision: witness pair or refutation."""
    _check_applicable(mapping)
    pattern_labels = _pattern_labels(mapping)
    source_sets = _achievable_sets(
        mapping.source_dtd,
        [std.source for std in mapping.stds],
        pattern_labels,
        context,
    )
    target_sets = _achievable_sets(
        mapping.target_dtd,
        [std.target for std in mapping.stds],
        pattern_labels,
        context,
    )
    # prune: only minimal trigger sets / maximal satisfaction sets matter
    source_sets = sorted(source_sets, key=lambda pair: len(pair[0]))
    target_sets = sorted(target_sets, key=lambda pair: -len(pair[0]))
    for triggered, source_witness in source_sets:
        for satisfied, target_witness in target_sets:
            if triggered <= satisfied:
                pair = WitnessPair(
                    dtd_automaton(mapping.source_dtd, context=context).decorate(
                        source_witness
                    ),
                    dtd_automaton(mapping.target_dtd, context=context).decorate(
                        target_witness
                    ),
                )
                return Proved(pair)
    if not source_sets:
        # no conforming source tree exists at all, hence no pair
        return Refuted(
            AnalysisCertificate("cons-automata", "source DTD is unsatisfiable")
        )
    triggered, source_witness = source_sets[0]
    source = dtd_automaton(mapping.source_dtd, context=context).decorate(
        source_witness
    )
    return Refuted(TriggerRefutation(source, tuple(sorted(triggered))))


def is_consistent_automata(
    mapping: SchemaMapping, context: ExecutionContext | None = None
) -> Verdict:
    """Decide ``CONS`` for mappings without data comparisons (exact)."""
    return decide_consistency_automata(mapping, context)
