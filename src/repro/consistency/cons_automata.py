"""The EXPTIME consistency algorithm for ``SM(⇓, ⇒)`` (Theorem 5.2).

Applicable to mappings **without data comparisons** (no ``alpha`` formulae,
no repeated source variables, no constants).  The paper's key observation:
for such mappings, ``CONS`` is no harder than ``CONS°`` — data values do
not matter, because

* source patterns bind each variable once and test nothing, so the set of
  stds *triggered* by a tree is purely structural, and
* choosing **all data values equal** (in both trees) makes every exported
  tuple constant, so target-side variable reuse is satisfied for free.

Consistency thus becomes an automata question.  Let ``trig(T)`` be the set
of stds whose source pattern matches ``T`` and ``sat(T')`` the set whose
target pattern matches ``T'``.  Then ``M`` is consistent iff

    ∃ T |= D_s, ∃ T' |= D_t :  trig(T) ⊆ sat(T')

and both ``trig`` and ``sat`` are computed by the pattern *closure
automaton* (one deterministic automaton per side — no 2^|Sigma| subset
enumeration, negative information is free because the automaton is
deterministic).  The exponential cost lives in the automaton state spaces,
matching the EXPTIME-completeness of the problem.
"""

from __future__ import annotations

from repro.automata.dtd_automaton import DTDAutomaton
from repro.automata.duta import ProductAutomaton, reachable_states
from repro.automata.pattern_automaton import PatternClosureAutomaton
from repro.errors import SignatureError, XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import is_solution
from repro.patterns.ast import Pattern
from repro.values import Const
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def _check_applicable(mapping: SchemaMapping) -> None:
    if mapping.uses_data_comparisons():
        raise SignatureError(
            "the automata algorithm decides CONS only for mappings without "
            "data comparisons (SM(⇓,⇒)); use the bounded procedures for SM(..,∼)"
        )
    for std in mapping.stds:
        for pattern in (std.source, std.target):
            if any(isinstance(t, Const) for t in pattern.terms()):
                raise SignatureError(
                    "constants in patterns are outside SM(⇓,⇒); "
                    "use the bounded procedures"
                )


def _achievable_sets(
    dtd: DTD, patterns: list[Pattern], extra_labels: frozenset[str]
) -> list[tuple[frozenset[int], TreeNode]]:
    """All achievable (pattern satisfaction set, witness tree) pairs.

    One reachability pass over the product of the DTD automaton and the
    closure automaton of *patterns*; the satisfaction set of a conforming
    root state is read off the closure component.
    """
    closure = PatternClosureAutomaton(
        patterns, extra_labels=dtd.labels | extra_labels, arity_of=dtd.arity
    )
    dtd_automaton = DTDAutomaton(dtd, extra_labels=extra_labels)
    product = ProductAutomaton([dtd_automaton, closure])
    # a non-conforming subtree never occurs inside a conforming tree:
    # prune states whose DTD component is dead
    realized = reachable_states(
        product,
        prune=lambda state: not state[0][1],
        prune_horizontal=lambda label, h: dtd_automaton.horizontal_dead(h[0]),
    )
    results: dict[frozenset[int], TreeNode] = {}
    for state, witness in realized.items():
        if not dtd_automaton.is_accepting(state[0]):
            continue
        satisfied = closure.trigger_set(state[1])
        if satisfied not in results:
            results[satisfied] = witness
    return list(results.items())


def consistency_witness_automata(
    mapping: SchemaMapping, verify: bool = False
) -> tuple[TreeNode, TreeNode] | None:
    """A pair ``(T, T') ∈ [[M]]`` (all values 0), or None if inconsistent.

    With ``verify=True`` the returned pair is re-checked against the
    mapping semantics through the pattern engine's semi-join mode — an
    independent (and cheap, Boolean-only) cross-check of the automata
    construction, used by the tests.
    """
    _check_applicable(mapping)
    pattern_labels = frozenset(
        label
        for std in mapping.stds
        for pattern in (std.source, std.target)
        for label in pattern.labels_used()
    )
    source_sets = _achievable_sets(
        mapping.source_dtd, [std.source for std in mapping.stds], pattern_labels
    )
    if not source_sets:
        return None  # source DTD unsatisfiable
    target_sets = _achievable_sets(
        mapping.target_dtd, [std.target for std in mapping.stds], pattern_labels
    )
    # prune: only minimal trigger sets / maximal satisfaction sets matter
    source_sets.sort(key=lambda pair: len(pair[0]))
    target_sets.sort(key=lambda pair: -len(pair[0]))
    for triggered, source_witness in source_sets:
        for satisfied, target_witness in target_sets:
            if triggered <= satisfied:
                pair = (
                    DTDAutomaton(mapping.source_dtd).decorate(source_witness),
                    DTDAutomaton(mapping.target_dtd).decorate(target_witness),
                )
                if verify and not is_solution(mapping, *pair):
                    raise XsmError(
                        "internal error: automata witness failed the "
                        "pattern-engine membership check"
                    )
                return pair
    return None


def is_consistent_automata(mapping: SchemaMapping) -> bool:
    """Decide ``CONS`` for mappings without data comparisons (exact)."""
    return consistency_witness_automata(mapping) is not None
