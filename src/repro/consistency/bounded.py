"""Bounded consistency search for mappings with data comparisons.

For ``SM(⇓, ∼)`` over nested-relational DTDs the paper proves
NEXPTIME-completeness (Theorem 5.5): a consistent mapping has a witness of
at most exponential size, found by guess-and-check.  For the classes with
both horizontal axes and comparisons the problem is undecidable
(Theorem 5.4), so *no* terminating complete procedure exists.

This module implements the guess-and-check directly: enumerate source
trees up to a size bound over a finite value domain, and for each search
for a bounded solution.  The procedure is

* **sound**: a returned witness pair really is in ``[[M]]``;
* **complete up to its bounds**: ``None`` means no witness within the
  bounds, which refutes consistency only if the caller knows a witness
  would have to fit (the undecidable classes never get that guarantee —
  this is exactly the semi-decision procedure the theory allows).

The value domain is the mapping's constants plus ``max-variables + 1``
fresh values: a single std can distinguish at most as many values as it
has variables, so per-std this domain is exhaustive; extra distinct values
never help the source side trigger fewer stds.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.budget import ExecutionContext, resolve_budget, resolve_context
from repro.engine.verdicts import Proved, Unknown, Verdict, WitnessPair
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import SolutionChecker
from repro.mappings.skolem import SkolemSolutionChecker
from repro.values import Const
from repro.verification.enumeration import enumerate_trees
from repro.xmlmodel.tree import TreeNode


def mapping_constants(mapping: SchemaMapping) -> list[object]:
    """All constants appearing in patterns or comparisons, deduplicated."""
    constants: dict[object, None] = {}
    for std in mapping.stds:
        for pattern in (std.source, std.target):
            for term in pattern.terms():
                if isinstance(term, Const):
                    constants.setdefault(term.value, None)
        for comparison in std.source_conditions + std.target_conditions:
            for term in (comparison.left, comparison.right):
                if isinstance(term, Const):
                    constants.setdefault(term.value, None)
    return list(constants)


def _max_variables(mapping: SchemaMapping) -> int:
    counts = [
        len(set(std.source_variables()) | set(std.target_variables()))
        for std in mapping.stds
    ]
    return max(counts, default=0)


def default_value_domain(mapping: SchemaMapping) -> tuple:
    """Constants plus ``max-variables + 1`` fresh values."""
    fresh = tuple(f"#v{i}" for i in range(_max_variables(mapping) + 1))
    return tuple(mapping_constants(mapping)) + fresh


def find_consistency_witness_bounded(
    mapping: SchemaMapping,
    max_source_size: int | None = None,
    max_target_size: int | None = None,
    value_domain: tuple | None = None,
    skolem: bool = False,
    on_candidate: Callable[[TreeNode], None] | None = None,
    context: ExecutionContext | None = None,
) -> tuple[TreeNode, TreeNode] | None:
    """Search for ``(T, T') ∈ [[M]]`` within the size bounds.

    Bounds default to the context's :class:`~repro.engine.budget.Budget`.
    *on_candidate* is called on every source tree tried (used by the
    benchmarks to report search effort).
    """
    budget = resolve_budget(context)
    context = resolve_context(context)
    if max_source_size is None:
        max_source_size = budget.max_source_size
    if max_target_size is None:
        max_target_size = budget.max_target_size
    if value_domain is None:
        value_domain = default_value_domain(mapping)
    make_checker = SkolemSolutionChecker if skolem else SolutionChecker
    for source in enumerate_trees(mapping.source_dtd, max_source_size, value_domain):
        if context is not None:
            context.charge()
        if on_candidate is not None:
            on_candidate(source)
        # the source side is fixed across the inner loop: compute its
        # triggered obligations once, then semi-join each candidate target
        checker = make_checker(mapping, source)
        for target in enumerate_trees(
            mapping.target_dtd, max_target_size, value_domain
        ):
            if context is not None:
                context.charge()
            if checker.is_solution_for(target, check_conformance=False):
                return source, target
    return None


def is_consistent_bounded(
    mapping: SchemaMapping,
    max_source_size: int | None = None,
    max_target_size: int | None = None,
    value_domain: tuple | None = None,
    skolem: bool = False,
    context: ExecutionContext | None = None,
) -> Verdict:
    """``Proved`` with a witness pair, or ``Unknown`` when the bounds are out.

    The search is sound but complete only up to its bounds (module doc),
    so exhausting them yields ``Unknown`` — never a refutation.
    """
    witness = find_consistency_witness_bounded(
        mapping, max_source_size, max_target_size, value_domain, skolem,
        context=context,
    )
    if witness is not None:
        return Proved(WitnessPair(*witness))
    return Unknown(
        "no witness within the search bounds; the class admits no complete "
        "procedure (Theorem 5.4)",
        bound_exhausted=True,
    )
