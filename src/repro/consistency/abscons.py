"""Absolute consistency: does *every* source tree have a solution? (Section 6)

Three procedures, mirroring the paper's results:

* :func:`is_absolutely_consistent_sm0` — exact for ``SM°`` mappings
  (no attribute values anywhere; Proposition 6.1, Pi_2^p).  With values
  erased, a tree's trigger set is purely structural, so the question is:
  for every achievable source trigger set ``S`` there must be an
  achievable target satisfaction set ``B ⊇ S``.  Both families of sets
  come from the closure automata of Section 5's machinery.

* :func:`is_absolutely_consistent_ptime` — exact for nested-relational
  DTDs + fully-specified stds (Theorem 6.3, PTIME).  The paper notes that
  value *counting* is what makes the general problem hard; in this class
  the counting collapses to a **rigidity analysis**:

  - a position (label path + attribute slot) is *rigid* when every step
    of the path has multiplicity ``1``/``?`` — a conforming tree has at
    most one node there, so its value is global;
  - a source position under a ``*``/``+`` step is *repeatable*: one tree
    can export two distinct values through it;
  - every rigid *target* cell written by an std must receive a globally
    unique value, so the mapping is absolutely consistent iff no rigid
    target class (closing under same-trigger existential-variable chains
    and shared rigid target cells) receives either a repeatable source
    cell or two source cells that are not forced equal (i.e. not the same
    rigid source position) — plus the structural condition that every
    triggerable std has a target embeddable in ``D_t``.

* :func:`abscons_counterexample` — a sound bounded refuter for the general
  case (Theorem 6.2 proves decidability in EXPSPACE; the paper's counting
  construction is not given, so completeness is only up to the bounds —
  see DESIGN.md, substitution 1).

Every decision entry point returns an
:class:`~repro.engine.verdicts.Verdict`; the witness extractors
(:func:`sm0_counterexample`, :func:`abscons_counterexample`) stay raw for
the certificate re-checker.
"""

from __future__ import annotations

from repro.automata.dtd_automaton import DTDAutomaton
from repro.consistency.bounded import default_value_domain
from repro.consistency.cons_nested import _Embedder
from repro.engine.budget import ExecutionContext, resolve_budget
from repro.engine.cache import achievable_sets
from repro.engine.verdicts import (
    AnalysisCertificate,
    Counterexample,
    Proved,
    Refuted,
    RigidityExplanation,
    Unknown,
    Verdict,
)
from repro.errors import BoundExceededError, SignatureError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD
from repro.patterns.ast import Pattern, Sequence
from repro.values import Const, Var
from repro.verification.enumeration import enumerate_trees
from repro.verification.oracle import oracle_has_solution
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


# ---------------------------------------------------------------------------
# Proposition 6.1: SM° mappings
# ---------------------------------------------------------------------------


def _check_sm0(mapping: SchemaMapping) -> None:
    for std in mapping.stds:
        if std.source_conditions or std.target_conditions:
            raise SignatureError("SM° mappings have no comparison formulae")
        for pattern in (std.source, std.target):
            if any(sub.vars is not None for sub in pattern.subpatterns()):
                raise SignatureError(
                    "SM° mappings mention no attributes; call .strip_values()"
                )


def _sm0_sets(mapping: SchemaMapping, context: ExecutionContext | None):
    """Achievable (trigger set, witness) tables for both sides, cached."""
    extra = frozenset(
        label
        for std in mapping.stds
        for pattern in (std.source, std.target)
        for label in pattern.labels_used()
    )
    source_sets = achievable_sets(
        mapping.source_dtd,
        [std.source for std in mapping.stds],
        extra,
        with_arity=False,
        context=context,
    )
    target_sets = achievable_sets(
        mapping.target_dtd,
        [std.target for std in mapping.stds],
        extra,
        with_arity=False,
        context=context,
    )
    return source_sets, target_sets


def is_absolutely_consistent_sm0(
    mapping: SchemaMapping, context: ExecutionContext | None = None
) -> Verdict:
    """Exact ``ABSCONS°(⇓,⇒)`` decision for value-free mappings.

    ``Refuted`` carries a conforming source tree with no solution.
    """
    _check_sm0(mapping)
    source_sets, target_sets = _sm0_sets(mapping, context)
    maximal_targets = [
        satisfied
        for satisfied in target_sets
        if not any(satisfied < other for other in target_sets)
    ]
    for triggered, witness in source_sets.items():
        if not any(triggered <= satisfied for satisfied in maximal_targets):
            return Refuted(
                Counterexample(DTDAutomaton(mapping.source_dtd).decorate(witness))
            )
    return Proved(
        AnalysisCertificate(
            "abscons-sm0",
            "every achievable source trigger set is covered by an "
            "achievable target satisfaction set",
        )
    )


def sm0_counterexample(
    mapping: SchemaMapping, context: ExecutionContext | None = None
) -> TreeNode | None:
    """A source tree (values erased) with no solution, for SM° mappings."""
    _check_sm0(mapping)
    source_sets, target_sets = _sm0_sets(mapping, context)
    for triggered, witness in source_sets.items():
        if not any(triggered <= satisfied for satisfied in target_sets):
            return DTDAutomaton(mapping.source_dtd).decorate(witness)
    return None


# ---------------------------------------------------------------------------
# Theorem 6.3: nested-relational DTDs + fully-specified stds (PTIME)
# ---------------------------------------------------------------------------


def _check_ptime_class(mapping: SchemaMapping) -> None:
    if mapping.uses_data_comparisons():
        raise SignatureError("the PTIME ABSCONS algorithm handles SM(↓) without ∼")
    if not mapping.is_fully_specified():
        raise SignatureError("stds must be fully specified (Theorem 6.3)")
    if not mapping.is_nested_relational():
        raise SignatureError("both DTDs must be nested-relational (Theorem 6.3)")
    for std in mapping.stds:
        for pattern in (std.source, std.target):
            if any(isinstance(t, Const) for t in pattern.terms()):
                raise SignatureError("constants are outside SM(↓)")


def _pattern_cells(pattern: Pattern, dtd: DTD):
    """Yield ``(path, slot, term, rigid, repeatable)`` for every attribute term.

    *path* is the label path from the pattern root; *rigid* means every
    step below the root has multiplicity 1/?; *repeatable* means some step
    has multiplicity */+.  Fully-specified patterns only (single-element
    sequences, no wildcard), so paths are concrete.
    """
    multiplicity_of = {
        label: dict(dtd.nested_relational_children(label)) for label in dtd.labels
    }

    def walk(node: Pattern, path: tuple[str, ...], rigid: bool, repeatable: bool):
        if node.vars is not None:
            for slot, term in enumerate(node.vars):
                yield (path, slot, term, rigid, repeatable)
        for item in node.items:
            assert isinstance(item, Sequence) and len(item.elements) == 1
            (child,) = item.elements
            step = multiplicity_of.get(path[-1], {}).get(child.label)
            starred = step in ("*", "+")
            yield from walk(
                child,
                path + (child.label,),
                rigid and not starred,
                repeatable or starred,
            )

    yield from walk(pattern, (pattern.label,), True, False)


class _UnionFind:
    def __init__(self):
        self._parent: dict = {}

    def find(self, x):
        self._parent.setdefault(x, x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x, y):
        self._parent[self.find(x)] = self.find(y)


def abscons_ptime_analysis(mapping: SchemaMapping) -> list[str]:
    """The Theorem 6.3 rigidity analysis, with explanations.

    Returns the list of problems found (empty = absolutely consistent);
    each entry is a human-readable reason a source document can be built
    that has no solution.  :func:`is_absolutely_consistent_ptime` is the
    Verdict view.
    """
    _check_ptime_class(mapping)
    source_embedder = _Embedder(mapping.source_dtd)
    target_embedder = _Embedder(mapping.target_dtd)
    union_find = _UnionFind()
    problems: list[str] = []
    # class annotations: root -> set of source-cell identities
    writers: dict[object, set] = {}
    repeatable_identities: set = set()
    identity_origin: dict[object, str] = {}

    live_stds: list[STD] = []
    for std in mapping.stds:
        if std.source.label != mapping.source_dtd.root:
            continue
        if not source_embedder.embeddable(std.source, mapping.source_dtd.root):
            continue  # never triggers
        if std.target.label != mapping.target_dtd.root or not target_embedder.embeddable(
            std.target, mapping.target_dtd.root
        ):
            problems.append(
                f"std `{std}` can be triggered, but its target pattern does "
                f"not embed into the target DTD"
            )
            continue
        live_stds.append(std)

    def pretty(path: tuple, slot: int) -> str:
        return "/".join(path) + f"@{slot}"

    for index, std in enumerate(live_stds):
        # where does each (necessarily unique) source variable live?
        source_home: dict[Var, tuple] = {}
        for path, slot, term, rigid, repeatable in _pattern_cells(
            std.source, mapping.source_dtd
        ):
            assert isinstance(term, Var)
            if rigid and not repeatable:
                identity = ("spos", path, slot)  # globally unique cell
            else:
                identity = ("cell", index, path, slot)
            source_home[term] = (identity, repeatable)
            identity_origin[identity] = (
                f"variable {term.name} of std #{index + 1} "
                f"(source position {pretty(path, slot)})"
            )
        shared = set(std.shared_variables())
        for path, slot, term, rigid, repeatable in _pattern_cells(
            std.target, mapping.target_dtd
        ):
            if not rigid:
                continue  # flexible positions absorb anything
            cell = ("tpos", path, slot)
            identity_origin.setdefault(
                cell, f"rigid target position {pretty(path, slot)}"
            )
            assert isinstance(term, Var)
            if term in shared:
                identity, source_repeatable = source_home[term]
                union_find.union(cell, identity)
                new_root = union_find.find(cell)
                writers.setdefault(new_root, set()).add(identity)
                if source_repeatable:
                    repeatable_identities.add(identity)
            else:
                union_find.union(cell, ("ez", index, term))

    # normalize annotations to final roots
    final_writers: dict[object, set] = {}
    for root, cells in writers.items():
        final_writers.setdefault(union_find.find(root), set()).update(cells)
    for root, cells in final_writers.items():
        if len(cells) > 1:
            origins = sorted(identity_origin.get(c, str(c)) for c in cells)
            problems.append(
                "a rigid target position receives values from independent "
                "sources that one document can make distinct: "
                + "; ".join(origins)
            )
            continue
        (cell,) = cells
        if cell in repeatable_identities:
            problems.append(
                "a rigid target position (one node in every solution) is "
                "written from a repeatable source position that one document "
                "can fill with two distinct values: "
                + identity_origin.get(cell, str(cell))
            )
    return problems


def is_absolutely_consistent_ptime(mapping: SchemaMapping) -> Verdict:
    """Exact PTIME decision of ``ABSCONS(↓)`` for the Theorem 6.3 class."""
    problems = abscons_ptime_analysis(mapping)
    if problems:
        return Refuted(RigidityExplanation(tuple(problems)))
    return Proved(
        AnalysisCertificate(
            "abscons-ptime",
            "the rigidity analysis found no over-constrained rigid target class",
        )
    )


# ---------------------------------------------------------------------------
# Theorem 6.2 (general case): bounded refutation
# ---------------------------------------------------------------------------


def abscons_counterexample(
    mapping: SchemaMapping,
    max_source_size: int | None = None,
    max_target_size: int | None = None,
    value_domain: tuple | None = None,
    extra_target_values: int = 2,
    context: ExecutionContext | None = None,
) -> TreeNode | None:
    """A bounded source tree with no bounded solution, or None.

    Sound refuter for the general ``ABSCONS`` problem: a returned tree
    genuinely has no solution *within the target bound*; None means
    absolute consistency holds as far as the bounds can see.  Bounds
    default to the context's :class:`~repro.engine.budget.Budget`.
    """
    budget = resolve_budget(context)
    if max_source_size is None:
        max_source_size = budget.max_source_size
    if max_target_size is None:
        max_target_size = budget.max_target_size
    if value_domain is None:
        value_domain = default_value_domain(mapping)
    target_domain = tuple(value_domain) + tuple(
        f"#null{i}" for i in range(extra_target_values)
    )
    for source in enumerate_trees(mapping.source_dtd, max_source_size, value_domain):
        if context is not None:
            context.charge()
        if not oracle_has_solution(mapping, source, max_target_size, target_domain):
            return source
    return None


def decide_absolute_consistency(
    mapping: SchemaMapping,
    context: ExecutionContext | None = None,
) -> tuple[Verdict, str]:
    """Run the strongest applicable ABSCONS procedure.

    Returns ``(verdict, algorithm)`` so the engine's solve report can
    record which route decided (or gave up on) the instance.
    """
    is_sm0 = all(
        not std.source_conditions
        and not std.target_conditions
        and all(sub.vars is None for sub in std.source.subpatterns())
        and all(sub.vars is None for sub in std.target.subpatterns())
        for std in mapping.stds
    )
    if is_sm0:
        return is_absolutely_consistent_sm0(mapping, context), "abscons-sm0"
    try:
        return is_absolutely_consistent_ptime(mapping), "abscons-ptime"
    except SignatureError:
        pass
    # exact fallback for wildcard/descendant *sources* via expansion
    from repro.consistency.expansion import is_absolutely_consistent_expanded

    try:
        return is_absolutely_consistent_expanded(mapping), "abscons-expansion"
    except (SignatureError, BoundExceededError):
        pass
    counterexample = abscons_counterexample(mapping, context=context)
    if counterexample is not None:
        return Refuted(Counterexample(counterexample)), "abscons-bounded"
    budget = resolve_budget(context)
    return (
        Unknown(
            "no counterexample within the bounds; the general ABSCONS "
            "algorithm (EXPSPACE, Theorem 6.2) is approximated by bounded "
            f"refutation only (source bound {budget.max_source_size})",
            bound_exhausted=True,
        ),
        "abscons-bounded",
    )


def is_absolutely_consistent(
    mapping: SchemaMapping,
    max_source_size: int | None = None,
    max_target_size: int | None = None,
    context: ExecutionContext | None = None,
) -> Verdict:
    """Dispatch to the strongest applicable ABSCONS procedure.

    Exact for SM° mappings and for the Theorem 6.3 class (with or without
    source expansion); otherwise a bounded refutation is attempted and
    finding nothing yields ``Unknown`` with ``bound_exhausted=True`` (the
    honest outcome for a problem whose general algorithm is EXPSPACE with
    an unpublished construction).
    """
    from repro.engine.budget import Budget

    if max_source_size is not None or max_target_size is not None:
        budget = context.budget if context is not None else Budget.default()
        overrides = {}
        if max_source_size is not None:
            overrides["max_source_size"] = max_source_size
        if max_target_size is not None:
            overrides["max_target_size"] = max_target_size
        context = ExecutionContext(
            budget.with_(**overrides),
            cache=context.cache if context is not None else None,
        )
    verdict, _ = decide_absolute_consistency(mapping, context)
    return verdict
