"""Expanding ``⇓``-source patterns into fully-specified instantiations.

Over a *non-recursive* DTD, a source pattern using wildcard or descendant
is equivalent to a finite **union** of fully-specified patterns: a
wildcard node ranges over the DTD's labels, and a ``//`` edge ranges over
the finitely many label paths of the (acyclic) label graph.  Since the
paper's stds are implications, replacing one std by the set of stds over
its source instantiations preserves the semantics exactly — every concrete
match of the original source uses concrete labels and paths, so it is a
match of exactly the corresponding instantiation, with the same exported
values.

This turns the NEXPTIME-hard extension of Theorem 6.3 (fully-specified
plus wildcard or descendant) into an **exact** procedure: expand the
sources (worst-case exponentially many instantiations — that is the lower
bound talking), then run the PTIME rigidity analysis of
:mod:`repro.consistency.abscons` on the expanded mapping.  The expansion
size is guarded; exceeding the guard raises
:class:`~repro.errors.BoundExceededError` rather than thrashing.

Only *source* sides expand this way: a wildcard in a target is an
existential over labels (a disjunction of requirements), which the std
language cannot express as a set of stds.
"""

from __future__ import annotations

import itertools

from repro.engine.budget import resolve_budget
from repro.engine.verdicts import (
    AnalysisCertificate,
    Proved,
    Refuted,
    RigidityExplanation,
    Verdict,
)
from repro.errors import BoundExceededError, SignatureError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.std import STD
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.xmlmodel.dtd import DTD


def _downward_paths(dtd: DTD) -> dict[tuple[str, str], list[tuple[str, ...]]]:
    """All strict label paths ``a -> ... -> b`` keyed by (a, b).

    A path is recorded as the tuple of *intermediate* labels (possibly
    empty for a direct child edge).  Finite because the DTD is
    non-recursive.
    """
    children = {
        label: sorted(production.symbols())
        for label, production in dtd.productions.items()
    }
    paths: dict[tuple[str, str], list[tuple[str, ...]]] = {}

    def walk(start: str, current: str, intermediates: tuple[str, ...]) -> None:
        for child in children.get(current, ()):
            paths.setdefault((start, child), []).append(intermediates)
            walk(start, child, intermediates + (child,))

    for label in children:
        walk(label, label, ())
    return paths


def expand_source_pattern(
    dtd: DTD, pattern: Pattern, limit: int | None = None
) -> list[Pattern]:
    """The fully-specified instantiations of a ``⇓``-source pattern.

    Requires a non-recursive DTD and a pattern without horizontal axes.
    The union of the instantiations' match sets over trees conforming to
    *dtd* equals the original pattern's match set.  Raises
    :class:`BoundExceededError` when more than *limit* instantiations
    would be produced (default: the ambient budget's ``expansion_limit``).
    """
    if limit is None:
        limit = resolve_budget(None).expansion_limit
    if dtd.is_recursive():
        raise SignatureError("expansion requires a non-recursive DTD")
    paths = _downward_paths(dtd)
    budget = [limit]

    def charge(n: int) -> None:
        budget[0] -= n
        if budget[0] < 0:
            raise BoundExceededError(
                f"source expansion exceeds {limit} instantiations", bound=limit
            )

    def candidate_labels(node: Pattern, allowed) -> list[str]:
        labels = allowed if node.label == WILDCARD else (
            [node.label] if node.label in allowed else []
        )
        if node.vars is None:
            return list(labels)
        return [label for label in labels if dtd.arity(label) == len(node.vars)]

    def expand(node: Pattern, allowed) -> list[Pattern]:
        results: list[Pattern] = []
        for label in candidate_labels(node, allowed):
            child_labels = sorted(dtd.productions[label].symbols())
            item_options: list[list] = []
            for item in node.items:
                if isinstance(item, Descendant):
                    options = []
                    for below in sorted(
                        {b for (a, b) in paths if a == label}
                    ):
                        for inner in expand(item.pattern, [below]):
                            for intermediates in paths[(label, below)]:
                                wrapped = inner
                                for inter in reversed(intermediates):
                                    wrapped = Pattern(
                                        inter, None, (Sequence((wrapped,)),)
                                    )
                                options.append(Sequence((wrapped,)))
                else:
                    if len(item.elements) != 1:
                        raise SignatureError(
                            "expansion handles the ⇓ fragment only (no → / →*)"
                        )
                    (child,) = item.elements
                    options = [
                        Sequence((inner,))
                        for inner in expand(child, child_labels)
                    ]
                if not options:
                    break
                item_options.append(options)
            else:
                count = 1
                for options in item_options:
                    count *= len(options)
                charge(count)
                for combination in itertools.product(*item_options):
                    results.append(Pattern(label, node.vars, tuple(combination)))
        return results

    return expand(pattern, [dtd.root] if pattern.label in (dtd.root, WILDCARD) else [])


def expansion_is_exact_on(
    dtd: DTD, pattern: Pattern, tree, limit: int | None = None
) -> bool:
    """Cross-check the expansion against the pattern engine on one tree.

    The union of the instantiations' match sets must equal the original
    pattern's match set on any tree conforming to *dtd* — the semantic
    claim the module docstring makes.  Both sides are evaluated through
    one shared engine (the instantiations reuse the tree's index and
    memo tables), so the check stays cheap; the randomized tests call it
    on enumerated conforming trees.
    """
    from repro.patterns.matching import engine_for

    engine = engine_for(tree)
    expanded: set = set()
    for instantiation in expand_source_pattern(dtd, pattern, limit):
        expanded |= engine.relation_at_root(instantiation)
    return expanded == engine.relation_at_root(pattern)


def expand_mapping_sources(
    mapping: SchemaMapping, limit: int | None = None
) -> SchemaMapping:
    """The mapping with every std's source replaced by its instantiations.

    Semantically equivalent to the input; the result has fully-specified
    source patterns, ready for the Theorem 6.3 analysis.
    """
    expanded: list[STD] = []
    seen: set[STD] = set()
    for std in mapping.stds:
        for instantiation in expand_source_pattern(
            mapping.source_dtd, std.source, limit
        ):
            candidate = STD(
                instantiation, std.target,
                std.source_conditions, std.target_conditions,
            )
            if candidate not in seen:
                seen.add(candidate)
                expanded.append(candidate)
    return SchemaMapping(mapping.source_dtd, mapping.target_dtd, expanded)


def is_absolutely_consistent_expanded(
    mapping: SchemaMapping, limit: int | None = None
) -> Verdict:
    """Exact ``ABSCONS(⇓)`` with wildcard/descendant **sources** allowed.

    Requirements: nested-relational DTDs, no comparisons, fully-specified
    *targets*; sources may use wildcard and descendant (the NEXPTIME-hard
    extension of Theorem 6.3 — the worst-case exponential expansion is the
    lower bound made visible).  Raises :class:`BoundExceededError` when
    the expansion itself overflows (the caller falls back to bounded
    refutation, which reports ``Unknown``).
    """
    from repro.consistency.abscons import abscons_ptime_analysis
    from repro.patterns.features import is_fully_specified

    for std in mapping.stds:
        if not is_fully_specified(std.target):
            raise SignatureError(
                "targets must be fully specified; only sources expand"
            )
    expanded = expand_mapping_sources(mapping, limit)
    problems = abscons_ptime_analysis(expanded)
    if problems:
        return Refuted(RigidityExplanation(tuple(problems)))
    return Proved(
        AnalysisCertificate(
            "abscons-expansion",
            f"rigidity analysis of the {len(expanded.stds)}-std source "
            "expansion found no over-constrained rigid target class",
        )
    )
