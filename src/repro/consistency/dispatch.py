"""Front door for consistency checking: picks the strongest algorithm.

Mirrors Figure 1 of the paper:

====================  =======================  ===========================
features              DTDs                     algorithm
====================  =======================  ===========================
no comparisons, ⇓     nested-relational        PTIME (cons_nested)
no comparisons        arbitrary                EXPTIME (cons_automata)
with ∼ / constants    any                      bounded search (sound only)
====================  =======================  ===========================

For the bounded case :func:`is_consistent` raises
:class:`~repro.errors.BoundExceededError` when no witness is found — a
caller wanting the raw tri-state uses
:func:`repro.consistency.bounded.is_consistent_bounded` directly.
"""

from __future__ import annotations

from repro.consistency.bounded import find_consistency_witness_bounded
from repro.consistency.cons_automata import consistency_witness_automata
from repro.consistency.cons_nested import (
    is_consistent_nested,
    nested_consistency_witness,
)
from repro.errors import BoundExceededError
from repro.mappings.mapping import SchemaMapping
from repro.patterns.features import HORIZONTAL
from repro.values import Const
from repro.xmlmodel.tree import TreeNode

#: Default bounds for the bounded fallback.
DEFAULT_MAX_SOURCE_SIZE = 6
DEFAULT_MAX_TARGET_SIZE = 6


def _uses_constants(mapping: SchemaMapping) -> bool:
    return any(
        isinstance(term, Const)
        for std in mapping.stds
        for pattern in (std.source, std.target)
        for term in pattern.terms()
    )


def _nested_ptime_applicable(mapping: SchemaMapping) -> bool:
    if mapping.uses_data_comparisons() or _uses_constants(mapping):
        return False
    if mapping.signature().features & HORIZONTAL:
        return False
    return mapping.is_nested_relational()


def consistency_witness(
    mapping: SchemaMapping,
    max_source_size: int = DEFAULT_MAX_SOURCE_SIZE,
    max_target_size: int = DEFAULT_MAX_TARGET_SIZE,
) -> tuple[TreeNode, TreeNode] | None:
    """A pair in ``[[M]]``, or None when the mapping is (known) inconsistent."""
    if not mapping.uses_data_comparisons() and not _uses_constants(mapping):
        if _nested_ptime_applicable(mapping):
            return nested_consistency_witness(mapping)
        return consistency_witness_automata(mapping)
    witness = find_consistency_witness_bounded(
        mapping, max_source_size, max_target_size
    )
    if witness is None:
        raise BoundExceededError(
            "no witness within the default bounds; the class of this mapping "
            "admits no complete procedure (Theorem 5.4) — "
            "use is_consistent_bounded with explicit bounds",
            bound=max_source_size,
        )
    return witness


def is_consistent(
    mapping: SchemaMapping,
    max_source_size: int = DEFAULT_MAX_SOURCE_SIZE,
    max_target_size: int = DEFAULT_MAX_TARGET_SIZE,
) -> bool:
    """Decide consistency with the strongest applicable algorithm.

    Exact for mappings without data comparisons; raises
    :class:`BoundExceededError` when only an inconclusive bounded search is
    available and it finds nothing.
    """
    from repro.consistency.cons_automata import is_consistent_automata

    if not mapping.uses_data_comparisons() and not _uses_constants(mapping):
        if _nested_ptime_applicable(mapping):
            return is_consistent_nested(mapping)
        return is_consistent_automata(mapping)
    return consistency_witness(mapping, max_source_size, max_target_size) is not None
