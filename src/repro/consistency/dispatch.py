"""Front door for consistency checking: picks the strongest algorithm.

Mirrors Figure 1 of the paper:

====================  =======================  ===========================
features              DTDs                     algorithm
====================  =======================  ===========================
no comparisons, ⇓     nested-relational        PTIME (cons_nested)
no comparisons        arbitrary                EXPTIME (cons_automata)
with ∼ / constants    any                      bounded search (sound only)
====================  =======================  ===========================

The routing itself lives in :mod:`repro.engine.core`; this module keeps
the historical entry points as thin wrappers over
``engine.solve(ConsistencyProblem(mapping))``.  :func:`is_consistent`
returns a :class:`~repro.engine.verdicts.Verdict` — in particular the
bounded fallback yields ``Unknown`` instead of raising
:class:`~repro.errors.BoundExceededError`.
"""

from __future__ import annotations

from repro.engine.budget import Budget, ExecutionContext
from repro.engine.core import nested_ptime_applicable, uses_constants
from repro.engine.problems import ConsistencyProblem
from repro.engine.verdicts import Verdict, WitnessPair
from repro.mappings.mapping import SchemaMapping
from repro.xmlmodel.tree import TreeNode

#: Deprecated aliases — the canonical defaults live in ``Budget.default()``.
DEFAULT_MAX_SOURCE_SIZE = Budget.default().max_source_size
DEFAULT_MAX_TARGET_SIZE = Budget.default().max_target_size


def _uses_constants(mapping: SchemaMapping) -> bool:
    return uses_constants(mapping)


def _nested_ptime_applicable(mapping: SchemaMapping) -> bool:
    return nested_ptime_applicable(mapping)


def _context_for(
    context: ExecutionContext | None,
    max_source_size: int | None,
    max_target_size: int | None,
) -> ExecutionContext | None:
    if max_source_size is None and max_target_size is None:
        return context
    budget = context.budget if context is not None else Budget.default()
    overrides = {}
    if max_source_size is not None:
        overrides["max_source_size"] = max_source_size
    if max_target_size is not None:
        overrides["max_target_size"] = max_target_size
    return ExecutionContext(
        budget.with_(**overrides),
        cache=context.cache if context is not None else None,
    )


def is_consistent(
    mapping: SchemaMapping,
    max_source_size: int | None = None,
    max_target_size: int | None = None,
    context: ExecutionContext | None = None,
) -> Verdict:
    """Decide consistency with the strongest applicable algorithm.

    Exact for mappings without data comparisons; for the classes with only
    an inconclusive bounded search available, exhausting the bounds
    returns ``Unknown`` (with ``bound_exhausted=True``).
    """
    from repro.engine.core import solve

    return solve(
        ConsistencyProblem(mapping),
        _context_for(context, max_source_size, max_target_size),
    )


def consistency_witness(
    mapping: SchemaMapping,
    max_source_size: int | None = None,
    max_target_size: int | None = None,
    context: ExecutionContext | None = None,
) -> tuple[TreeNode, TreeNode] | None:
    """A pair in ``[[M]]``, or None when no witness is known.

    None covers both refuted consistency and an exhausted bounded search;
    use :func:`is_consistent` for the tri-state.
    """
    from repro.consistency.cons_nested import nested_consistency_witness

    verdict = is_consistent(mapping, max_source_size, max_target_size, context)
    if not verdict.is_proved:
        return None
    certificate = verdict.certificate
    if isinstance(certificate, WitnessPair):
        return certificate.source, certificate.target
    # the PTIME route proves consistency analytically; build the pair now
    return nested_consistency_witness(mapping)
