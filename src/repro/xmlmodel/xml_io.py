"""Real XML (angle-bracket) import and export.

The library's native syntax (``r[a(1), b]``) is compact for theory work,
but documents in the wild are XML.  This module converts both ways without
external dependencies:

* :func:`to_xml` renders a tree as an XML string; attribute *names* come
  from the DTD (the tree itself stores only the ordered value tuple, as in
  the paper's model), falling back to ``a0, a1, ...``;
* :func:`from_xml` parses a (sufficiently plain) XML document: elements,
  attributes, self-closing tags, comments, processing instructions and an
  optional XML declaration.  Text content is rejected — the paper's model
  has no text nodes — unless it is pure whitespace.

Values round-trip as strings; pass ``coerce=int_coercion`` to recover
integers (the default coercion turns digit strings into ints, matching
the native parser's convention).
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import ParseError
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def _escape(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _unescape(value: str) -> str:
    return (
        value.replace("&quot;", '"')
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def _attribute_names(dtd: DTD | None, label: str, arity: int) -> tuple[str, ...]:
    if dtd is not None:
        declared = dtd.attributes.get(label, ())
        if len(declared) == arity:
            return declared
    return tuple(f"a{i}" for i in range(arity))


def to_xml(node: TreeNode, dtd: DTD | None = None, indent: int = 2) -> str:
    """Render *node* as an XML document string."""

    def render(current: TreeNode, depth: int) -> list[str]:
        pad = " " * (indent * depth)
        names = _attribute_names(dtd, current.label, len(current.attrs))
        attrs = "".join(
            f' {name}="{_escape(str(value))}"'
            for name, value in zip(names, current.attrs)
        )
        if not current.children:
            return [f"{pad}<{current.label}{attrs}/>"]
        lines = [f"{pad}<{current.label}{attrs}>"]
        for child in current.children:
            lines.extend(render(child, depth + 1))
        lines.append(f"{pad}</{current.label}>")
        return lines

    return "\n".join(render(node, 0)) + "\n"


def int_coercion(value: str):
    """The default value coercion: digit strings become ints."""
    if re.fullmatch(r"-?\d+", value):
        return int(value)
    return value


_TOKEN_RE = re.compile(
    r"""
    (?P<decl><\?.*?\?>)
  | (?P<comment><!--.*?-->)
  | (?P<doctype><!DOCTYPE[^>]*>)
  | (?P<close></\s*(?P<close_name>[^\s>]+)\s*>)
  | (?P<open><\s*(?P<open_name>[^\s/>]+)(?P<attrs>(?:[^>"']|"[^"]*"|'[^']*')*?)(?P<selfclose>/)?\s*>)
  | (?P<text>[^<]+)
    """,
    re.VERBOSE | re.DOTALL,
)

_ATTR_RE = re.compile(r"""([^\s=]+)\s*=\s*("([^"]*)"|'([^']*)')""")


def from_xml(
    text: str,
    dtd: DTD | None = None,
    coerce: Callable[[str], object] | None = int_coercion,
) -> TreeNode:
    """Parse a plain XML document into a tree.

    With a *dtd*, attributes are ordered by the DTD's declaration (and
    unknown/missing attributes are an error); without one, attribute
    document order is kept.
    """
    if coerce is None:
        coerce = lambda value: value
    stack: list[tuple[str, list, list[TreeNode]]] = []
    root: TreeNode | None = None
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("malformed XML", text, position)
        position = match.end()
        kind = match.lastgroup if match.lastgroup else ""
        if match.group("decl") or match.group("comment") or match.group("doctype"):
            continue
        if match.group("text") is not None:
            if match.group("text").strip():
                raise ParseError(
                    "text content is not part of the tree model", text, match.start()
                )
            continue
        if match.group("open") is not None:
            label = match.group("open_name")
            raw_attrs = [
                (name, _unescape(whole[1:-1]))  # strip the quoting characters
                for name, whole, __, ___ in _ATTR_RE.findall(
                    match.group("attrs") or ""
                )
            ]
            attrs = _order_attributes(dtd, label, raw_attrs, text, match.start())
            values = tuple(coerce(value) for __, value in attrs)
            if match.group("selfclose"):
                node = TreeNode(label, values)
                if stack:
                    stack[-1][2].append(node)
                elif root is None:
                    root = node
                else:
                    raise ParseError("multiple root elements", text, match.start())
            else:
                stack.append((label, list(values), []))
            continue
        if match.group("close") is not None:
            if not stack:
                raise ParseError("unmatched closing tag", text, match.start())
            label, values, children = stack.pop()
            if label != match.group("close_name"):
                raise ParseError(
                    f"mismatched closing tag </{match.group('close_name')}> "
                    f"for <{label}>",
                    text,
                    match.start(),
                )
            node = TreeNode(label, tuple(values), children)
            if stack:
                stack[-1][2].append(node)
            elif root is None:
                root = node
            else:
                raise ParseError("multiple root elements", text, match.start())
    if stack:
        raise ParseError(f"unclosed element <{stack[-1][0]}>", text, len(text))
    if root is None:
        raise ParseError("empty document", text, 0)
    return root


def _order_attributes(
    dtd: DTD | None,
    label: str,
    raw_attrs: list[tuple[str, str]],
    text: str,
    position: int,
) -> list[tuple[str, str]]:
    if dtd is None:
        return raw_attrs
    declared = dtd.attributes.get(label)
    if declared is None:
        raise ParseError(f"unknown element type {label!r}", text, position)
    by_name = dict(raw_attrs)
    if set(by_name) != set(declared):
        raise ParseError(
            f"element {label!r} must carry attributes {list(declared)}, "
            f"got {sorted(by_name)}",
            text,
            position,
        )
    return [(name, by_name[name]) for name in declared]
