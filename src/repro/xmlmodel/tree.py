"""Unranked ordered trees with attribute data values.

A tree is represented by its root :class:`TreeNode`.  Nodes are immutable
(children are stored in a tuple) so they can be hashed structurally and used
as dictionary keys by the matching and automata machinery.  Build trees
bottom-up with the :func:`tree` convenience constructor::

    t = tree("r", children=[
            tree("a", attrs=(1,)),
            tree("a", attrs=(2,)),
        ])

The model follows Section 2 of the paper: each node has a label from the
element-type alphabet and an ordered tuple of attribute values; the sibling
order of children is significant (the ``->`` / ``->*`` axes navigate it).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator


class TreeNode:
    """One node of an unranked ordered tree; also stands for its subtree.

    Attributes
    ----------
    label:
        The element type (a string).
    attrs:
        Ordered tuple of attribute data values, matching the attribute
        order declared by the DTD for this element type.
    children:
        Tuple of child :class:`TreeNode` objects, in sibling order.
    """

    __slots__ = ("label", "attrs", "children", "_hash", "_engine")

    def __init__(
        self,
        label: str,
        attrs: Iterable[object] = (),
        children: Iterable["TreeNode"] = (),
    ):
        self.label = label
        self.attrs = tuple(attrs)
        self.children = tuple(children)
        for child in self.children:
            if not isinstance(child, TreeNode):
                raise TypeError(f"child must be a TreeNode, got {child!r}")
        self._hash: int | None = None
        # lazily populated by repro.patterns.matching.engine_for: the
        # pattern-evaluation engine (index + memo tables) of this subtree
        # when it has been queried as a root; safe because trees are
        # immutable, excluded from equality/hashing above

    # -- structural identity ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, TreeNode):
            return NotImplemented
        if (
            self.label != other.label
            or self.attrs != other.attrs
            or len(self.children) != len(other.children)
        ):
            return False
        return all(a == b for a, b in zip(self.children, other.children))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self.label, self.attrs, tuple(hash(c) for c in self.children))
            )
        return self._hash

    def __repr__(self) -> str:
        from repro.xmlmodel.parser import serialize_tree

        return f"TreeNode({serialize_tree(self)!r})"

    # -- pickling -------------------------------------------------------------
    # Trees cross process boundaries (engine.solve_many workers) and land
    # in the on-disk compilation cache; only the content travels — the
    # memoized hash and any attached pattern-evaluation engine are
    # per-process state and are rebuilt on demand after unpickling.

    def __getstate__(self):
        return (self.label, self.attrs, self.children)

    def __setstate__(self, state):
        self.label, self.attrs, self.children = state
        self._hash = None
        self._engine = None

    # -- measurements ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return 1 + sum(child.size for child in self.children)

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (a leaf has height 1)."""
        if not self.children:
            return 1
        return 1 + max(child.height for child in self.children)

    # -- navigation -----------------------------------------------------------

    def nodes(self) -> Iterator["TreeNode"]:
        """Yield every node of the subtree in document (pre-) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["TreeNode"]:
        """Yield every *proper* descendant of this node in document order."""
        for child in self.children:
            yield from child.nodes()

    def leaves(self) -> Iterator["TreeNode"]:
        """Yield the leaves of the subtree in document order."""
        for node in self.nodes():
            if not node.children:
                yield node

    # -- data values ------------------------------------------------------------

    def adom(self) -> frozenset:
        """The active domain: every data value on any attribute in the subtree."""
        values: set = set()
        for node in self.nodes():
            values.update(node.attrs)
        return frozenset(values)

    def labels(self) -> frozenset[str]:
        """The set of element types occurring in the subtree."""
        return frozenset(node.label for node in self.nodes())

    # -- functional updates -------------------------------------------------------

    def with_children(self, children: Iterable["TreeNode"]) -> "TreeNode":
        """Return a copy of this node with *children* replacing the old ones."""
        return TreeNode(self.label, self.attrs, children)

    def with_attrs(self, attrs: Iterable[object]) -> "TreeNode":
        """Return a copy of this node with *attrs* replacing the old tuple."""
        return TreeNode(self.label, attrs, self.children)

    def map_values(self, fn: Callable[[object], object]) -> "TreeNode":
        """Return a structurally identical tree with every data value mapped by *fn*."""
        return TreeNode(
            self.label,
            tuple(fn(v) for v in self.attrs),
            tuple(child.map_values(fn) for child in self.children),
        )


def tree(
    label: str,
    attrs: Iterable[object] = (),
    children: Iterable[TreeNode] = (),
) -> TreeNode:
    """Convenience constructor for :class:`TreeNode` (keyword-friendly)."""
    return TreeNode(label, attrs, children)


def parent_map(root: TreeNode) -> dict[int, TreeNode]:
    """Map ``id(node) -> parent node`` for every non-root node under *root*.

    Nodes are keyed by identity because equal subtrees may occur at several
    positions; identity distinguishes the occurrences within one tree object.
    """
    parents: dict[int, TreeNode] = {}
    for node in root.nodes():
        for child in node.children:
            parents[id(child)] = node
    return parents
