"""Compact text syntax for trees: ``label(v1, v2)[child1, child2]``.

The syntax mirrors the way the paper writes trees and patterns::

    r[prof("Ada")[teach[year(2009)[course("db101"), course("db102")]]]]

* attribute values are integers, quoted strings, or bare identifiers
  (parsed as strings);
* ``(...)`` may be omitted when a node has no attributes;
* ``[...]`` may be omitted when a node has no children.

:func:`parse_tree` and :func:`serialize_tree` are exact inverses on the
values representable in the syntax (strings and ints).
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.xmlmodel.tree import TreeNode

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-.]*)
  | (?P<punct>[()\[\],])
    """,
    re.VERBOSE,
)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-.]*\Z")


class _Tokenizer:
    """Shared tokenizer for the tree syntax (also reused by pattern parsing)."""

    def __init__(self, text: str, extra_punct: str = ""):
        self.text = text
        self.tokens: list[tuple[str, str, int]] = []
        self._tokenize(extra_punct)
        self.pos = 0

    def _tokenize(self, extra_punct: str) -> None:
        i = 0
        text = self.text
        while i < len(text):
            match = _TOKEN_RE.match(text, i)
            if match is None:
                raise ParseError("unexpected character", text, i)
            kind = match.lastgroup
            value = match.group()
            if kind != "ws":
                self.tokens.append((kind, value, i))
            i = match.end()

    def peek(self) -> tuple[str, str, int] | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        kind, got, offset = self.next()
        if got != value:
            raise ParseError(f"expected {value!r}, got {got!r}", self.text, offset)

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def _parse_value(tokenizer: _Tokenizer) -> object:
    kind, value, offset = tokenizer.next()
    if kind == "number":
        return int(value)
    if kind == "string":
        return value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if kind == "ident":
        return value
    raise ParseError(f"expected a value, got {value!r}", tokenizer.text, offset)


def _parse_node(tokenizer: _Tokenizer) -> TreeNode:
    kind, label, offset = tokenizer.next()
    if kind != "ident":
        raise ParseError(f"expected an element label, got {label!r}", tokenizer.text, offset)
    attrs: list[object] = []
    children: list[TreeNode] = []
    token = tokenizer.peek()
    if token is not None and token[1] == "(":
        tokenizer.next()
        if tokenizer.peek() is not None and tokenizer.peek()[1] != ")":
            attrs.append(_parse_value(tokenizer))
            while tokenizer.peek() is not None and tokenizer.peek()[1] == ",":
                tokenizer.next()
                attrs.append(_parse_value(tokenizer))
        tokenizer.expect(")")
        token = tokenizer.peek()
    if token is not None and token[1] == "[":
        tokenizer.next()
        if tokenizer.peek() is not None and tokenizer.peek()[1] != "]":
            children.append(_parse_node(tokenizer))
            while tokenizer.peek() is not None and tokenizer.peek()[1] == ",":
                tokenizer.next()
                children.append(_parse_node(tokenizer))
        tokenizer.expect("]")
    return TreeNode(label, attrs, children)


def parse_tree(text: str) -> TreeNode:
    """Parse a tree from the compact syntax; raise :class:`ParseError` on junk."""
    tokenizer = _Tokenizer(text)
    node = _parse_node(tokenizer)
    if not tokenizer.at_end():
        __, value, offset = tokenizer.next()
        raise ParseError(f"trailing input {value!r}", text, offset)
    return node


def _serialize_value(value: object) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    text = str(value)
    if _IDENT_RE.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def serialize_tree(node: TreeNode) -> str:
    """Render *node* back into the compact syntax parsed by :func:`parse_tree`."""
    parts = [node.label]
    if node.attrs:
        parts.append("(" + ", ".join(_serialize_value(v) for v in node.attrs) + ")")
    if node.children:
        parts.append("[" + ", ".join(serialize_tree(c) for c in node.children) + "]")
    return "".join(parts)
