"""DTDs: regular-expression productions plus attribute assignments.

Following Section 2 of the paper, a DTD over an alphabet of element types
with a distinguished root symbol consists of

* a mapping from element types to regular expressions over the other
  element types (the productions), and
* a mapping assigning each element type an ordered tuple of attributes.

This module provides conformance checking, the *nested-relational* and
*strictly nested-relational* classifications used throughout the paper's
tractability results, satisfiability (does any tree conform?), and
construction of minimal conforming trees.
"""

from __future__ import annotations

import heapq
import re
from typing import Callable, Iterable

from repro.errors import ConformanceError, NotInClassError, ParseError, XsmError
from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    EPSILON,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)
from repro.regex.nfa import NFA
from repro.regex.parser import parse_regex
from repro.xmlmodel.tree import TreeNode

#: Multiplicity markers for nested-relational productions.
MULTIPLICITIES = ("1", "?", "*", "+")


class DTD:
    """A DTD: root symbol, productions and attribute lists.

    Parameters
    ----------
    root:
        The distinguished root element type.
    productions:
        ``{label: Regex or production string}``.  Labels mentioned in some
        production but lacking one of their own implicitly get the empty
        production (no children), matching the paper's convention
        ("element types *course* and *student* have no subelements").
    attributes:
        ``{label: tuple of attribute names}``; order matters, since
        patterns bind attribute variables positionally.
    """

    def __init__(
        self,
        root: str,
        productions: dict[str, Regex | str],
        attributes: dict[str, Iterable[str]] | None = None,
    ):
        self.root = root
        parsed: dict[str, Regex] = {}
        for label, production in productions.items():
            if isinstance(production, str):
                production = parse_regex(production)
            parsed[label] = production
        labels = set(parsed)
        labels.add(root)
        for production in parsed.values():
            labels.update(production.symbols())
        for label in labels:
            parsed.setdefault(label, EPSILON)
        if root not in parsed:
            raise XsmError(f"root {root!r} has no production")
        for label, production in parsed.items():
            if root in production.symbols():
                raise XsmError(
                    f"the root symbol {root!r} may not occur in productions "
                    f"(it appears in the production of {label!r})"
                )
        self.productions: dict[str, Regex] = parsed
        self.attributes: dict[str, tuple[str, ...]] = {
            label: tuple(attributes.get(label, ())) if attributes else ()
            for label in parsed
        }
        if attributes:
            unknown = set(attributes) - set(parsed)
            if unknown:
                raise XsmError(f"attributes declared for unknown labels: {sorted(unknown)}")
        self._nfas: dict[str, NFA] = {}
        self._starred: frozenset[str] | None = None

    # -- basic views --------------------------------------------------------

    @property
    def labels(self) -> frozenset[str]:
        """All element types of the DTD."""
        return frozenset(self.productions)

    def arity(self, label: str) -> int:
        """Number of attributes of *label* (0 for unknown labels)."""
        return len(self.attributes.get(label, ()))

    def production_nfa(self, label: str) -> NFA:
        """The (cached) Glushkov NFA of the production of *label*."""
        nfa = self._nfas.get(label)
        if nfa is None:
            nfa = NFA.from_regex(self.productions[label])
            self._nfas[label] = nfa
        return nfa

    def __repr__(self) -> str:
        rows = []
        for label in sorted(self.productions, key=lambda l: (l != self.root, l)):
            attrs = self.attributes[label]
            head = label if not attrs else f"{label}({', '.join(attrs)})"
            rows.append(f"{head} -> {self.productions[label]}")
        return "DTD<" + "; ".join(rows) + ">"

    # -- pickling --------------------------------------------------------------
    # DTDs travel to engine.solve_many workers and into the on-disk
    # compilation cache; the compiled Glushkov NFAs and the memoized
    # content key are per-process accelerators, rebuilt on demand.

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_nfas"] = {}
        state.pop("_content_key", None)
        return state

    # -- conformance -----------------------------------------------------------

    def check_conformance(self, node: TreeNode) -> None:
        """Raise :class:`ConformanceError` if the tree does not conform."""
        if node.label != self.root:
            raise ConformanceError(
                f"root is labelled {node.label!r}, expected {self.root!r}"
            )
        for inner in node.nodes():
            if inner.label not in self.productions:
                raise ConformanceError(f"unknown element type {inner.label!r}")
            expected_arity = self.arity(inner.label)
            if len(inner.attrs) != expected_arity:
                raise ConformanceError(
                    f"{inner.label!r} carries {len(inner.attrs)} attribute values, "
                    f"DTD declares {expected_arity}"
                )
            word = tuple(child.label for child in inner.children)
            if not self.production_nfa(inner.label).accepts(word):
                raise ConformanceError(
                    f"children of {inner.label!r} read {word!r}, which does not "
                    f"match its production {self.productions[inner.label]}"
                )

    def conforms(self, node: TreeNode) -> bool:
        """True iff the tree conforms to this DTD (``T |= D``)."""
        try:
            self.check_conformance(node)
        except ConformanceError:
            return False
        return True

    # -- classifications -------------------------------------------------------

    def reachable_labels(self) -> frozenset[str]:
        """Element types reachable from the root through productions."""
        seen = {self.root}
        stack = [self.root]
        while stack:
            label = stack.pop()
            for symbol in self.productions[label].symbols():
                if symbol not in seen:
                    seen.add(symbol)
                    stack.append(symbol)
        return frozenset(seen)

    def is_recursive(self) -> bool:
        """True iff the label dependency graph has a cycle."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {label: WHITE for label in self.productions}

        def visit(label: str) -> bool:
            colour[label] = GREY
            for successor in self.productions[label].symbols():
                if colour[successor] == GREY:
                    return True
                if colour[successor] == WHITE and visit(successor):
                    return True
            colour[label] = BLACK
            return False

        return any(visit(label) for label in self.productions if colour[label] == WHITE)

    def nested_relational_children(self, label: str) -> list[tuple[str, str]]:
        """Decompose a nested-relational production into (child, multiplicity).

        Multiplicities are ``"1"``, ``"?"``, ``"*"`` or ``"+"``.  Raises
        :class:`NotInClassError` if the production is not of the
        nested-relational shape (distinct labels, one multiplicity each).
        """
        production = self.productions[label]
        if isinstance(production, Epsilon):
            return []
        parts = production.parts if isinstance(production, Concat) else (production,)
        children: list[tuple[str, str]] = []
        seen: set[str] = set()
        for part in parts:
            if isinstance(part, Symbol):
                child, multiplicity = part.symbol, "1"
            elif isinstance(part, Optional) and isinstance(part.inner, Symbol):
                child, multiplicity = part.inner.symbol, "?"
            elif isinstance(part, Star) and isinstance(part.inner, Symbol):
                child, multiplicity = part.inner.symbol, "*"
            elif isinstance(part, Plus) and isinstance(part.inner, Symbol):
                child, multiplicity = part.inner.symbol, "+"
            else:
                raise NotInClassError(
                    f"production of {label!r} is not nested-relational: {production}"
                )
            if child in seen:
                raise NotInClassError(
                    f"production of {label!r} repeats child {child!r}"
                )
            seen.add(child)
            children.append((child, multiplicity))
        return children

    def is_nested_relational(self) -> bool:
        """Nested-relational: productions ``l -> l1^m1 ... lk^mk`` and no recursion."""
        if self.is_recursive():
            return False
        for label in self.productions:
            try:
                self.nested_relational_children(label)
            except NotInClassError:
                return False
        return True

    def starred_labels(self) -> frozenset[str]:
        """Element types occurring under the scope of ``*`` or ``+`` somewhere."""
        if self._starred is None:
            starred: set[str] = set()

            def walk(expr: Regex, under_star: bool) -> None:
                if isinstance(expr, Symbol):
                    if under_star:
                        starred.add(expr.symbol)
                elif isinstance(expr, (Concat, Union)):
                    for part in expr.parts:
                        walk(part, under_star)
                elif isinstance(expr, (Star, Plus)):
                    walk(expr.inner, True)
                elif isinstance(expr, Optional):
                    walk(expr.inner, under_star)

            for production in self.productions.values():
                walk(production, False)
            self._starred = frozenset(starred)
        return self._starred

    def is_strictly_nested_relational(self) -> bool:
        """Nested-relational and only starred element types carry attributes."""
        if not self.is_nested_relational():
            return False
        starred = self.starred_labels()
        return all(
            not attrs or label in starred
            for label, attrs in self.attributes.items()
        )

    # -- satisfiability and minimal trees ----------------------------------------

    def label_costs(self) -> dict[str, float]:
        """Minimal subtree size per label (``inf`` if no finite tree exists).

        Computed as the least fixpoint of ``cost(l) = 1 + min over words w
        in L(P(l)) of sum(cost(a) for a in w)`` — a Dijkstra-style
        saturation that also works for recursive DTDs.
        """
        costs: dict[str, float] = {label: float("inf") for label in self.productions}
        changed = True
        while changed:
            changed = False
            for label in self.productions:
                word = self._cheapest_word(label, costs)
                if word is None:
                    continue
                new_cost = 1 + sum(costs[symbol] for symbol in word)
                if new_cost < costs[label]:
                    costs[label] = new_cost
                    changed = True
        return costs

    def _cheapest_word(
        self, label: str, costs: dict[str, float]
    ) -> tuple[str, ...] | None:
        """Cheapest word of the production of *label* under symbol *costs*.

        Dijkstra over the production NFA with edge weight ``costs[symbol]``;
        symbols of infinite cost are unusable.  Returns None when no
        accepting path uses only finite-cost symbols.
        """
        nfa = self.production_nfa(label)
        best: dict = {}
        counter = 0
        heap: list[tuple[float, int, object, tuple[str, ...]]] = []
        for state in nfa.initial:
            heapq.heappush(heap, (0.0, counter, state, ()))
            counter += 1
        while heap:
            cost, __, state, word = heapq.heappop(heap)
            if state in best and best[state] <= cost:
                continue
            best[state] = cost
            if state in nfa.accepting:
                return word
            for symbol, targets in nfa.transitions.get(state, {}).items():
                weight = costs.get(symbol, float("inf"))
                if weight == float("inf"):
                    continue
                for target in targets:
                    if target not in best or best[target] > cost + weight:
                        heapq.heappush(
                            heap, (cost + weight, counter, target, word + (symbol,))
                        )
                        counter += 1
        return None

    def is_satisfiable(self) -> bool:
        """True iff at least one tree conforms to this DTD."""
        return self.label_costs()[self.root] != float("inf")

    def minimal_tree(
        self, value_factory: Callable[[str, str], object] | None = None
    ) -> TreeNode:
        """A conforming tree of minimal size.

        *value_factory(label, attribute_name)* supplies attribute values
        (default: the constant 0, i.e. all data values equal — the choice
        that triggers the fewest stds; see ``consistency.cons_nested``).
        Raises :class:`XsmError` when the DTD is unsatisfiable.
        """
        costs = self.label_costs()
        if costs[self.root] == float("inf"):
            raise XsmError("DTD is unsatisfiable: no conforming tree exists")
        if value_factory is None:
            value_factory = lambda label, attribute: 0

        def build(label: str) -> TreeNode:
            word = self._cheapest_word(label, costs)
            assert word is not None
            attrs = tuple(
                value_factory(label, attribute) for attribute in self.attributes[label]
            )
            return TreeNode(label, attrs, tuple(build(symbol) for symbol in word))

        return build(self.root)


_PRODUCTION_RE = re.compile(
    r"^\s*(?P<label>[A-Za-z_][A-Za-z0-9_\-.]*)"
    r"(?:\s*\(\s*(?P<attrs>[^)]*)\))?"
    r"\s*(?:->|→)\s*(?P<rhs>.*)$"
)
_LEAF_RE = re.compile(
    r"^\s*(?P<label>[A-Za-z_][A-Za-z0-9_\-.]*)"
    r"(?:\s*\(\s*(?P<attrs>[^)]*)\))?\s*$"
)


def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse a DTD from its textual notation.

    One declaration per line (or separated by ``;``)::

        r -> prof*
        prof(name) -> teach, supervise
        teach -> year
        year(y) -> course, course
        supervise -> student*
        course(cn)
        student(sid)

    * attribute names go in parentheses after the element type,
    * a line without ``->`` declares a childless element type,
    * the first declared element type is the root unless *root* is given,
    * blank lines and ``#`` comments are ignored.
    """
    productions: dict[str, Regex] = {}
    attributes: dict[str, tuple[str, ...]] = {}
    first_label: str | None = None
    declarations = []
    for raw_line in text.replace(";", "\n").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if line:
            declarations.append(line)
    for declaration in declarations:
        match = _PRODUCTION_RE.match(declaration)
        if match:
            rhs = match.group("rhs").strip()
            production = parse_regex(rhs) if rhs else EPSILON
        else:
            match = _LEAF_RE.match(declaration)
            if not match:
                raise ParseError(f"cannot parse DTD declaration: {declaration!r}")
            production = EPSILON
        label = match.group("label")
        if label in productions:
            raise ParseError(f"duplicate production for {label!r}")
        productions[label] = production
        attrs_text = match.group("attrs")
        if attrs_text is not None:
            names = tuple(a.strip() for a in attrs_text.split(",") if a.strip())
            attributes[label] = names
        if first_label is None:
            first_label = label
    if first_label is None:
        raise ParseError("empty DTD text")
    return DTD(root or first_label, productions, attributes)
