"""Language operations on DTDs: inclusion, equivalence, disjointness.

Useful for schema evolution: "does every document of the old schema still
conform to the new one?" is DTD language inclusion, decided exactly by the
tree-automata layer (product of one DTD automaton with the negation of the
other — free, because the automata are deterministic).  Attribute values
are not part of tree languages; arity differences *are* detected (a tree
cannot conform to both DTDs if a shared label's arity differs, since its
attribute tuple has one length).
"""

from __future__ import annotations

from repro.automata.dtd_automaton import DTDAutomaton
from repro.automata.duta import ProductAutomaton, find_accepted
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def _arity_compatible(first: DTD, second: DTD) -> bool:
    return all(
        first.arity(label) == second.arity(label)
        for label in first.labels & second.labels
    )


def dtd_inclusion_counterexample(smaller: DTD, larger: DTD) -> TreeNode | None:
    """A tree conforming to *smaller* but not *larger*, or None if included.

    Structure only (labels and shape); when the DTDs disagree on a shared
    label's arity, any smaller-tree using that label is a counterexample,
    and the returned witness is decorated per *smaller*.
    """
    labels = smaller.labels | larger.labels
    automaton_small = DTDAutomaton(smaller, extra_labels=labels)
    automaton_large = DTDAutomaton(larger, extra_labels=labels)
    arity_ok = _arity_compatible(smaller, larger)

    def witness_state(state) -> bool:
        if not automaton_small.is_accepting(state[0]):
            return False
        if not automaton_large.is_accepting(state[1]):
            return True
        return not arity_ok  # structurally fine, but attribute tuples differ

    product = ProductAutomaton(
        [automaton_small, automaton_large], predicate=witness_state
    )
    found = find_accepted(
        product,
        prune=lambda state: not state[0][1],
        prune_horizontal=lambda label, h: automaton_small.horizontal_dead(h[0]),
    )
    if found is None:
        return None
    return automaton_small.decorate(found[1])


def dtd_included(smaller: DTD, larger: DTD) -> bool:
    """Does every tree conforming to *smaller* conform to *larger*?"""
    return dtd_inclusion_counterexample(smaller, larger) is None


def dtd_equivalent(first: DTD, second: DTD) -> bool:
    """Do the two DTDs accept exactly the same trees?"""
    return dtd_included(first, second) and dtd_included(second, first)


def dtd_common_tree(first: DTD, second: DTD) -> TreeNode | None:
    """A tree conforming to both DTDs, or None if their languages are disjoint."""
    if not _arity_compatible(first, second):
        return None
    labels = first.labels | second.labels
    automaton_a = DTDAutomaton(first, extra_labels=labels)
    automaton_b = DTDAutomaton(second, extra_labels=labels)
    product = ProductAutomaton([automaton_a, automaton_b])
    found = find_accepted(
        product,
        # a subtree failing either DTD can never sit inside a common tree
        prune=lambda state: not (state[0][1] and state[1][1]),
    )
    if found is None:
        return None
    return automaton_a.decorate(found[1])
