"""XML data model: unranked ordered trees with data values, and DTDs.

This package implements the paper's document model (Section 2): trees

    T = < U, child, next-sibling, lab, (rho_a)_{a in Att} >

as :class:`~repro.xmlmodel.tree.TreeNode` structures, a compact text syntax
for writing them down, and DTDs with regular-expression productions,
conformance checking and the nested-relational classification.
"""

from repro.xmlmodel.tree import TreeNode, tree
from repro.xmlmodel.parser import parse_tree, serialize_tree
from repro.xmlmodel.dtd import DTD, parse_dtd
from repro.xmlmodel.xml_io import from_xml, to_xml
from repro.xmlmodel.dtd_ops import (
    dtd_common_tree,
    dtd_equivalent,
    dtd_included,
    dtd_inclusion_counterexample,
)

__all__ = [
    "TreeNode",
    "tree",
    "parse_tree",
    "serialize_tree",
    "DTD",
    "parse_dtd",
    "from_xml",
    "to_xml",
    "dtd_included",
    "dtd_equivalent",
    "dtd_common_tree",
    "dtd_inclusion_counterexample",
]
