"""Post's Correspondence Problem: instances and a bounded solver.

PCP is the canonical undecidable problem behind Theorem 5.4.  An instance
is a list of tiles ``(u_i, v_i)`` over an alphabet; a solution is a
non-empty index sequence ``i_1 ... i_k`` with
``u_{i_1} ... u_{i_k} = v_{i_1} ... v_{i_k}``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class PCPInstance:
    """A PCP instance: tiles of (top word, bottom word)."""

    tiles: tuple[tuple[str, str], ...]

    @staticmethod
    def of(*tiles: tuple[str, str]) -> "PCPInstance":
        return PCPInstance(tuple(tiles))

    def check(self, sequence: list[int] | tuple[int, ...]) -> bool:
        """Is *sequence* a solution?"""
        if not sequence:
            return False
        top = "".join(self.tiles[i][0] for i in sequence)
        bottom = "".join(self.tiles[i][1] for i in sequence)
        return top == bottom

    def solve(self, max_length: int) -> tuple[int, ...] | None:
        """Breadth-first search for a solution of at most *max_length* tiles.

        The search state is the outstanding *overhang* (the suffix by
        which one word leads the other); termination for a fixed bound is
        guaranteed, but no bound works for every instance — that is PCP's
        undecidability, inherited by CONS(↓*, =).
        """
        # state: (overhang string, +1 if top leads / -1 if bottom leads)
        start_states: deque[tuple[tuple[int, ...], str, int]] = deque()
        for index, (top, bottom) in enumerate(self.tiles):
            if top.startswith(bottom):
                start_states.append(((index,), top[len(bottom):], 1))
            elif bottom.startswith(top):
                start_states.append(((index,), bottom[len(top):], -1))
        seen: set[tuple[str, int, int]] = set()
        queue = start_states
        while queue:
            sequence, overhang, leader = queue.popleft()
            if not overhang:
                return sequence
            if len(sequence) >= max_length:
                continue
            key = (overhang, leader, len(sequence))
            if key in seen:
                continue
            seen.add(key)
            for index, (top, bottom) in enumerate(self.tiles):
                if leader == 1:
                    lead, follow = overhang + top, bottom
                else:
                    lead, follow = overhang + bottom, top
                if lead.startswith(follow):
                    rest = lead[len(follow):]
                    queue.append((sequence + (index,), rest, leader))
                elif follow.startswith(lead):
                    rest = follow[len(lead):]
                    queue.append((sequence + (index,), rest, -leader))
        return None


#: A classic solvable instance: solution (0, 1, 2) or similar.
SOLVABLE_EXAMPLE = PCPInstance.of(("a", "baa"), ("ab", "aa"), ("bba", "bb"))

#: An instance with no solution (top words always longer).
UNSOLVABLE_EXAMPLE = PCPInstance.of(("ab", "a"), ("ba", "b"))
