"""Gadgets behind the undecidability results (Theorem 5.4).

Consistency becomes undecidable as soon as one navigation feature beyond
the child axis meets one data-comparison feature.  The proofs (in the
paper's full version) reduce from Post's Correspondence Problem; this
package ships the ingredients and demonstrates, through its tests, *why*
the frontier collapses:

* :class:`~repro.undecidability.pcp.PCPInstance` with a bounded solver;
* the *value-functionality gadget*: stds with ``=`` and an unsatisfiable
  target let a mapping forbid two nodes from sharing a key — positive
  patterns gain a limited but crucial form of negation;
* the *equality-chain gadget*: with ``↓*`` (or ``→``) plus ``=``, a
  mapping relates unboundedly distant positions through chained value
  equalities, which is how a reduction synchronizes the two PCP words;
* the *rigid-collector gadget*: a rigid (multiplicity-1) target position
  forces all exported values to coincide, giving a universal quantifier
  over data values.

A full machine-checked reduction is out of scope because the paper's text
only states the theorem (DESIGN.md, substitution 3); the bounded searches
of :mod:`repro.consistency.bounded` are the corresponding semi-decision
procedures, and ``benchmarks/bench_fig1_cons_data.py`` measures their
unbounded-growth behaviour on the gadget families.
"""

from repro.undecidability.pcp import PCPInstance
from repro.undecidability.gadgets import (
    equality_chain_gadget,
    rigid_collector_gadget,
    value_functionality_gadget,
)

__all__ = [
    "PCPInstance",
    "value_functionality_gadget",
    "equality_chain_gadget",
    "rigid_collector_gadget",
]
