"""The mapping gadgets that power the Theorem 5.4 reductions.

Each constructor returns a :class:`SchemaMapping` whose consistency
behaviour demonstrates one capability that data comparisons add to
patterns; the tests (``tests/test_undecidability.py``) verify the claimed
behaviour with the library's own decision procedures.
"""

from __future__ import annotations

from repro.mappings.mapping import SchemaMapping


def value_functionality_gadget() -> SchemaMapping:
    """Keys must determine values: ``=`` plus a failing target is negation.

    Source: a set of ``entry(key, value)`` pairs.  The std fires whenever
    two entries share a key but differ in value, demanding an impossible
    target — so the mapping's solutions are exactly the sources where
    ``key -> value`` is a function.  Positive patterns alone cannot say
    this; it is the first brick of every PCP reduction (tile/position
    tables must be functional).
    """
    return SchemaMapping.parse(
        "r -> entry*\nentry(key, value)",
        "t -> ok?",
        ["r[entry(k, v1), entry(k, v2)], v1 != v2 -> t[zzz]"],
    )


def equality_chain_gadget() -> SchemaMapping:
    """Chained equalities relate unboundedly distant positions (``↓*`` + ``=``).

    Source: a linked list ``cell(id, next)`` nested by depth.  The stds
    enforce: (1) every cell's ``next`` is realized by a cell strictly
    below it, and (2) ids never repeat at different depths.  Together they
    force every conforming source to encode one faithful, finite, acyclic
    chain — the backbone a PCP reduction uses to lay out a candidate
    solution word of unbounded length.  This is exactly the regime where
    witness sizes cannot be bounded (the mapping is consistent, but its
    witnesses can be required to be arbitrarily deep by strengthening the
    DTD), so only semi-decision procedures exist.
    """
    return SchemaMapping.parse(
        "r -> cell\ncell(id, next) -> cell?",
        "t -> ok?",
        [
            # distinct cells never share an id (ids are positions)
            "r//cell(i, n1)[//cell(i, n2)] -> t[zzz]",
            # a non-terminated link must be realized below
            "r//cell(i, n)[cell(m, k)], m != n -> t[zzz]",
        ],
    )


def rigid_collector_gadget() -> SchemaMapping:
    """A rigid target position universally quantifies over exported values.

    Every ``item`` value must equal the value of the single ``summary``
    node — so solutions exist exactly for sources whose items all agree.
    This is the counting/collection mechanism that makes ABSCONS(⇓) hard
    (Section 6) and that reductions use to compare whole value sets.
    """
    return SchemaMapping.parse(
        "r -> item*\nitem(v)",
        "t -> summary\nsummary(w)",
        ["r[item(v)] -> t[summary(v)]"],
    )
