"""Brute-force oracles for the decision problems of the paper.

Each oracle enumerates all conforming trees up to explicit size bounds over
an explicit finite value domain and decides by exhaustive search.  They are
*complete relative to their bounds*: tests pair them with instances whose
relevant witnesses provably fit.

Domain guidance (used throughout the test suite):

* consistency without data comparisons — a single value ``(0,)`` suffices
  (the paper's Theorem 5.2 observation: triggers are structural, and equal
  values satisfy every equality);
* with comparisons — take as many values as there are variables in the
  mapping, plus one.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import is_solution
from repro.mappings.skolem import is_skolem_solution
from repro.verification.enumeration import enumerate_trees
from repro.xmlmodel.tree import TreeNode


def oracle_has_solution(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    max_target_size: int,
    domain: Iterable[object],
) -> bool:
    """Does ``SOL_M(T)`` contain a tree of size <= bound over *domain*?"""
    for candidate in enumerate_trees(mapping.target_dtd, max_target_size, domain):
        if is_solution(mapping, source_tree, candidate, check_conformance=False):
            return True
    return False


def oracle_solutions(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    max_target_size: int,
    domain: Iterable[object],
) -> Iterator[TreeNode]:
    """All bounded solutions for *source_tree* (for inspection in tests)."""
    for candidate in enumerate_trees(mapping.target_dtd, max_target_size, domain):
        if is_solution(mapping, source_tree, candidate, check_conformance=False):
            yield candidate


def oracle_is_consistent(
    mapping: SchemaMapping,
    max_source_size: int,
    max_target_size: int,
    domain: Iterable[object],
) -> bool:
    """Is some bounded (T, T') pair in ``[[M]]``?"""
    domain = tuple(domain)
    for source in enumerate_trees(mapping.source_dtd, max_source_size, domain):
        if oracle_has_solution(mapping, source, max_target_size, domain):
            return True
    return False


def oracle_is_absolutely_consistent(
    mapping: SchemaMapping,
    max_source_size: int,
    max_target_size: int,
    source_domain: Iterable[object],
    extra_target_values: int = 2,
) -> bool:
    """Does every bounded source tree have a bounded solution?

    Target values may copy source values or be fresh nulls; the oracle
    offers the source domain plus *extra_target_values* fresh symbols.
    """
    source_domain = tuple(source_domain)
    target_domain = source_domain + tuple(
        f"#null{i}" for i in range(extra_target_values)
    )
    for source in enumerate_trees(mapping.source_dtd, max_source_size, source_domain):
        if not oracle_has_solution(mapping, source, max_target_size, target_domain):
            return False
    return True


def oracle_counterexample(
    mapping: SchemaMapping,
    max_source_size: int,
    max_target_size: int,
    source_domain: Iterable[object],
    extra_target_values: int = 2,
) -> TreeNode | None:
    """A bounded source tree with no bounded solution, if any."""
    source_domain = tuple(source_domain)
    target_domain = source_domain + tuple(
        f"#null{i}" for i in range(extra_target_values)
    )
    for source in enumerate_trees(mapping.source_dtd, max_source_size, source_domain):
        if not oracle_has_solution(mapping, source, max_target_size, target_domain):
            return source
    return None


def oracle_composition_contains(
    m12: SchemaMapping,
    m23: SchemaMapping,
    source_tree: TreeNode,
    final_tree: TreeNode,
    max_mid_size: int,
    domain: Iterable[object],
    skolem: bool = False,
) -> bool:
    """Is ``(T1, T3)`` in ``[[M12]] o [[M23]]`` with a bounded intermediate?"""
    check = is_skolem_solution if skolem else is_solution
    if not m12.source_dtd.conforms(source_tree):
        return False
    if not m23.target_dtd.conforms(final_tree):
        return False
    for middle in enumerate_trees(m12.target_dtd, max_mid_size, domain):
        if check(m12, source_tree, middle, check_conformance=False) and check(
            m23, middle, final_tree, check_conformance=False
        ):
            return True
    return False
