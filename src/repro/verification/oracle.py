"""Brute-force oracles for the decision problems of the paper.

Each oracle enumerates all conforming trees up to explicit size bounds over
an explicit finite value domain and decides by exhaustive search.  They are
*complete relative to their bounds*: tests pair them with instances whose
relevant witnesses provably fit.

The module also keeps the **naive pattern evaluator** — the memoized
nested-loop matcher that predates the query engine of
:mod:`repro.patterns.matching`.  It has no index, no hash joins and no
semi-join mode, which makes it the reference both for the randomized
equivalence tests and for the before/after series of
``benchmarks/bench_matching_engine.py``.

Domain guidance (used throughout the test suite):

* consistency without data comparisons — a single value ``(0,)`` suffices
  (the paper's Theorem 5.2 observation: triggers are structural, and equal
  values satisfy every equality);
* with comparisons — take as many values as there are variables in the
  mapping, plus one.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import XsmError
from repro.mappings.mapping import SchemaMapping
from repro.mappings.membership import SolutionChecker, is_solution
from repro.mappings.skolem import SkolemSolutionChecker, is_skolem_solution
from repro.patterns.ast import WILDCARD, Descendant, Pattern
from repro.values import Const, SkolemTerm, Var
from repro.verification.enumeration import enumerate_trees
from repro.xmlmodel.tree import TreeNode


# ---------------------------------------------------------------------------
# Naive pattern evaluation (the pre-engine matcher, kept as an oracle)
# ---------------------------------------------------------------------------


_MISSING = object()


def _naive_merge(a: frozenset, b: frozenset) -> frozenset | None:
    """Join two valuations; None on conflicting variable bindings."""
    if len(b) > len(a):
        a, b = b, a
    merged = dict(a)
    for var, value in b:
        existing = merged.get(var, _MISSING)
        if existing is _MISSING:
            merged[var] = value
        elif existing != value:
            return None
    return frozenset(merged.items())


def _naive_join(lhs: set, rhs: set) -> set:
    out: set = set()
    for a in lhs:
        for b in rhs:
            merged = _naive_merge(a, b)
            if merged is not None:
                out.add(merged)
    return out


class NaiveMatcher:
    """One evaluation run over a fixed tree; nested-loop joins, no index."""

    def __init__(self):
        # (id(node), pattern) -> valuations of the pattern matched AT node
        self._at: dict[tuple[int, Pattern], set] = {}
        # (id(node), pattern) -> valuations matched at node or any descendant
        self._below: dict[tuple[int, Pattern], set] = {}

    def match_at(self, node: TreeNode, pattern: Pattern) -> set:
        key = (id(node), pattern)
        cached = self._at.get(key)
        if cached is not None:
            return cached
        result = self._match_at(node, pattern)
        self._at[key] = result
        return result

    def _match_at(self, node: TreeNode, pattern: Pattern) -> set:
        base = self._match_node_formula(node, pattern)
        if base is None:
            return set()
        valuations = {base}
        for item in pattern.items:
            if isinstance(item, Descendant):
                item_valuations = self.match_strictly_below(node, item.pattern)
            else:
                item_valuations = self._match_sequence(node.children, item)
            if not item_valuations:
                return set()
            valuations = _naive_join(valuations, item_valuations)
            if not valuations:
                return set()
        return valuations

    def _match_node_formula(self, node: TreeNode, pattern: Pattern):
        if pattern.label != WILDCARD and pattern.label != node.label:
            return None
        if pattern.vars is None:
            return frozenset()
        if len(pattern.vars) != len(node.attrs):
            return None
        binding: dict[Var, object] = {}
        for term, value in zip(pattern.vars, node.attrs):
            if isinstance(term, Var):
                bound = binding.get(term, _MISSING)
                if bound is _MISSING:
                    binding[term] = value
                elif bound != value:
                    return None
            elif isinstance(term, Const):
                if term.value != value:
                    return None
            elif isinstance(term, SkolemTerm):
                raise XsmError(
                    "Skolem terms cannot be matched directly; instantiate the "
                    "pattern through repro.mappings.skolem first"
                )
            else:
                raise TypeError(f"unexpected term {term!r}")
        return frozenset(binding.items())

    def match_strictly_below(self, node: TreeNode, pattern: Pattern) -> set:
        result: set = set()
        for child in node.children:
            result |= self.match_at_or_below(child, pattern)
        return result

    def match_at_or_below(self, node: TreeNode, pattern: Pattern) -> set:
        key = (id(node), pattern)
        cached = self._below.get(key)
        if cached is not None:
            return cached
        result = set(self.match_at(node, pattern))
        for child in node.children:
            result |= self.match_at_or_below(child, pattern)
        self._below[key] = result
        return result

    def _match_sequence(self, children: tuple, sequence) -> set:
        result: set = set()
        for start in range(len(children)):
            result |= self._match_sequence_from(children, start, sequence, 0)
        return result

    def _match_sequence_from(self, children, position, sequence, index) -> set:
        here = self.match_at(children[position], sequence.elements[index])
        if not here or index == len(sequence.elements) - 1:
            return here
        connector = sequence.connectors[index]
        if connector == "next":
            if position + 1 >= len(children):
                return set()
            rest = self._match_sequence_from(children, position + 1, sequence, index + 1)
            return _naive_join(here, rest)
        result: set = set()
        for later in range(position + 1, len(children)):
            rest = self._match_sequence_from(children, later, sequence, index + 1)
            if rest:
                result |= _naive_join(here, rest)
        return result


def naive_find_matches(pattern: Pattern, root: TreeNode) -> list[dict[Var, object]]:
    """All valuations of ``(T, root) |= pattern`` — naive evaluator."""
    return [dict(v) for v in NaiveMatcher().match_at(root, pattern)]


def naive_find_matches_anywhere(
    pattern: Pattern, root: TreeNode
) -> list[dict[Var, object]]:
    """All valuations matching anywhere in the tree — naive evaluator."""
    return [dict(v) for v in NaiveMatcher().match_at_or_below(root, pattern)]


def naive_matches_at_root(pattern: Pattern, root: TreeNode) -> bool:
    """``T |= pi`` — naive evaluator."""
    return bool(NaiveMatcher().match_at(root, pattern))


def naive_evaluate(pattern: Pattern, root: TreeNode) -> set[tuple]:
    """The answer set ``pi(T)`` — naive evaluator."""
    variables = pattern.variables()
    return {
        tuple(valuation[var] for var in variables)
        for valuation in naive_find_matches(pattern, root)
    }


# ---------------------------------------------------------------------------
# Brute-force decision oracles
# ---------------------------------------------------------------------------


def oracle_has_solution(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    max_target_size: int,
    domain: Iterable[object],
) -> bool:
    """Does ``SOL_M(T)`` contain a tree of size <= bound over *domain*?"""
    checker = SolutionChecker(mapping, source_tree)
    for candidate in enumerate_trees(mapping.target_dtd, max_target_size, domain):
        if checker.is_solution_for(candidate, check_conformance=False):
            return True
    return False


def oracle_solutions(
    mapping: SchemaMapping,
    source_tree: TreeNode,
    max_target_size: int,
    domain: Iterable[object],
) -> Iterator[TreeNode]:
    """All bounded solutions for *source_tree* (for inspection in tests)."""
    checker = SolutionChecker(mapping, source_tree)
    for candidate in enumerate_trees(mapping.target_dtd, max_target_size, domain):
        if checker.is_solution_for(candidate, check_conformance=False):
            yield candidate


def oracle_is_consistent(
    mapping: SchemaMapping,
    max_source_size: int,
    max_target_size: int,
    domain: Iterable[object],
) -> bool:
    """Is some bounded (T, T') pair in ``[[M]]``?"""
    domain = tuple(domain)
    for source in enumerate_trees(mapping.source_dtd, max_source_size, domain):
        if oracle_has_solution(mapping, source, max_target_size, domain):
            return True
    return False


def oracle_is_absolutely_consistent(
    mapping: SchemaMapping,
    max_source_size: int,
    max_target_size: int,
    source_domain: Iterable[object],
    extra_target_values: int = 2,
) -> bool:
    """Does every bounded source tree have a bounded solution?

    Target values may copy source values or be fresh nulls; the oracle
    offers the source domain plus *extra_target_values* fresh symbols.
    """
    source_domain = tuple(source_domain)
    target_domain = source_domain + tuple(
        f"#null{i}" for i in range(extra_target_values)
    )
    for source in enumerate_trees(mapping.source_dtd, max_source_size, source_domain):
        if not oracle_has_solution(mapping, source, max_target_size, target_domain):
            return False
    return True


def oracle_counterexample(
    mapping: SchemaMapping,
    max_source_size: int,
    max_target_size: int,
    source_domain: Iterable[object],
    extra_target_values: int = 2,
) -> TreeNode | None:
    """A bounded source tree with no bounded solution, if any."""
    source_domain = tuple(source_domain)
    target_domain = source_domain + tuple(
        f"#null{i}" for i in range(extra_target_values)
    )
    for source in enumerate_trees(mapping.source_dtd, max_source_size, source_domain):
        if not oracle_has_solution(mapping, source, max_target_size, target_domain):
            return source
    return None


def oracle_composition_contains(
    m12: SchemaMapping,
    m23: SchemaMapping,
    source_tree: TreeNode,
    final_tree: TreeNode,
    max_mid_size: int,
    domain: Iterable[object],
    skolem: bool = False,
) -> bool:
    """Is ``(T1, T3)`` in ``[[M12]] o [[M23]]`` with a bounded intermediate?"""
    check = is_skolem_solution if skolem else is_solution
    if not m12.source_dtd.conforms(source_tree):
        return False
    if not m23.target_dtd.conforms(final_tree):
        return False
    # the source side of M12 is fixed: compute its obligations once
    checker12 = (SkolemSolutionChecker if skolem else SolutionChecker)(
        m12, source_tree
    )
    for middle in enumerate_trees(m12.target_dtd, max_mid_size, domain):
        if checker12.is_solution_for(middle, check_conformance=False) and check(
            m23, middle, final_tree, check_conformance=False
        ):
            return True
    return False
