"""Exhaustive enumeration of the trees conforming to a DTD.

Used by the brute-force oracles and the bounded decision procedures.  The
number of conforming trees grows explosively with the size bound and the
value domain, so callers keep both tiny; that is the point of an oracle.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


class LabelTreeEnumerator:
    """Enumerates label-only trees (no attribute values) of bounded size.

    Public so callers that need size-by-size control (the linter's
    bounded witness probe) can drive :meth:`trees_of` directly instead of
    going through :func:`enumerate_label_trees`.
    """

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self._memo: dict[tuple[str, int], tuple[TreeNode, ...]] = {}

    def trees_of(self, label: str, size: int) -> tuple[TreeNode, ...]:
        """All subtrees rooted at *label* with exactly *size* nodes."""
        if size < 1:
            return ()
        key = (label, size)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result: list[TreeNode] = []
        nfa = self.dtd.production_nfa(label)
        for word in nfa.words(size - 1):
            if not word:
                if size == 1:
                    result.append(TreeNode(label))
                continue
            if len(word) > size - 1:
                continue
            for sizes in _compositions(size - 1, len(word)):
                child_options = [
                    self.trees_of(child_label, child_size)
                    for child_label, child_size in zip(word, sizes)
                ]
                for children in itertools.product(*child_options):
                    result.append(TreeNode(label, (), children))
        frozen = tuple(result)
        self._memo[key] = frozen
        return frozen


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to write *total* as an ordered sum of *parts* positive ints."""
    if parts == 1:
        yield (total,)
        return
    for head in range(1, total - parts + 2):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest


def enumerate_label_trees(dtd: DTD, max_size: int) -> Iterator[TreeNode]:
    """All label-trees conforming to *dtd* with at most *max_size* nodes."""
    enumerator = LabelTreeEnumerator(dtd)
    for size in range(1, max_size + 1):
        yield from enumerator.trees_of(dtd.root, size)


def _attribute_slots(dtd: DTD, node: TreeNode) -> int:
    return sum(dtd.arity(n.label) for n in node.nodes())


def _decorate(dtd: DTD, node: TreeNode, values: list) -> TreeNode:
    """Pop values off *values* in document order and attach them."""
    attrs = tuple(values.pop() for __ in range(dtd.arity(node.label)))
    children = tuple(_decorate(dtd, child, values) for child in node.children)
    return TreeNode(node.label, attrs, children)


def enumerate_trees(
    dtd: DTD, max_size: int, domain: Iterable[object] = (0, 1)
) -> Iterator[TreeNode]:
    """All conforming trees up to *max_size* with attribute values in *domain*."""
    domain = tuple(domain)
    for skeleton in enumerate_label_trees(dtd, max_size):
        slots = _attribute_slots(dtd, skeleton)
        if slots == 0:
            yield skeleton
            continue
        for assignment in itertools.product(domain, repeat=slots):
            yield _decorate(dtd, skeleton, list(reversed(assignment)))


def count_trees(dtd: DTD, max_size: int, domain: Iterable[object] = (0, 1)) -> int:
    """How many conforming trees exist up to *max_size* over *domain*."""
    return sum(1 for __ in enumerate_trees(dtd, max_size, domain))
