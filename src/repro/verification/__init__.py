"""Brute-force machinery for cross-validating the real algorithms.

Everything in this package is deliberately naive: it enumerates trees
conforming to a DTD up to a size bound over a small data-value domain and
decides consistency / membership / composition questions by exhaustive
search.  The test suite compares every polished algorithm against these
oracles on small random instances — which is how a reproduction of a
theory paper earns trust in its decision procedures.
"""

from repro.verification.enumeration import (
    count_trees,
    enumerate_label_trees,
    enumerate_trees,
)
from repro.verification.oracle import (
    oracle_composition_contains,
    oracle_counterexample,
    oracle_has_solution,
    oracle_is_absolutely_consistent,
    oracle_is_consistent,
    oracle_solutions,
)

__all__ = [
    "enumerate_label_trees",
    "enumerate_trees",
    "count_trees",
    "oracle_has_solution",
    "oracle_solutions",
    "oracle_is_consistent",
    "oracle_is_absolutely_consistent",
    "oracle_counterexample",
    "oracle_composition_contains",
]
