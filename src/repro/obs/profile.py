"""Opt-in cProfile hooks around individual solves.

Tracing says *which* phase a solve spent its time in; profiling says
*which functions*.  Because a cProfile run slows the interpreter down
globally, it is gated behind the ``REPRO_PROFILE=1`` environment
variable and scoped per solve: :func:`maybe_profile` wraps one region,
writes a ``pstats`` dump per invocation into ``REPRO_PROFILE_DIR``
(default: the working directory) and prints a one-line pointer to
stderr.  With the variable unset the hook is a boolean check.

Worker processes of :func:`repro.engine.parallel.solve_many` inherit the
environment, so ``REPRO_PROFILE=1 repro check --jobs 4 ...`` leaves one
profile per worker-side solve, distinguishable by pid.
"""

from __future__ import annotations

import itertools
import os
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

PROFILE_ENV = "REPRO_PROFILE"
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

_counter = itertools.count()


def profiling_enabled() -> bool:
    """Is ``REPRO_PROFILE`` set to something truthy?"""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0", "false", "no")


def profile_dir() -> Path:
    return Path(os.environ.get(PROFILE_DIR_ENV, "") or ".")


@contextmanager
def maybe_profile(name: str) -> Iterator[object]:
    """Profile the block when ``REPRO_PROFILE=1``; otherwise do nothing.

    Yields the :class:`cProfile.Profile` (or None when disabled).  The
    dump lands at ``<REPRO_PROFILE_DIR>/<name>-<pid>-<n>.prof`` and is
    readable with ``python -m pstats`` or snakeviz-style viewers.
    """
    if not profiling_enabled():
        yield None
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name)
        path = profile_dir() / f"{safe}-{os.getpid()}-{next(_counter)}.prof"
        try:
            profile_dir().mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(path)
            print(f"[repro] profile written: {path}", file=sys.stderr)
        except OSError as error:  # profiling must never break a solve
            print(f"[repro] profile dump failed: {error}", file=sys.stderr)
