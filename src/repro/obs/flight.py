"""The request flight recorder: always-on, bounded-memory request traces.

``--trace`` answers "where did this run's time go" for one invocation
you planned to watch.  A serving daemon needs the converse: *after* a
request was slow, reconstruct where its time went — without restarting,
without reproducing.  The :class:`FlightRecorder` is that layer:

* every completed request lands in a thread-safe **ring buffer**
  (capacity ``REPRO_FLIGHT_CAPACITY``, default 256) as a *record*:
  trace ID, operation, status, latency, the budget/cache/memo deltas
  the request accrued, and its full serialized span tree (truncated at
  ``REPRO_FLIGHT_DEPTH`` so adversarially deep traces stay bounded);
* requests at or over the **slow threshold** (``REPRO_SLOW_MS``,
  default 1000) are additionally kept in a separate slow ring and —
  when a sink is configured (``REPRO_SLOW_LOG`` or ``repro serve
  --slow-log``) — appended as JSONL for post-mortems that outlive the
  daemon;
* the daemon exposes it read-only under ``GET /debug/requests`` (recent
  summaries, filterable), ``GET /debug/requests/<trace_id>`` (one full
  trace) and ``GET /debug/slow``; ``repro top`` renders the live view.

Records are plain JSON-shaped dicts throughout, so the ring is the
single source for the HTTP endpoints, the slow-log sink and the tests.
Memory stays bounded by construction: ``capacity`` full records,
``capacity`` slow summaries, one truncated span tree each.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Iterable

from repro.obs.metrics import REGISTRY

#: Ring capacity (completed requests kept in memory).
CAPACITY_ENV = "REPRO_FLIGHT_CAPACITY"
DEFAULT_CAPACITY = 256

#: Slow-request threshold in milliseconds.
SLOW_MS_ENV = "REPRO_SLOW_MS"
DEFAULT_SLOW_MS = 1000.0

#: Default JSONL sink for slow requests (no sink when unset).
SLOW_LOG_ENV = "REPRO_SLOW_LOG"

#: Span-tree truncation depth for stored traces.
DEPTH_ENV = "REPRO_FLIGHT_DEPTH"
DEFAULT_TRACE_DEPTH = 32

_RECORDED = REGISTRY.counter(
    "repro_flight_recorded_total",
    "Requests recorded by the flight recorder, by operation",
    ("op",),
)
_SLOW = REGISTRY.counter(
    "repro_slow_requests_total",
    "Requests at or over the slow threshold, by operation",
    ("op",),
)


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    return int(_env_float(name, float(default)))


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace ID (random; unique per request).

    ``os.urandom`` directly — this runs once per served request, and the
    ``uuid4`` wrapper costs several times as much for the same entropy.
    """
    return os.urandom(8).hex()


def _depth(tree: dict) -> int:
    """Maximum nesting depth of a serialized span tree (root = 0)."""
    deepest = 0
    stack = [(tree, 0)]
    while stack:
        node, level = stack.pop()
        if level > deepest:
            deepest = level
        children = node.get("children")
        if children:
            stack.extend((child, level + 1) for child in children)
    return deepest


def truncate_trace(tree: dict, max_depth: int = DEFAULT_TRACE_DEPTH) -> dict:
    """The span tree cut off below *max_depth*.

    The common case — a tree already within the bound — returns *tree*
    unchanged (records are treated as immutable, so aliasing is safe and
    the per-request fast path stays a single cheap walk).  A deeper tree
    is copied: nodes at the cut keep their own timing but drop their
    subtree, gaining ``truncated: True`` and a ``dropped_spans`` count —
    a pathological recursion shows up as an honest marker, not an
    unbounded record.
    """
    if _depth(tree) <= max_depth:
        return tree

    def count_spans(node: dict) -> int:
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            total += 1
            stack.extend(current.get("children", ()))
        return total

    def copy(node: dict, depth: int) -> dict:
        out = {key: value for key, value in node.items() if key != "children"}
        children = node.get("children", ())
        if depth >= max_depth and children:
            out["children"] = []
            out["truncated"] = True
            out["dropped_spans"] = sum(count_spans(child) for child in children)
        else:
            out["children"] = [copy(child, depth + 1) for child in children]
        return out

    return copy(tree, 0)


def _summary(record: dict) -> dict:
    """The list-view rendering of a record: everything but the span tree."""
    return {key: value for key, value in record.items() if key != "trace"}


class FlightRecorder:
    """Bounded, thread-safe recorder of completed request traces.

    One recorder per :class:`~repro.service.EngineSession`; handlers
    call :meth:`record` once per completed request.  All reads
    (:meth:`requests`, :meth:`lookup`, :meth:`slow`, :meth:`stats`) are
    snapshot-consistent under the same lock and never mutate state —
    the substrate for the daemon's auth-free, read-only ``/debug``
    routes.

    ``enabled = False`` turns :meth:`record` into a no-op *and* tells
    the service layer to skip span collection entirely — the recorder-off
    baseline the overhead guard in ``benchmarks/bench_obs.py`` compares
    against.
    """

    def __init__(
        self,
        capacity: int | None = None,
        slow_ms: float | None = None,
        slow_log: str | os.PathLike | None = None,
        max_depth: int | None = None,
        enabled: bool = True,
    ):
        self.capacity = max(
            1, capacity if capacity is not None
            else _env_int(CAPACITY_ENV, DEFAULT_CAPACITY)
        )
        self.slow_ms = (
            slow_ms if slow_ms is not None
            else _env_float(SLOW_MS_ENV, DEFAULT_SLOW_MS)
        )
        raw_sink = (
            os.fspath(slow_log) if slow_log is not None
            else os.environ.get(SLOW_LOG_ENV) or None
        )
        self.slow_log_path = raw_sink
        self.max_depth = max(
            1, max_depth if max_depth is not None
            else _env_int(DEPTH_ENV, DEFAULT_TRACE_DEPTH)
        )
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque()
        self._by_id: dict[str, dict] = {}
        self._slow: deque[dict] = deque(maxlen=self.capacity)
        self.recorded = 0
        self.evicted = 0
        self.slow_seen = 0

    # -- writing --------------------------------------------------------------

    def record(
        self,
        *,
        trace_id: str,
        op: str,
        status: str = "ok",
        duration: float = 0.0,
        trace: dict | None = None,
        started: float | None = None,
        **fields: Any,
    ) -> dict | None:
        """Push one completed request; returns the stored record.

        *trace* is the serialized span tree (already plain data); it is
        truncated to the recorder's depth bound before storage.  Extra
        keyword *fields* (request ID, exit code, cache/memo deltas,
        verdict summaries) are stored verbatim — they must be
        JSON-shaped.
        """
        if not self.enabled:
            return None
        record: dict[str, Any] = {
            "trace_id": str(trace_id),
            "op": op,
            "status": status,
            "duration": duration,
            "duration_ms": duration * 1000.0,
            "started": time.time() - duration if started is None else started,
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        record["trace"] = (
            truncate_trace(trace, self.max_depth) if trace is not None else None
        )
        slow = record["duration_ms"] >= self.slow_ms
        record["slow"] = slow
        with self._lock:
            self._ring.append(record)
            self._by_id[record["trace_id"]] = record
            self.recorded += 1
            while len(self._ring) > self.capacity:
                evicted = self._ring.popleft()
                self.evicted += 1
                # only drop the index entry if it still points at the
                # evicted record (a reused trace ID keeps the newest)
                if self._by_id.get(evicted["trace_id"]) is evicted:
                    del self._by_id[evicted["trace_id"]]
            if slow:
                self._slow.append(_summary(record))
                self.slow_seen += 1
        _RECORDED.labels(op=op).inc()
        if slow:
            _SLOW.labels(op=op).inc()
            self._sink_slow(record)
        return record

    def _sink_slow(self, record: dict) -> None:
        """Append the slow record's summary to the JSONL sink, if any.

        A sink failure (disk full, permissions) is swallowed: the
        recorder keeps its in-memory rings, and losing a post-mortem
        line must never fail the request that produced it.
        """
        if not self.slow_log_path:
            return
        line = json.dumps(_summary(record), sort_keys=True, default=repr)
        try:
            with self._lock:
                with open(self.slow_log_path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")
        except OSError:
            pass

    # -- reading (all snapshot-consistent, never mutating) ---------------------

    def requests(
        self,
        op: str | None = None,
        status: str | None = None,
        min_ms: float | None = None,
        limit: int | None = 50,
    ) -> list[dict]:
        """Recent request summaries, newest first, optionally filtered
        by operation, status and minimum latency (milliseconds)."""
        with self._lock:
            records: Iterable[dict] = reversed(self._ring)
            out: list[dict] = []
            for record in records:
                if op is not None and record["op"] != op:
                    continue
                if status is not None and record["status"] != status:
                    continue
                if min_ms is not None and record["duration_ms"] < min_ms:
                    continue
                out.append(_summary(record))
                if limit is not None and len(out) >= limit:
                    break
            return out

    def lookup(self, trace_id: str) -> dict | None:
        """The full record (span tree included) for *trace_id*, or
        ``None`` when it was never recorded or has been evicted."""
        with self._lock:
            return self._by_id.get(str(trace_id))

    def slow(self, limit: int | None = 50) -> list[dict]:
        """Recent slow-request summaries, newest first."""
        with self._lock:
            out = list(reversed(self._slow))
        return out if limit is None else out[:limit]

    def stats(self) -> dict:
        """Recorder health for ``/stats`` and ``repro top``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "recorded": self.recorded,
                "evicted": self.evicted,
                "slow_threshold_ms": self.slow_ms,
                "slow_seen": self.slow_seen,
                "slow_buffered": len(self._slow),
                "slow_log": self.slow_log_path,
                "trace_depth": self.max_depth,
            }
