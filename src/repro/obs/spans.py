"""Hierarchical trace spans: where a solve's time and budget actually went.

A *span* is one named, timed region of work — a solve, a compilation, a
certify pass, a worker chunk.  Spans nest: whatever is opened while a
span is live becomes its child, so one solve produces a tree like::

    solve(problem=ConsistencyProblem, algorithm=cons-automata)
      compile(kind=closure)
      compile(kind=dtd-automaton)
      compile(kind=achievable)

Each span records monotonic wall-clock timing (``time.perf_counter``),
the budget charges (:attr:`Span.expansions`) and the compilation-cache
hit/miss deltas accrued while it was open, read from the ambient
:class:`~repro.engine.budget.ExecutionContext` when one is active.

Tracing is **opt-in and cheap when off**: :func:`trace` is a no-op
(returning the shared :data:`NOOP_SPAN`) unless a collector is installed
with :func:`collecting`.  The collector stack is thread-local, so
concurrent threads trace independently.

Spans serialize to plain dicts (:meth:`Span.to_dict`) that pickle across
process boundaries — :func:`repro.engine.parallel.solve_many` workers
ship their span trees back with each result and the driver stitches them
into one cross-process trace.  :func:`jsonl_lines` flattens a span tree
into one JSON object per span (``id`` / ``parent`` links) for the CLI's
``--trace`` output.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator

#: Cache-stat keys whose per-span deltas are worth recording.
_CACHE_KEYS = ("hits", "misses", "evictions", "disk_hits", "disk_stores")


def _ambient_context():
    """The active solver context, or None (lazy import: obs must not
    depend on the engine at module level — the engine imports obs)."""
    from repro.engine.budget import current_context

    return current_context()


class Span:
    """One timed region; mutable while open, plain data once closed."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "wall",
        "duration",
        "expansions",
        "cache",
        "children",
        "truncated",
        "_expansions_before",
        "_cache_before",
    )

    is_noop = False

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        tags = _STATE.tags
        if tags:
            self.attrs = dict(tags)
            if attrs:
                self.attrs.update(attrs)
        else:
            self.attrs = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.wall = time.time()
        self.duration = 0.0
        self.expansions = 0
        self.cache: dict[str, int] = {}
        self.children: list = []  # Span objects or adopted plain dicts
        self.truncated = False
        context = _ambient_context()
        if context is not None:
            self._expansions_before = context.expansions
            self._cache_before = context.cache.stats()
        else:
            self._expansions_before = None
            self._cache_before = None

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered after the span opened (e.g. the
        routing decision made mid-solve)."""
        self.attrs.update(attrs)

    def adopt(self, child: dict) -> None:
        """Attach an already-serialized span tree (a worker's) as a child."""
        self.children.append(child)

    def close(self) -> None:
        self.duration = time.perf_counter() - self.start
        context = _ambient_context()
        if context is not None and self._expansions_before is not None:
            self.expansions = context.expansions - self._expansions_before
            after = context.cache.stats()
            before = self._cache_before
            self.cache = {
                key: after.get(key, 0) - before.get(key, 0)
                for key in _CACHE_KEYS
                if after.get(key, 0) != before.get(key, 0)
            }

    def to_dict(self) -> dict:
        """A plain, picklable, JSON-able rendering of the span tree."""
        record = {
            "name": self.name,
            "attrs": self.attrs,
            "wall": self.wall,
            "duration": self.duration,
            "expansions": self.expansions,
            "cache": self.cache,
            "children": [
                child.to_dict() if isinstance(child, Span) else child
                for child in self.children
            ],
        }
        if self.truncated:
            record["truncated"] = True
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.6f}s, "
            f"{len(self.children)} children)"
        )


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()
    is_noop = True
    name = ""
    duration = 0.0
    truncated = False

    def annotate(self, **attrs) -> None:
        pass

    def adopt(self, child: dict) -> None:
        pass

    def to_dict(self) -> dict | None:  # pragma: no cover - never persisted
        return None


NOOP_SPAN = _NoopSpan()


class TraceTree:
    """The root of one collected trace, with traversal helpers.

    :meth:`on_close` registers completion hooks — callables fired with
    the tree once the root span has closed (timings final).  This is how
    the flight recorder sees every request trace without the service
    layer threading callbacks through handler signatures.  A hook that
    raises is swallowed: observability must never fail the request it
    observes.
    """

    def __init__(self, root: Span):
        self.root = root
        self._close_hooks: list = []

    def on_close(self, hook) -> None:
        """Call ``hook(tree)`` after the root span closes."""
        self._close_hooks.append(hook)

    def spans(self) -> Iterator[Span]:
        """Preorder traversal of the *live* (non-adopted) spans."""
        stack = [self.root]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(
                child for child in reversed(span.children)
                if isinstance(child, Span)
            )

    def total_seconds(self) -> float:
        return self.root.duration

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def jsonl(self) -> str:
        return jsonl(self.to_dict())


class _CollectorState(threading.local):
    def __init__(self):
        self.stack: list[Span] = []
        self.tags: dict = {}


_STATE = _CollectorState()


def tracing_active() -> bool:
    """Is a collector installed on this thread?"""
    return bool(_STATE.stack)


def current_tags() -> dict:
    """The ambient span tags bound on this thread (empty outside any
    :func:`bind_tags` block)."""
    return dict(_STATE.tags)


def ambient_tag(name: str, default=None):
    """One ambient tag without copying the tag dict (hot-path friendly:
    this is how ``engine.solve`` reads the trace ID for its latency
    exemplar on every solve)."""
    return _STATE.tags.get(name, default)


@contextmanager
def bind_tags(**tags) -> Iterator[None]:
    """Stamp *tags* onto every span opened on this thread while active.

    This is how a request ID travels end-to-end: the service layer binds
    ``request=<id>`` around a handler, and every span the handler opens —
    solves, compiles, certify passes — carries the tag without any
    signature widening.  ``solve_many`` re-binds the driver's tags inside
    its worker processes, so cross-process chunk and solve spans carry
    them too.  Bindings nest; inner bindings win on key collisions and
    are restored on exit.
    """
    previous = _STATE.tags
    merged = dict(previous)
    merged.update(tags)
    _STATE.tags = merged
    try:
        yield
    finally:
        _STATE.tags = previous


@contextmanager
def collecting(name: str, **attrs) -> Iterator[TraceTree]:
    """Install a trace collector; yields the :class:`TraceTree` being built.

    The tree's root span covers the whole ``with`` block; every
    :func:`trace` opened inside (on this thread) nests under it.  The
    root's timing is final only after the block exits.

    Collectors nest: inside an active collector, the new root also
    becomes a child span of the enclosing one, so an outer ``--trace``
    sees the whole request subtree while the inner collector (the
    always-on flight recorder's) still gets its own tree.  Spans are
    shared, not copied — each is recorded once.
    """
    root = Span(name, attrs)
    tree = TraceTree(root)
    stack = _STATE.stack
    if stack:
        stack[-1].children.append(root)
    _STATE.stack.append(root)
    try:
        yield tree
    finally:
        _STATE.stack.pop()
        root.close()
        for hook in tree._close_hooks:
            try:
                hook(tree)
            except Exception:  # a broken observer must not fail the work
                pass


@contextmanager
def trace(name: str, **attrs) -> Iterator[Span]:
    """Record one span under the current collector (no-op when none)."""
    stack = _STATE.stack
    if not stack:
        yield NOOP_SPAN
        return
    span = Span(name, attrs)
    parent = stack[-1]
    parent.children.append(span)
    stack.append(span)
    try:
        yield span
    finally:
        stack.pop()
        span.close()


def current_span() -> Span | _NoopSpan:
    """The innermost open span, or the no-op span outside any collector."""
    return _STATE.stack[-1] if _STATE.stack else NOOP_SPAN


# ---------------------------------------------------------------------------
# serialized-tree helpers (work on to_dict() output, incl. adopted children)
# ---------------------------------------------------------------------------


def walk(tree: dict) -> Iterator[dict]:
    """Preorder traversal of a serialized span tree."""
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.get("children", ())))


def span_breakdown(tree: dict) -> dict[str, float]:
    """Total seconds per span name over a serialized tree.

    Durations are inclusive of children, so the breakdown answers "how
    much wall-clock had a span of this name open", not a partition.
    """
    totals: dict[str, float] = {}
    for node in walk(tree):
        name = node.get("name", "?")
        totals[name] = totals.get(name, 0.0) + float(node.get("duration", 0.0))
    return totals


def jsonl(tree: dict) -> str:
    """Flatten a serialized span tree to JSONL: one span per line.

    Lines carry ``id`` (preorder) and ``parent`` (-1 for the root) so the
    hierarchy survives the flattening; ``children`` is dropped.
    """
    lines: list[str] = []
    stack: list[tuple[dict, int]] = [(tree, -1)]
    next_id = 0
    while stack:
        node, parent = stack.pop()
        node_id = next_id
        next_id += 1
        record = {key: value for key, value in node.items() if key != "children"}
        record["id"] = node_id
        record["parent"] = parent
        lines.append(json.dumps(record, sort_keys=True, default=repr))
        for child in reversed(node.get("children", ())):
            stack.append((child, node_id))
    return "\n".join(lines) + "\n"


def truncated_span(name: str, duration: float = 0.0, **attrs) -> dict:
    """A serialized placeholder span for work whose real trace was lost
    (a crashed or hung worker) — observability must not drop silently."""
    return {
        "name": name,
        "attrs": attrs,
        "wall": time.time(),
        "duration": duration,
        "expansions": 0,
        "cache": {},
        "children": [],
        "truncated": True,
    }
