"""A zero-dependency metrics registry: counters, gauges, histograms.

The process-global :data:`REGISTRY` is the single home of the library's
operational series (naming scheme ``repro_*``): cache hits and misses by
artifact kind, per-algorithm solve latencies, queue waits, worker
failures.  Metric *families* carry label names; ``family.labels(k=v)``
returns the child holding one labeled series, and children may be
pre-bound at module import time so hot paths pay one lock plus one add.

Three things make the registry fit the solver's execution model:

* **thread safety** — every mutation takes the registry lock, so counts
  are exact under concurrent threads (pinned by tests);
* **process mergeability** — :meth:`MetricsRegistry.snapshot` renders
  the whole registry as plain picklable data, :func:`diff_snapshots`
  subtracts two snapshots, and :meth:`MetricsRegistry.merge` folds a
  delta back in (creating unknown families on the fly).  This is how
  ``solve_many`` workers report: each chunk returns a snapshot delta and
  the driver merges it, so one registry describes a multi-process batch;
* **exporters** — :meth:`render_prometheus` emits the Prometheus text
  exposition format (validated by :func:`parse_prometheus`, which the
  ``repro stats`` self-check and the tests use) and :meth:`render_json`
  a JSON document with the same content.

``REGISTRY.enabled = False`` turns every mutation into a near-free
boolean check — the no-obs baseline the overhead guard benchmarks
against.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator

#: Default histogram buckets (seconds): micro-solves to stuck-solve range.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Override the default bucket boundaries (comma- or space-separated
#: floats, seconds); malformed values raise at first histogram creation
#: rather than silently producing unmergeable series.
BUCKETS_ENV = "REPRO_HIST_BUCKETS"


def default_buckets() -> tuple[float, ...]:
    """The bucket boundaries new histograms get when none are passed.

    Read from ``REPRO_HIST_BUCKETS`` when set — every process of a
    deployment (driver and ``solve_many`` workers inherit the
    environment) then agrees on the boundaries, which :meth:`merge`
    enforces.
    """
    raw = os.environ.get(BUCKETS_ENV, "").strip()
    if not raw:
        return DEFAULT_BUCKETS
    try:
        bounds = tuple(sorted({float(part) for part in raw.replace(",", " ").split()}))
    except ValueError as exc:
        raise MetricError(f"{BUCKETS_ENV}={raw!r} is not a float list") from exc
    if not bounds:
        return DEFAULT_BUCKETS
    return bounds

_KINDS = ("counter", "gauge", "histogram")


class MetricError(ValueError):
    """Inconsistent registration (kind/label mismatch) or bad label use."""


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Child:
    """One labeled series of a family; all mutation under the family lock."""

    __slots__ = ("_family", "value", "bucket_counts", "sum", "count",
                 "exemplars")

    def __init__(self, family: "_Family"):
        self._family = family
        self.value = 0.0
        if family.kind == "histogram":
            self.bucket_counts = [0] * len(family.buckets)
            self.sum = 0.0
            self.count = 0
            #: per-bucket ``(value, trace_id, wall)`` of the worst (largest)
            #: observation seen carrying an exemplar, or None
            self.exemplars: list[tuple[float, str, float] | None] = (
                [None] * len(family.buckets)
            )

    def inc(self, amount: float = 1.0) -> None:
        registry = self._family.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        registry = self._family.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value = value

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation; *exemplar* attaches a trace ID to the
        bucket the value lands in (kept when it is the bucket's worst —
        largest — exemplared observation so far), surfacing "which
        request produced this latency" in the exporters."""
        registry = self._family.registry
        if not registry.enabled:
            return
        family = self._family
        with registry._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(family.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    if exemplar is not None:
                        slot = self.exemplars[i]
                        if slot is None or value >= slot[0]:
                            self.exemplars[i] = (value, str(exemplar), time.time())
                    break


class _Family:
    """One named metric with its labeled children."""

    __slots__ = ("registry", "name", "kind", "help", "labelnames", "buckets",
                 "children")

    def __init__(self, registry, name, kind, help_text, labelnames, buckets=None):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        if kind == "histogram":
            buckets = tuple(buckets) if buckets else default_buckets()
            if buckets[-1] != math.inf:
                buckets = buckets + (math.inf,)
            self.buckets = buckets
        else:
            self.buckets = ()
        self.children: dict[tuple, _Child] = {}

    def labels(self, **labelvalues) -> _Child:
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self.registry._lock:
            child = self.children.get(key)
            if child is None:
                child = self.children[key] = _Child(self)
            return child

    # label-free convenience: family acts as its own single child
    def _solo(self) -> _Child:
        if self.labelnames:
            raise MetricError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self._solo().observe(value, exemplar)


class MetricsRegistry:
    """A set of metric families; see the module docstring."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self.enabled = enabled

    # -- registration -------------------------------------------------------

    def _family(self, name, kind, help_text, labelnames, buckets=None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, kind, help_text, labelnames, buckets)
                self._families[name] = family
                return family
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name} already registered as {family.kind}"
                    f"{family.labelnames}, requested {kind}{tuple(labelnames)}"
                )
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> _Family:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> _Family:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] | None = None) -> _Family:
        return self._family(name, "histogram", help_text, labelnames, buckets)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as plain picklable data."""
        with self._lock:
            out: dict = {}
            for name, family in self._families.items():
                series: dict = {}
                for key, child in family.children.items():
                    if family.kind == "histogram":
                        series[key] = {
                            "buckets": list(child.bucket_counts),
                            "sum": child.sum,
                            "count": child.count,
                            "exemplars": [
                                list(e) if e else None for e in child.exemplars
                            ],
                        }
                    else:
                        series[key] = child.value
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "buckets": list(family.buckets),
                    "series": series,
                }
            return out

    def merge(self, delta: dict) -> None:
        """Fold a snapshot (or snapshot delta) into this registry.

        Counters and histograms add; gauges take the incoming value;
        histogram bucket exemplars keep the worst (largest) observation.
        Families absent here are created from the delta's definitions —
        a worker process may register series the driver never touched.

        Histogram bucket boundaries must match exactly: adding counts
        bucket-by-bucket across different boundaries would silently
        misattribute observations, so a mismatch raises
        :class:`ValueError` instead (set ``REPRO_HIST_BUCKETS``
        consistently across processes).
        """
        for name, data in delta.items():
            family = self._family(
                name, data["kind"], data.get("help", ""),
                data.get("labelnames", ()),
                data.get("buckets") or None,
            )
            if family.kind == "histogram":
                incoming = data.get("buckets")
                if incoming:
                    bounds = tuple(float(b) for b in incoming)
                    if bounds and bounds[-1] != math.inf:
                        bounds += (math.inf,)
                    if bounds != family.buckets:
                        raise ValueError(
                            f"cannot merge histogram {name}: incoming bucket "
                            f"boundaries {bounds} do not match the registered "
                            f"{family.buckets} — counts would be silently "
                            "misattributed"
                        )
            for key, value in data.get("series", {}).items():
                key = tuple(key)
                with self._lock:
                    child = family.children.get(key)
                    if child is None:
                        child = family.children[key] = _Child(family)
                if family.kind == "histogram":
                    with self._lock:
                        counts = value.get("buckets", ())
                        if len(counts) > len(child.bucket_counts):
                            raise ValueError(
                                f"cannot merge histogram {name}: delta carries "
                                f"{len(counts)} buckets for "
                                f"{len(child.bucket_counts)} boundaries"
                            )
                        for i, count in enumerate(counts):
                            child.bucket_counts[i] += count
                        child.sum += value.get("sum", 0.0)
                        child.count += value.get("count", 0)
                        for i, exemplar in enumerate(value.get("exemplars") or ()):
                            if exemplar is None or i >= len(child.exemplars):
                                continue
                            slot = child.exemplars[i]
                            if slot is None or exemplar[0] >= slot[0]:
                                child.exemplars[i] = (
                                    float(exemplar[0]),
                                    str(exemplar[1]),
                                    float(exemplar[2]),
                                )
                elif family.kind == "gauge":
                    with self._lock:
                        child.value = value
                else:
                    with self._lock:
                        child.value += value

    def reset(self) -> None:
        """Zero every series, keeping the families (and any pre-bound
        children) registered."""
        with self._lock:
            for family in self._families.values():
                for child in family.children.values():
                    child.value = 0.0
                    if family.kind == "histogram":
                        child.bucket_counts = [0] * len(family.buckets)
                        child.sum = 0.0
                        child.count = 0
                        child.exemplars = [None] * len(family.buckets)

    # -- exporters ----------------------------------------------------------

    def render_prometheus(self, snapshot: dict | None = None) -> str:
        """The Prometheus text exposition format of the registry.

        Histogram buckets carry OpenMetrics **exemplars** when one was
        observed (``... 5 # {trace_id="..."} 0.087 1712345678.0``): the
        trace ID of the bucket's worst exemplared observation, linking a
        latency bucket straight to a flight-recorder trace.  The strict
        :func:`parse_prometheus` validator accepts (and checks) them.
        """
        if snapshot is None:
            snapshot = self.snapshot()
        lines: list[str] = []
        for name in sorted(snapshot):
            data = snapshot[name]
            if data["help"]:
                lines.append(f"# HELP {name} {data['help']}")
            lines.append(f"# TYPE {name} {data['kind']}")
            labelnames = data["labelnames"]
            for key in sorted(data["series"]):
                value = data["series"][key]
                rendered = ",".join(
                    f'{label}="{_escape_label(v)}"'
                    for label, v in zip(labelnames, key)
                )
                if data["kind"] == "histogram":
                    cumulative = 0
                    exemplars = value.get("exemplars") or ()
                    for i, (bound, count) in enumerate(
                        zip(data["buckets"], value["buckets"])
                    ):
                        cumulative += count
                        bucket_labels = rendered + ("," if rendered else "")
                        line = (
                            f"{name}_bucket{{{bucket_labels}"
                            f'le="{_format_value(bound)}"}} {cumulative}'
                        )
                        exemplar = exemplars[i] if i < len(exemplars) else None
                        if exemplar is not None:
                            ex_value, trace_id, wall = exemplar
                            line += (
                                f' # {{trace_id="{_escape_label(trace_id)}"}} '
                                f"{ex_value!r} {wall:.3f}"
                            )
                        lines.append(line)
                    suffix = f"{{{rendered}}}" if rendered else ""
                    lines.append(f"{name}_sum{suffix} {value['sum']!r}")
                    lines.append(f"{name}_count{suffix} {value['count']}")
                else:
                    suffix = f"{{{rendered}}}" if rendered else ""
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def render_json(self, snapshot: dict | None = None) -> str:
        """A JSON export with the same content as the Prometheus text
        (histogram values carry per-bucket ``exemplars`` entries of
        ``[value, trace_id, wall]``, or ``null`` where none landed)."""
        if snapshot is None:
            snapshot = self.snapshot()
        out = {}
        for name, data in snapshot.items():
            series = [
                {
                    "labels": dict(zip(data["labelnames"], key)),
                    "value": value,
                }
                for key, value in sorted(data["series"].items())
            ]
            out[name] = {
                "kind": data["kind"],
                "help": data["help"],
                "series": series,
            }
            if data["kind"] == "histogram":
                out[name]["buckets"] = [
                    "+Inf" if b == math.inf else b for b in data["buckets"]
                ]
        return json.dumps(out, indent=2, sort_keys=True) + "\n"


def diff_snapshots(before: dict, after: dict) -> dict:
    """``after - before``, series-wise; gauges keep the ``after`` value."""
    out: dict = {}
    for name, data in after.items():
        base = before.get(name, {}).get("series", {})
        series: dict = {}
        for key, value in data["series"].items():
            prior = base.get(key)
            if data["kind"] == "histogram":
                if prior is None:
                    prior = {"buckets": [0] * len(value["buckets"]),
                             "sum": 0.0, "count": 0}
                delta = {
                    "buckets": [
                        v - p for v, p in zip(value["buckets"], prior["buckets"])
                    ],
                    "sum": value["sum"] - prior["sum"],
                    "count": value["count"] - prior["count"],
                }
                if value.get("exemplars"):
                    # exemplars are max-merged, not added: re-sending the
                    # after-side exemplar is idempotent at the receiver
                    delta["exemplars"] = value["exemplars"]
                if delta["count"]:
                    series[key] = delta
            elif data["kind"] == "gauge":
                series[key] = value
            else:
                delta = value - (prior or 0.0)
                if delta:
                    series[key] = delta
        if series:
            out[name] = dict(data, series=series)
    return out


def estimate_quantile(
    bounds: Iterable[float], counts: Iterable[float], q: float
) -> float | None:
    """Estimate the *q*-quantile of a histogram from its bucket counts.

    *bounds* are the upper boundaries (the family's ``buckets``, usually
    ending in ``+Inf``) and *counts* the per-bucket (non-cumulative)
    counts of a snapshot series.  Standard Prometheus-style estimation:
    find the bucket the target rank falls in and interpolate linearly
    inside it; ranks landing in the ``+Inf`` bucket clamp to the last
    finite boundary.  Returns ``None`` for an empty histogram.
    """
    bounds = list(bounds)
    counts = list(counts)
    total = sum(counts)
    if total <= 0:
        return None
    rank = min(max(q, 0.0), 1.0) * total
    cumulative = 0.0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        if count:
            cumulative += count
            if cumulative >= rank:
                if bound == math.inf:
                    return lower
                return lower + (bound - lower) * (
                    (rank - (cumulative - count)) / count
                )
        if bound != math.inf:
            lower = bound
    return lower


def _validate_exemplar(exemplar: str, lineno: int) -> None:
    """Check the OpenMetrics exemplar tail ``{labels} value [timestamp]``."""
    if not exemplar.startswith("{"):
        raise ValueError(f"line {lineno}: exemplar must start with labels")
    close = exemplar.find("}")
    if close < 0:
        raise ValueError(f"line {lineno}: unbalanced exemplar labels")
    labels = exemplar[1:close]
    if labels and "=" not in labels:
        raise ValueError(f"line {lineno}: bad exemplar labels {labels!r}")
    tokens = exemplar[close + 1:].split()
    if not tokens or len(tokens) > 2:
        raise ValueError(
            f"line {lineno}: exemplar needs a value and an optional "
            f"timestamp, got {tokens!r}"
        )
    for token in tokens:
        try:
            float(token.replace("+Inf", "inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad exemplar number {token!r}"
            ) from exc


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text exposition back to ``{series-with-labels: value}``.

    Strict enough to catch exporter regressions: every non-comment line
    must be ``name{labels} value`` with a float-parsable value, histogram
    bucket counts must be monotonically non-decreasing in ``le`` order,
    and an OpenMetrics exemplar tail (``... # {trace_id="..."} v ts``)
    must itself be well-formed and is only allowed on ``_bucket`` or
    ``_total`` series.  Raises :class:`ValueError` on malformed input.
    """
    series: dict[str, float] = {}
    last_bucket: tuple[str, float] | None = None
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        exemplar = None
        if " # " in line:
            line, _, exemplar = line.partition(" # ")
            _validate_exemplar(exemplar, lineno)
        head, _, raw_value = line.rpartition(" ")
        if not head:
            raise ValueError(f"line {lineno}: no value in {line!r}")
        try:
            value = float(raw_value.replace("+Inf", "inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {raw_value!r}") from exc
        name = head.split("{", 1)[0]
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        if "{" in head and not head.endswith("}"):
            raise ValueError(f"line {lineno}: unbalanced labels in {head!r}")
        if exemplar is not None and not (
            name.endswith("_bucket") or name.endswith("_total")
        ):
            raise ValueError(
                f"line {lineno}: exemplar on non-bucket/counter series {name!r}"
            )
        if head in series:
            raise ValueError(f"line {lineno}: duplicate series {head!r}")
        series[head] = value
        if name.endswith("_bucket"):
            prefix = head.rsplit("le=", 1)[0]
            if last_bucket is not None and last_bucket[0] == prefix:
                if value < last_bucket[1]:
                    raise ValueError(
                        f"line {lineno}: bucket counts not cumulative"
                    )
            last_bucket = (prefix, value)
        else:
            last_bucket = None
    return series


@contextmanager
def observe_seconds(histogram) -> Iterator[None]:
    """Observe the wall-clock seconds of a ``with`` block into *histogram*.

    Works with a family (solo child) or a pre-bound labeled child; the
    observation lands even when the block raises, so latency series
    cover failed operations too.
    """
    started = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - started)


#: The process-global registry every instrumented module binds against.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
