"""Observability for the solver engine: spans, metrics, profiling.

Three orthogonal, zero-dependency tools (see DESIGN.md §Observability):

* :mod:`repro.obs.spans` — hierarchical trace spans.  Install a
  collector with :func:`collecting`, record regions with :func:`trace`;
  spans capture monotonic timings, budget charges and compilation-cache
  deltas, serialize to plain dicts, and merge across the process
  boundary of ``solve_many`` workers.  Off by default, near-free when
  off.
* :mod:`repro.obs.metrics` — the process-global :data:`REGISTRY` of
  ``repro_*`` counters/gauges/histograms with Prometheus-text and JSON
  exporters, thread-safe and snapshot/merge-able across processes.
* :mod:`repro.obs.profile` — :func:`maybe_profile`, the per-solve
  cProfile wrapper gated behind ``REPRO_PROFILE=1``.
* :mod:`repro.obs.flight` — the :class:`FlightRecorder` ring buffer of
  completed request traces + slow-request log that backs the daemon's
  ``/debug/*`` routes and ``repro top``.

The CLI surfaces all of it: ``--trace[=FILE]`` writes a JSONL span log,
``--metrics[=FILE]`` a registry export, ``--stats`` a registry-derived
summary, ``repro stats`` is the self-checking exporter smoke test, and
``repro top --url`` is the live daemon view.
"""

from repro.obs.flight import (
    FlightRecorder,
    new_trace_id,
    truncate_trace,
)
from repro.obs.metrics import (
    BUCKETS_ENV,
    REGISTRY,
    MetricError,
    MetricsRegistry,
    default_buckets,
    diff_snapshots,
    estimate_quantile,
    get_registry,
    observe_seconds,
    parse_prometheus,
)
from repro.obs.profile import (
    PROFILE_ENV,
    maybe_profile,
    profiling_enabled,
)
from repro.obs.spans import (
    NOOP_SPAN,
    Span,
    TraceTree,
    ambient_tag,
    bind_tags,
    collecting,
    current_span,
    current_tags,
    jsonl,
    span_breakdown,
    trace,
    tracing_active,
    truncated_span,
    walk,
)

__all__ = [
    "BUCKETS_ENV",
    "REGISTRY",
    "FlightRecorder",
    "MetricError",
    "MetricsRegistry",
    "default_buckets",
    "diff_snapshots",
    "estimate_quantile",
    "get_registry",
    "new_trace_id",
    "observe_seconds",
    "parse_prometheus",
    "truncate_trace",
    "PROFILE_ENV",
    "maybe_profile",
    "profiling_enabled",
    "NOOP_SPAN",
    "Span",
    "TraceTree",
    "ambient_tag",
    "bind_tags",
    "collecting",
    "current_span",
    "current_tags",
    "jsonl",
    "span_breakdown",
    "trace",
    "tracing_active",
    "truncated_span",
    "walk",
]
