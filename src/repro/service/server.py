"""``repro serve``: a stdlib JSON-over-HTTP frontend for one warm session.

The daemon is deliberately boring — :class:`http.server.ThreadingHTTPServer`
plus :mod:`json`, no framework — because the interesting state lives in the
:class:`~repro.service.session.EngineSession` it wraps.  What the server
adds on top of the session is **admission control**:

* at most ``max_inflight`` requests execute concurrently, with at most
  ``queue_depth`` more waiting; a request beyond that is rejected
  *immediately* with ``429 Too Many Requests`` (and counted in
  ``repro_rejected_total{reason="saturated"}``) instead of piling onto
  an unbounded queue — the client learns to back off while its retry
  is still cheap;
* every admitted request runs under the server's ``request_timeout``
  (tightening any client-supplied ``timeout``), so a pathological
  mapping degrades to an ``Unknown`` verdict, frees its thread, and
  the daemon keeps serving.

Routes::

    POST /check /member /compose /lint /selftest   JSON request -> JSON response
    POST /delta                                    incremental re-check of a
                                                   mapping revision (reuses
                                                   clean artifacts + verdicts)
    GET  /stats                                    session + cache + admission
                                                   accounting
    GET  /healthz                                  liveness ("ok")
    GET  /metrics                                  Prometheus text exposition
                                                   (with OpenMetrics exemplars)
    GET  /metrics.json                             the same registry as JSON
    GET  /debug/requests[?op=&status=&min_ms=&limit=]
                                                   flight-recorder summaries
    GET  /debug/requests/<trace_id>                one full span tree (404
                                                   once evicted from the ring)
    GET  /debug/slow                               recent slow requests

The ``/debug`` routes are read-only by construction (they reach only the
session's flight recorder, never a handler) and bypass admission control
so they stay responsive exactly when the daemon is saturated — the
moment you need them.

Error mapping: malformed JSON or an unknown route is 400/404; a request
the session rejects (``RequestError``) is 400; any other ``XsmError``
comes back 200 with ``ok=false`` in the body (the request was served,
the *mapping* was bad) — exactly the dict the CLI adapter renders.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.obs import REGISTRY
from repro.service.session import EngineSession, RequestError

_REJECTED = REGISTRY.counter(
    "repro_rejected_total",
    "Requests refused by the daemon before reaching the session",
    ("reason",),
)
_INFLIGHT = REGISTRY.gauge(
    "repro_inflight_requests",
    "Requests currently executing in the daemon",
)
_QUEUED = REGISTRY.gauge(
    "repro_queued_requests",
    "Admitted requests waiting for a run slot",
)

#: Largest accepted request body — admission control for memory, not CPU.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Admission:
    """Bounded-concurrency gate: run ``max_inflight``, queue ``queue_depth``.

    ``try_enter`` is non-blocking: it claims one of the
    ``max_inflight + queue_depth`` admission slots or reports saturation.
    An admitted request then blocks (briefly, by construction) on one of
    the ``max_inflight`` run slots.
    """

    def __init__(self, max_inflight: int, queue_depth: int):
        self.max_inflight = max(1, int(max_inflight))
        self.queue_depth = max(0, int(queue_depth))
        self._admit = threading.Semaphore(self.max_inflight + self.queue_depth)
        self._run = threading.Semaphore(self.max_inflight)
        self._lock = threading.Lock()
        self.inflight = 0
        self.queued = 0

    def try_enter(self) -> bool:
        admitted = self._admit.acquire(blocking=False)
        if admitted:
            with self._lock:
                self.queued += 1
                _QUEUED.set(self.queued)
        return admitted

    def start(self) -> None:
        self._run.acquire()
        with self._lock:
            self.queued -= 1
            self.inflight += 1
            _QUEUED.set(self.queued)
            _INFLIGHT.set(self.inflight)

    def cancel(self) -> None:
        """Give back an admission slot whose request never ran."""
        with self._lock:
            self.queued -= 1
            _QUEUED.set(self.queued)
        self._admit.release()

    def leave(self) -> None:
        with self._lock:
            self.inflight -= 1
            _INFLIGHT.set(self.inflight)
        self._run.release()
        self._admit.release()

    def snapshot(self) -> dict:
        """Live saturation for ``/stats`` (and thus ``repro top``)."""
        with self._lock:
            return {
                "inflight": self.inflight,
                "queued": self.queued,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
            }


class _Handler(BaseHTTPRequestHandler):
    # ThreadingHTTPServer defaults to HTTP/1.0 per request; 1.1 keeps
    # connections alive so a warm client pays the TCP setup once.
    protocol_version = "HTTP/1.1"
    server: "ServiceServer"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, payload: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: dict) -> None:
        self._send(
            status,
            json.dumps(body).encode(),
            "application/json; charset=utf-8",
        )

    def _send_text(self, status: int, text: str) -> None:
        self._send(status, text.encode(), "text/plain; charset=utf-8")

    def _read_request(self) -> dict | None:
        """The parsed JSON body, or None after sending an error response."""
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length else 0
        except ValueError:
            self._send_json(400, {"error": {"type": "BadRequest",
                                            "message": "bad Content-Length"}})
            return None
        if size > MAX_BODY_BYTES:
            _REJECTED.labels(reason="oversized").inc()
            self._send_json(413, {"error": {
                "type": "BadRequest",
                "message": f"request body over {MAX_BODY_BYTES} bytes",
            }})
            return None
        raw = self.rfile.read(size) if size else b"{}"
        try:
            request = json.loads(raw or b"{}")
        except ValueError as error:
            self._send_json(400, {"error": {"type": "BadRequest",
                                            "message": f"bad JSON: {error}"}})
            return None
        if not isinstance(request, dict):
            self._send_json(400, {"error": {"type": "BadRequest",
                                            "message": "request must be an object"}})
            return None
        return request

    # -- routes -------------------------------------------------------------

    def _query(self) -> dict:
        """Single-valued query parameters (last value wins)."""
        __, __, raw = self.path.partition("?")
        return {key: values[-1] for key, values in parse_qs(raw).items()}

    @staticmethod
    def _float_param(query: dict, key: str) -> float | None:
        raw = query.get(key)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    def do_GET(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0]
        session = self.server.session
        if path == "/healthz":
            self._send_text(200, "ok\n")
        elif path == "/metrics":
            self._send(200, session.registry.render_prometheus()
                       .encode(), "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/metrics.json":
            self._send(200, session.registry.render_json().encode(),
                       "application/json; charset=utf-8")
        elif path == "/stats":
            body = session.stats({})
            body["server"] = self.server.admission.snapshot()
            self._send_json(200, body)
        elif path == "/debug/requests":
            query = self._query()
            limit = self._float_param(query, "limit")
            self._send_json(200, session.debug_requests(
                op=query.get("op"),
                status=query.get("status"),
                min_ms=self._float_param(query, "min_ms"),
                limit=50 if limit is None else max(1, int(limit)),
            ))
        elif path.startswith("/debug/requests/"):
            trace_id = path[len("/debug/requests/"):]
            record = session.debug_request(trace_id)
            if record is None:
                self._send_json(404, {"error": {
                    "type": "NotFound",
                    "message": f"trace {trace_id!r} not recorded or evicted",
                }})
            else:
                self._send_json(200, record)
        elif path == "/debug/slow":
            query = self._query()
            limit = self._float_param(query, "limit")
            self._send_json(200, session.debug_slow(
                limit=50 if limit is None else max(1, int(limit)),
            ))
        else:
            self._send_json(404, {"error": {"type": "NotFound",
                                            "message": f"no route {path!r}"}})

    def do_POST(self) -> None:  # noqa: N802
        command = self.path.split("?", 1)[0].lstrip("/")
        if command not in EngineSession.HANDLERS:
            self._send_json(404, {"error": {"type": "NotFound",
                                            "message": f"no command {command!r}"}})
            return
        admission = self.server.admission
        if not admission.try_enter():
            _REJECTED.labels(reason="saturated").inc()
            self.send_response(429)
            self.send_header("Retry-After", "1")
            payload = json.dumps({"error": {
                "type": "Saturated",
                "message": "server at capacity; retry with backoff",
            }}).encode()
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        started = False
        try:
            request = self._read_request()
            if request is None:
                return
            timeout = self.server.request_timeout
            if timeout is not None:
                client = request.get("timeout")
                try:
                    keep_client = client is not None and float(client) <= timeout
                except (TypeError, ValueError):
                    keep_client = False  # session rejects it with a clear error
                if not keep_client:
                    request["timeout"] = timeout
            admission.start()
            started = True
            response = self.server.session.handle(command, request)
            error_type = (response.get("error") or {}).get("type")
            status = 400 if error_type == "RequestError" else 200
            self._send_json(status, response)
        except RequestError as error:
            self._send_json(400, {"error": {"type": "RequestError",
                                            "message": str(error)}})
        finally:
            if started:
                admission.leave()
            else:
                admission.cancel()


class ServiceServer:
    """One :class:`EngineSession` behind a threading HTTP daemon.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` after
    construction) — tests and the serve-smoke harness rely on this.
    ``start()`` serves from a daemon thread; ``serve_forever()`` blocks
    the calling thread (the CLI's ``repro serve`` path).
    """

    def __init__(
        self,
        session: EngineSession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 4,
        queue_depth: int = 8,
        request_timeout: float | None = 30.0,
        verbose: bool = False,
    ):
        self.session = session
        self.admission = _Admission(max_inflight, queue_depth)
        self.request_timeout = request_timeout
        self.verbose = verbose
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # the handler reaches its server through self.server; alias the
        # service-level attributes onto the stdlib server object
        self._httpd.session = session  # type: ignore[attr-defined]
        self._httpd.admission = self.admission  # type: ignore[attr-defined]
        self._httpd.request_timeout = request_timeout  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
