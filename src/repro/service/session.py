"""``EngineSession``: the reusable, warm core behind every frontend.

A session owns the long-lived state a serving system amortizes across
requests — one thread-safe :class:`~repro.engine.cache.CompilationCache`
(optionally backed by a :class:`~repro.engine.diskcache.DiskCacheTier`),
the default :class:`~repro.engine.budget.Budget`, the worker-pool fanout
of :func:`~repro.engine.parallel.solve_many` and the process metrics
registry — and exposes the engine's commands as **plain-dict handlers**:

    session = EngineSession(jobs=2, cache_dir="/tmp/cache")
    response = session.check({"mappings": [{"name": "m.xsm", "text": ...}]})

Requests and responses are JSON-shaped (strings, numbers, lists, dicts),
so the same handler serves the CLI adapter, the HTTP daemon and direct
library use.  Every request gets

* a **request ID** (honoured from the request, generated otherwise)
  and a **trace ID** bound as ambient span tags for the whole handler —
  every trace span the request opens, including ``solve_many``
  worker-chunk spans in other processes and the truncated spans of
  crashed/hung workers, carries ``request=<id>`` and ``trace_id=<id>``,
  and every ``SolveReport`` records the request ID;
* a completed-trace record in the session's
  :class:`~repro.obs.flight.FlightRecorder` — the serialized span tree,
  status, latency and budget/cache deltas land in the bounded ring that
  backs the daemon's ``/debug/requests`` routes and the slow-request
  log (the recorder is always on; pass ``flight=FlightRecorder(
  enabled=False)`` to run bare);
* a **per-request budget**: ``request["budget"]`` overrides individual
  :class:`Budget` fields, ``request["timeout"]`` tightens the wall-clock
  deadline (and doubles as the ``solve_many`` watchdog timeout), so a
  slow solve comes back as ``Unknown`` instead of wedging a worker;
* **accounting** in the shared registry: ``repro_requests_total`` by
  command and outcome, ``repro_request_latency_seconds`` by command.

Handlers never raise for malformed input or mapping errors: failures
come back as ``{"ok": False, "error": {...}, "exit_code": 3}`` so the
daemon can map them to HTTP statuses and the CLI to exit codes without
a second error path.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import Counter
from dataclasses import fields as dataclass_fields
from typing import Any, Callable

from repro.engine import (
    AbsoluteConsistencyProblem,
    Budget,
    CompilationCache,
    ConsistencyProblem,
    Counterexample,
    DiskCacheTier,
    ExecutionContext,
    MembershipProblem,
    RigidityExplanation,
    certify,
    solve_many,
)
from repro.errors import XsmError
from repro.incremental import IncrementalEngine
from repro.obs import (
    REGISTRY,
    FlightRecorder,
    bind_tags,
    collecting,
    new_trace_id,
    parse_prometheus,
    trace,
    walk,
)
from repro.xmlmodel.xml_io import from_xml, to_xml

_REQUESTS = REGISTRY.counter(
    "repro_requests_total",
    "Service-layer requests by command and outcome",
    ("command", "outcome"),
)
_REQUEST_LATENCY = REGISTRY.histogram(
    "repro_request_latency_seconds",
    "Wall-clock seconds per service-layer request, by command",
    ("command",),
)

#: Budget fields a request may override via ``request["budget"]``.
_BUDGET_FIELDS = frozenset(f.name for f in dataclass_fields(Budget))


class RequestError(XsmError):
    """A malformed service request (bad shape, unknown fields)."""


def _verdict_payload(verdict: Any) -> dict:
    """A JSON-shaped rendering of a verdict plus its SolveReport."""
    if verdict.is_proved:
        kind = "proved"
    elif verdict.is_refuted:
        kind = "refuted"
    else:
        kind = "unknown"
    payload: dict[str, Any] = {"verdict": kind, "decision": verdict.decision()}
    if kind == "unknown":
        payload["reason"] = verdict.reason
    report = getattr(verdict, "report", None)
    if report is not None:
        payload["report"] = {
            "algorithm": report.algorithm,
            "reason": report.reason,
            "elapsed": report.elapsed,
            "expansions": report.expansions,
            "cache": dict(report.cache),
            "request_id": report.request_id,
            "lines": report.lines(),
        }
    return payload


def _named_texts(request: dict, key: str) -> list[tuple[str, str]]:
    """Normalize ``request[key]`` to ``[(name, text), ...]``.

    Accepts a list of strings or of ``{"name": ..., "text": ...}`` dicts
    (a bare string or dict is promoted to a one-element list).
    """
    raw = request.get(key)
    if raw is None:
        raise RequestError(f"request field {key!r} is required")
    if isinstance(raw, (str, dict)):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise RequestError(f"request field {key!r} must be a non-empty list")
    named: list[tuple[str, str]] = []
    for position, item in enumerate(raw):
        if isinstance(item, str):
            named.append((f"{key}[{position}]", item))
        elif isinstance(item, dict) and isinstance(item.get("text"), str):
            named.append((str(item.get("name", f"{key}[{position}]")), item["text"]))
        else:
            raise RequestError(
                f"{key}[{position}] must be a string or a {{name, text}} object"
            )
    return named


def _trace_rollup(tree: dict) -> dict:
    """Aggregate budget/cache deltas over a request's serialized trace.

    Sums the ``solve`` spans only: their expansion and cache deltas are
    disjoint (one per solve), whereas outer spans include their children
    and would double-count.
    """
    expansions = 0
    cache: dict[str, int] = {}
    spans = 0
    for node in walk(tree):
        spans += 1
        if node.get("name") == "solve":
            expansions += int(node.get("expansions", 0))
            for key, delta in (node.get("cache") or {}).items():
                cache[key] = cache.get(key, 0) + delta
    return {"expansions": expansions, "cache": cache, "spans": spans}


def _exit_code(consistency: Any, absolute: Any) -> int:
    """The CLI exit-code contract for one mapping's check pair."""
    if consistency.is_refuted:
        return 1
    if consistency.is_unknown:
        return 2
    if absolute.is_refuted:
        return 1
    if absolute.is_unknown:
        return 2
    return 0


#: Small but non-trivial mapping for the ``stats`` self-test batch:
#: routes through cons-automata and the rigidity analysis, exercising the
#: compilation cache, certify and (with jobs > 1) the worker plumbing.
_SELFTEST_MAPPING = """\
source:
    f -> item*
    item(sku)
target:
    w -> product*
    product(sku)
std: f[item(s)] -> w[product(s)]
"""

#: Series the stats self-test requires after its batch.
_REQUIRED_SERIES = (
    "repro_solves_total",
    "repro_solve_latency_seconds_bucket",
    "repro_solve_latency_seconds_count",
    "repro_cache_misses_total",
    "repro_certify_total",
    "repro_batch_problems_total",
)

_REQUIRED_PARALLEL_SERIES = (
    "repro_queue_wait_seconds_count",
    "repro_worker_chunks_total",
)


class EngineSession:
    """One warm engine shared by many requests (and many threads).

    *jobs* is the default ``solve_many`` fanout (requests may override),
    *cache_size* / *cache_dir* configure the shared compilation cache
    and its optional disk tier, *budget* the per-request default limits.
    Handlers are safe to call concurrently: the cache is thread-safe,
    contexts are per-request, and the counters mutate under a lock.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_size: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        budget: Budget | None = None,
        registry=REGISTRY,
        flight: FlightRecorder | None = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache_dir = os.fspath(cache_dir) if cache_dir else None
        disk = DiskCacheTier(self.cache_dir) if self.cache_dir else None
        self.cache = CompilationCache(max_entries=cache_size, disk=disk)
        self.budget = budget if budget is not None else Budget.default()
        #: Per-revision incremental state (the ``delta`` handler); shares
        #: the session cache, so artifact reuse spans one-shot requests
        #: and deltas alike.
        self.incremental = IncrementalEngine(cache=self.cache, budget=self.budget)
        self.registry = registry
        self.flight = flight if flight is not None else FlightRecorder()
        self.started_wall = time.time()
        self.requests: Counter[str] = Counter()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._id_prefix = f"r{os.getpid():x}-{int(self.started_wall) & 0xFFFF:04x}"

    # -- request plumbing ---------------------------------------------------

    def next_request_id(self) -> str:
        return f"{self._id_prefix}-{next(self._ids):06d}"

    def _request_budget(self, request: dict) -> Budget:
        overrides = request.get("budget") or {}
        if not isinstance(overrides, dict):
            raise RequestError("request field 'budget' must be an object")
        unknown = set(overrides) - _BUDGET_FIELDS
        if unknown:
            raise RequestError(
                f"unknown budget fields: {', '.join(sorted(unknown))}"
            )
        budget = self.budget.with_(**overrides) if overrides else self.budget
        timeout = request.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise RequestError("request field 'timeout' must be positive")
            deadline = budget.deadline_seconds
            if deadline is None or deadline > timeout:
                budget = budget.with_(deadline_seconds=timeout)
        return budget

    def _context(self, request: dict) -> ExecutionContext:
        return ExecutionContext(self._request_budget(request), cache=self.cache)

    def _jobs(self, request: dict) -> int:
        jobs = request.get("jobs")
        if jobs is None:
            return self.jobs
        return max(1, int(jobs))

    def _run(self, command: str, request: dict | None,
             body: Callable[[dict], dict]) -> dict:
        request = dict(request) if request else {}
        request_id = str(request.get("request_id") or self.next_request_id())
        trace_id = str(request.get("trace_id") or new_trace_id())
        response: dict[str, Any] = {
            "command": command, "request_id": request_id, "trace_id": trace_id,
        }
        outcome = "ok"
        started = time.perf_counter()
        tree = None
        try:
            # the flight recorder makes span collection always-on: the
            # tree is what lands in the ring (and, on request["trace"],
            # in the response).  The common spans are cheap — compile
            # spans only open on cache misses — and the bench_obs
            # recorder-overhead guard keeps this path honest.  A
            # disabled recorder restores the old trace-on-demand path.
            with bind_tags(request=request_id, trace_id=trace_id):
                if self.flight.enabled or request.get("trace"):
                    with collecting(
                        "request", command=command, trace_id=trace_id
                    ) as tree:
                        payload = body(request)
                else:
                    with trace("request", command=command):
                        payload = body(request)
            response.update(payload)
        except XsmError as error:
            outcome = "error"
            response["error"] = {
                "type": type(error).__name__, "message": str(error)
            }
            response["exit_code"] = 3
        elapsed = time.perf_counter() - started
        response["ok"] = outcome == "ok"
        response["elapsed"] = elapsed
        tree_dict = tree.to_dict() if tree is not None else None
        if request.get("trace") and tree_dict is not None:
            response["trace"] = tree_dict
        with self._lock:
            self.requests[command] += 1
        _REQUESTS.labels(command=command, outcome=outcome).inc()
        _REQUEST_LATENCY.labels(command=command).observe(
            elapsed, exemplar=trace_id
        )
        if self.flight.enabled and tree_dict is not None:
            self.flight.record(
                trace_id=trace_id,
                op=command,
                status=outcome,
                duration=elapsed,
                trace=tree_dict,
                request_id=request_id,
                exit_code=response.get("exit_code"),
                **_trace_rollup(tree_dict),
            )
        return response

    # -- handlers -----------------------------------------------------------

    def check(self, request: dict | None = None) -> dict:
        """Consistency + absolute consistency of one or more mappings."""
        return self._run("check", request, self._check_body)

    def _check_body(self, request: dict) -> dict:
        from repro.consistency import consistency_witness
        from repro.mappings.io import parse_mapping

        named = _named_texts(request, "mappings")
        parsed = [(name, parse_mapping(text)) for name, text in named]
        context = self._context(request)
        problems: list[object] = []
        for __, mapping in parsed:
            problems.append(ConsistencyProblem(mapping))
            problems.append(AbsoluteConsistencyProblem(mapping))
        batch = solve_many(
            problems,
            jobs=self._jobs(request),
            context=context,
            task_timeout=request.get("timeout"),
            cache_dir=self.cache_dir,
        )
        results = []
        for position, (name, mapping) in enumerate(parsed):
            consistency = batch[2 * position]
            absolute = batch[2 * position + 1]
            entry: dict[str, Any] = {
                "name": name,
                "class": str(mapping.signature()),
                "consistent": _verdict_payload(consistency),
                "absolutely_consistent": _verdict_payload(absolute),
                "exit_code": _exit_code(consistency, absolute),
            }
            if request.get("witness") and consistency.is_proved:
                with context.activate():
                    pair = consistency_witness(mapping)
                if pair:
                    entry["witness"] = {
                        "source": to_xml(pair[0], mapping.source_dtd).strip(),
                        "target": to_xml(pair[1], mapping.target_dtd).strip(),
                    }
            if absolute.is_refuted:
                certificate = absolute.certificate
                if isinstance(certificate, RigidityExplanation):
                    entry["why"] = [str(p) for p in certificate.problems]
                elif isinstance(certificate, Counterexample):
                    entry["counterexample"] = to_xml(
                        certificate.source, mapping.source_dtd
                    ).strip()
            results.append(entry)
        return {
            "results": results,
            "exit_code": max(entry["exit_code"] for entry in results),
            "batch": {
                "problems": batch.report.problems,
                "jobs": batch.report.jobs,
                "elapsed": batch.report.elapsed,
                "lines": batch.report.lines(),
            },
        }

    def member(self, request: dict | None = None) -> dict:
        """Is each (source, target) pair in the mapping's semantics?"""
        return self._run("member", request, self._member_body)

    def _member_body(self, request: dict) -> dict:
        from repro.mappings.io import parse_mapping
        from repro.mappings.membership import violations

        mapping_text = request.get("mapping")
        if not isinstance(mapping_text, str):
            raise RequestError("request field 'mapping' must be a string")
        source_text = request.get("source")
        if not isinstance(source_text, str):
            raise RequestError("request field 'source' must be a string")
        mapping = parse_mapping(mapping_text)
        source = from_xml(source_text, mapping.source_dtd)
        named = _named_texts(request, "targets")
        targets = [
            (name, from_xml(text, mapping.target_dtd)) for name, text in named
        ]
        context = self._context(request)
        batch = solve_many(
            [MembershipProblem(mapping, source, target) for __, target in targets],
            jobs=self._jobs(request),
            context=context,
            task_timeout=request.get("timeout"),
            cache_dir=self.cache_dir,
        )
        explain = bool(request.get("explain")) and not mapping.uses_skolem_functions()
        results = []
        exit_code = 0
        for (name, target), verdict in zip(targets, batch):
            entry: dict[str, Any] = {
                "name": name,
                "answer": "YES" if verdict.is_proved else "NO",
                "result": _verdict_payload(verdict),
            }
            if verdict.is_refuted and explain:
                with context.activate():
                    entry["violations"] = [
                        {
                            "std": str(std),
                            "values": {v.name: value for v, value in valuation.items()},
                        }
                        for std, valuation in violations(mapping, source, target)
                    ]
            results.append(entry)
            exit_code = max(exit_code, 0 if verdict.is_proved else 1)
        return {"results": results, "exit_code": exit_code}

    def compose(self, request: dict | None = None) -> dict:
        """Compose two mappings (Theorem 8.2) and return the rendered result."""
        return self._run("compose", request, self._compose_body)

    def _compose_body(self, request: dict) -> dict:
        from repro.composition.compose import compose as compose_mappings
        from repro.mappings.io import parse_mapping, render_mapping

        first = request.get("first")
        second = request.get("second")
        if not isinstance(first, str) or not isinstance(second, str):
            raise RequestError(
                "request fields 'first' and 'second' must be mapping texts"
            )
        with self._context(request).activate():
            composed = compose_mappings(parse_mapping(first), parse_mapping(second))
        return {"mapping": render_mapping(composed), "exit_code": 0}

    def lint(self, request: dict | None = None) -> dict:
        """Static diagnostics for one or more mappings (no solver runs
        unless ``request["fixes"]`` asks for verified quick-fixes, whose
        certification gate re-solves consistency)."""
        return self._run("lint", request, self._lint_body)

    def _lint_body(self, request: dict) -> dict:
        from repro.analysis import (
            Severity,
            fixes_for_report,
            lint_mapping,
            merge_reports,
        )
        from repro.mappings.io import parse_mapping

        named = _named_texts(request, "mappings")
        context = self._context(request)
        parsed = [(name, parse_mapping(text)) for name, text in named]
        reports = [
            lint_mapping(mapping, context, name=name)
            for name, mapping in parsed
        ]
        strict = bool(request.get("strict"))
        min_severity = Severity.WARNING if request.get("quiet") else Severity.INFO
        response: dict[str, Any] = {
            "report": merge_reports(reports),
            "rendered": [
                {
                    "name": name,
                    "text": report.render_text(min_severity=min_severity),
                }
                for (name, __), report in zip(named, reports)
            ],
            "exit_code": max(r.exit_code(strict=strict) for r in reports),
        }
        if request.get("fixes"):
            only_codes = request.get("only_codes")
            if only_codes is not None and not isinstance(only_codes, list):
                raise RequestError(
                    "request field 'only_codes' must be a list of SMxxx codes"
                )
            response["fixes"] = [
                {
                    "name": name,
                    "fixes": [
                        fix.to_dict()
                        for fix in fixes_for_report(
                            mapping, report, context, only_codes=only_codes
                        )
                    ],
                }
                for (name, mapping), report in zip(parsed, reports)
            ]
        return response

    def delta(self, request: dict | None = None) -> dict:
        """Incrementally re-check a mapping revision (``POST /delta``).

        ``{"name": ..., "mapping": <text>}`` applies one revision of the
        named mapping stream: the edit is diffed against the previous
        revision, only the invalidation cone of the changed inputs is
        recompiled, and every verdict whose inputs are untouched is
        served from the memo.  The response carries the full verdict set
        plus reuse accounting under ``"incremental"``.
        """
        return self._run("delta", request, self._delta_body)

    def _delta_body(self, request: dict) -> dict:
        from repro.analysis import Severity

        mapping_text = request.get("mapping")
        if not isinstance(mapping_text, str):
            raise RequestError("request field 'mapping' must be a string")
        name = str(request.get("name") or "default")
        result = self.incremental.update(
            name, mapping_text, budget=self._request_budget(request)
        )
        consistency = result.verdicts["consistency"]
        absolute = result.verdicts["absolutely_consistent"]
        return {
            "name": name,
            "revision": result.revision,
            "cold": result.cold,
            "verdicts": {
                label: _verdict_payload(verdict)
                for label, verdict in result.verdicts.items()
            },
            "lint": {
                "text": result.lint.render_text(
                    min_severity=Severity.WARNING
                    if request.get("quiet")
                    else Severity.INFO
                ),
                "exit_code": result.lint.exit_code(
                    strict=bool(request.get("strict"))
                ),
            },
            "incremental": {
                "dirty": len(result.delta.dirty),
                "changed_stds": list(result.delta.changed_stds),
                "invalidated": result.invalidated,
                "reused": result.reused,
                "recompiled": result.recompiled,
                "elapsed": result.elapsed,
            },
            "exit_code": _exit_code(consistency, absolute),
        }

    def stats(self, request: dict | None = None) -> dict:
        """Session/cache/registry accounting (the daemon's ``GET /stats``)."""
        return self._run("stats", request, self._stats_body)

    def _stats_body(self, request: dict) -> dict:
        snapshot = self.registry.snapshot()
        with self._lock:
            requests = dict(self.requests)
        return {
            "session": {
                "uptime_seconds": time.time() - self.started_wall,
                "jobs": self.jobs,
                "cache_dir": self.cache_dir,
                "requests": requests,
            },
            "cache": self.cache.stats(),
            "cache_by_kind": self.cache.stats_by_kind(),
            "cache_entries_by_kind": self.cache.entries_by_kind(),
            "incremental": self.incremental.stats(),
            "flight": self.flight.stats(),
            "registry": {
                "families": len(snapshot),
                "series": sum(len(d["series"]) for d in snapshot.values()),
            },
            "exit_code": 0,
        }

    def selftest(self, request: dict | None = None) -> dict:
        """The self-checking exporter smoke behind ``repro stats`` (CI gate).

        Solves a built-in batch, certifies the decided verdicts, and
        validates the Prometheus/JSON exports plus the merged
        cross-process trace.  ``exit_code`` 1 on any regression.
        """
        return self._run("selftest", request, self._selftest_body)

    def _selftest_body(self, request: dict) -> dict:
        import json as json_module

        from repro.mappings.io import parse_mapping
        from repro.obs import walk as walk_spans

        jobs = self._jobs(request)
        mapping = parse_mapping(_SELFTEST_MAPPING)
        problems: list[object] = []
        for __ in range(max(2, jobs)):
            problems.append(ConsistencyProblem(mapping))
            problems.append(AbsoluteConsistencyProblem(mapping))
        context = self._context(request)
        with collecting("stats-selftest") as tree:
            batch = solve_many(problems, jobs=jobs, context=context)
            for verdict in batch:
                if not verdict.is_unknown:
                    certify(verdict)
        report = batch.report
        lines = [
            f"self-test: {report.problems} problems over {report.jobs} jobs "
            f"in {report.elapsed:.3f}s"
        ]

        failures: list[str] = []
        text = self.registry.render_prometheus()
        try:
            series = parse_prometheus(text)
        except ValueError as error:
            series = {}
            failures.append(f"prometheus export does not parse: {error}")
        names = {key.split("{", 1)[0] for key in series}
        required = list(_REQUIRED_SERIES)
        if jobs > 1:
            required += list(_REQUIRED_PARALLEL_SERIES)
        for name in required:
            if name not in names:
                failures.append(f"required series missing from export: {name}")
        try:
            json_module.loads(self.registry.render_json())
        except ValueError as error:
            failures.append(f"json export does not parse: {error}")

        trace_dict = tree.to_dict()
        solves = sum(
            1 for span in walk_spans(trace_dict) if span["name"] == "solve"
        )
        if report.trace is None:
            failures.append("batch report carries no merged trace")
        if solves < report.problems:
            failures.append(
                f"trace covers {solves} solve spans for {report.problems} problems"
            )
        lines.append(f"prometheus export: {len(series)} series")
        lines.append(f"trace: {solves} solve spans over {report.chunks} chunks")
        return {
            "lines": lines,
            "failures": failures,
            "exit_code": 1 if failures else 0,
        }

    # -- flight-recorder reads (the daemon's /debug/* routes) ----------------
    #
    # These bypass _run on purpose: inspecting the recorder must not
    # record itself (a polling `repro top` would otherwise flush real
    # requests out of the ring), must never consume admission slots,
    # and is read-only by construction.

    def debug_requests(self, op: str | None = None, status: str | None = None,
                       min_ms: float | None = None, limit: int = 50) -> dict:
        """Recent request summaries from the flight recorder."""
        return {
            "requests": self.flight.requests(
                op=op, status=status, min_ms=min_ms, limit=limit
            ),
            "flight": self.flight.stats(),
        }

    def debug_request(self, trace_id: str) -> dict | None:
        """One full record (span tree included), or ``None`` if the
        trace was never recorded or has been evicted from the ring."""
        return self.flight.lookup(trace_id)

    def debug_slow(self, limit: int = 50) -> dict:
        """Recent slow-request summaries."""
        return {
            "slow": self.flight.slow(limit=limit),
            "threshold_ms": self.flight.slow_ms,
            "slow_log": self.flight.slow_log_path,
        }

    # -- generic dispatch (the daemon's routing table) ----------------------

    HANDLERS = ("check", "member", "compose", "lint", "delta", "stats", "selftest")

    def handle(self, command: str, request: dict | None = None) -> dict:
        """Dispatch *command* to its handler (raises for unknown commands)."""
        if command not in self.HANDLERS:
            raise RequestError(f"unknown service command {command!r}")
        return getattr(self, command)(request)
