"""A tiny stdlib client for the ``repro serve`` daemon.

The CLI's ``--url`` mode routes every command through here, so this is
the inverse of :mod:`repro.service.server`: serialize the request dict,
POST it, give back the response dict.  Two deliberate choices:

* **error bodies are responses** — the daemon answers 400 (bad request)
  and 429 (saturated) with the same JSON envelope as a success, so
  ``call_service`` returns the parsed body for any HTTP status that
  carries one; callers branch on ``response["error"]`` / ``exit_code``
  instead of catching transport exceptions;
* **transport failures are one exception** — connection refused, DNS,
  timeouts and non-JSON bodies all raise :class:`ServiceUnavailable`,
  which the CLI maps to exit code 3 with the daemon's URL in the
  message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import XsmError


class ServiceUnavailable(XsmError):
    """The daemon could not be reached or spoke something other than JSON."""


def _parse_body(payload: bytes, url: str) -> dict:
    try:
        body = json.loads(payload)
    except ValueError as error:
        raise ServiceUnavailable(
            f"service at {url} returned a non-JSON body: {error}"
        ) from error
    if not isinstance(body, dict):
        raise ServiceUnavailable(
            f"service at {url} returned a non-object body"
        )
    return body


def call_service(
    url: str,
    command: str,
    request: dict | None = None,
    *,
    timeout: float = 300.0,
) -> dict:
    """POST *request* to ``<url>/<command>``; the parsed response dict.

    HTTP error statuses whose body is the service's JSON envelope (400,
    404, 413, 429) are returned, not raised — the ``error`` key carries
    the type and message.  Transport-level failures raise
    :class:`ServiceUnavailable`.
    """
    endpoint = f"{url.rstrip('/')}/{command.lstrip('/')}"
    payload = json.dumps(request or {}).encode()
    http_request = urllib.request.Request(
        endpoint,
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(http_request, timeout=timeout) as reply:
            return _parse_body(reply.read(), endpoint)
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            return _parse_body(body, endpoint)
        except ServiceUnavailable:
            raise ServiceUnavailable(
                f"service at {endpoint} answered {error.code} without a "
                f"JSON body"
            ) from error
    except OSError as error:
        raise ServiceUnavailable(
            f"cannot reach service at {endpoint}: {error}"
        ) from error


def fetch_text(url: str, path: str, *, timeout: float = 30.0) -> str:
    """GET ``<url>/<path>`` as text (``/metrics``, ``/healthz``)."""
    endpoint = f"{url.rstrip('/')}/{path.lstrip('/')}"
    try:
        with urllib.request.urlopen(endpoint, timeout=timeout) as reply:
            return reply.read().decode()
    except OSError as error:
        raise ServiceUnavailable(
            f"cannot reach service at {endpoint}: {error}"
        ) from error


def fetch_json(url: str, path: str, *, timeout: float = 30.0) -> dict:
    """GET ``<url>/<path>`` as a JSON object (``/stats``, ``/debug/*``).

    Mirrors :func:`call_service`'s error contract: a 404 (say, an
    evicted trace ID) whose body is the daemon's JSON envelope is
    *returned* with its ``error`` key; transport failures and non-JSON
    bodies raise :class:`ServiceUnavailable`.
    """
    endpoint = f"{url.rstrip('/')}/{path.lstrip('/')}"
    try:
        with urllib.request.urlopen(endpoint, timeout=timeout) as reply:
            return _parse_body(reply.read(), endpoint)
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            return _parse_body(body, endpoint)
        except ServiceUnavailable:
            raise ServiceUnavailable(
                f"service at {endpoint} answered {error.code} without a "
                f"JSON body"
            ) from error
    except OSError as error:
        raise ServiceUnavailable(
            f"cannot reach service at {endpoint}: {error}"
        ) from error
