"""The service layer: every frontend goes through one warm engine session.

Before this package, the engine's entry points were one-shot: each CLI
invocation built its own caches, paid interpreter startup and compiled
every artifact from scratch.  :class:`EngineSession` extracts the
reusable core — one warm :class:`~repro.engine.cache.CompilationCache`
(optionally over a :class:`~repro.engine.diskcache.DiskCacheTier`), the
``solve_many`` worker-pool plumbing, the metrics registry — behind
plain-dict request/response handlers (``check`` / ``member`` /
``compose`` / ``lint`` / ``stats``) with per-request
:class:`~repro.engine.budget.Budget` limits and trace IDs.

Two frontends share that one code path:

* the CLI (:mod:`repro.cli`): every ``repro check/member/lint/compose/
  stats`` invocation builds a session, runs the handler, renders the
  response dict as text;
* the daemon (:mod:`repro.service.server`): ``repro serve`` keeps a
  session alive behind a stdlib JSON-over-HTTP frontend with admission
  control, so repeated requests hit warm caches instead of paying cold
  start — and the same CLI commands target it with ``--url``.

See DESIGN.md §8 ("Service layer").
"""

from repro.service.client import (
    ServiceUnavailable,
    call_service,
    fetch_json,
    fetch_text,
)
from repro.service.server import ServiceServer
from repro.service.session import EngineSession, RequestError

__all__ = [
    "EngineSession",
    "RequestError",
    "ServiceServer",
    "ServiceUnavailable",
    "call_service",
    "fetch_json",
    "fetch_text",
]
