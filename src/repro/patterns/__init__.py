"""Tree patterns: the paper's extended pattern language (grammar (2)).

Patterns describe tree shapes with four navigation axes — child,
descendant (``//``), next-sibling (``->``), following-sibling (``->*``) —
wildcard labels (``_``) and variables/constants on attributes::

    r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]],
              supervise[student(s)]]]

The subpackage provides the AST (:mod:`repro.patterns.ast`), a parser
(:mod:`repro.patterns.parser`), the matching semantics of Section 3
(:mod:`repro.patterns.matching`), satisfiability with respect to a DTD
(:mod:`repro.patterns.satisfiability`, Lemma 4.1) and feature/signature
analysis (:mod:`repro.patterns.features`).
"""

from repro.patterns.ast import (
    WILDCARD,
    Descendant,
    Pattern,
    Sequence,
    node,
    seq,
)
from repro.patterns.parser import parse_pattern
from repro.patterns.index import CompactTreeIndex, EngineStats, TreeIndex
from repro.patterns.compact import CompactPatternEngine
from repro.patterns.matching import (
    PatternEngine,
    engine_for,
    evaluate,
    find_matches,
    find_matches_anywhere,
    holds,
    matches_anywhere,
    matches_at_root,
)
from repro.patterns.features import Axes, axes_of, is_fully_specified
from repro.patterns.satisfiability import (
    is_satisfiable,
    satisfying_tree,
    structural_witness,
)
from repro.patterns.separation import (
    find_separating_tree,
    pattern_contained,
    patterns_equivalent,
)

__all__ = [
    "WILDCARD",
    "Pattern",
    "Descendant",
    "Sequence",
    "node",
    "seq",
    "parse_pattern",
    "EngineStats",
    "TreeIndex",
    "CompactTreeIndex",
    "PatternEngine",
    "CompactPatternEngine",
    "engine_for",
    "evaluate",
    "find_matches",
    "find_matches_anywhere",
    "holds",
    "matches_anywhere",
    "matches_at_root",
    "Axes",
    "axes_of",
    "is_fully_specified",
    "is_satisfiable",
    "satisfying_tree",
    "structural_witness",
    "find_separating_tree",
    "pattern_contained",
    "patterns_equivalent",
]
