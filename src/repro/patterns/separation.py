"""The paper's Section 9 "technical problem": pattern separation.

    Given a DTD ``D`` and two sets of patterns ``P+`` and ``P-``, can we
    find a tree ``T |= D`` that matches all the patterns in ``P+`` and
    none in ``P-``?

The paper notes this problem underlies most of its complexity gaps and
pins it between NP-hardness and EXPTIME.  For *structural* matching (data
values free — the regime of every comparison-free result) the closure
automaton answers it directly: one deterministic automaton tracks all
patterns of ``P+ ∪ P-`` at once, so the question is reachability of a
conforming root state whose satisfaction set contains ``P+`` and avoids
``P-`` — the EXPTIME upper bound, implemented.

Pattern containment over a DTD is the special case
``P+ = {p1}, P- = {p2}`` being unseparable.  The decision entry points
(:func:`pattern_contained`, :func:`patterns_equivalent`) return
:class:`~repro.engine.verdicts.Verdict`\\ s refuted by a separating tree;
:func:`find_separating_tree` is the raw witness extractor the certificate
re-checker uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.patterns.ast import Pattern
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def find_separating_tree(
    dtd: DTD,
    positives: Iterable[Pattern],
    negatives: Iterable[Pattern],
    context=None,
) -> TreeNode | None:
    """A conforming tree matching all *positives* and no *negatives*, or None.

    Exact for structural satisfaction: patterns may carry variables (their
    arity constrains, their values do not — decorate the witness freely),
    but constants are not supported here.  The automata are compiled
    through the engine's compilation cache.
    """
    # imported here: repro.automata (which the engine cache compiles)
    # depends on repro.patterns.ast, so top-level imports would be circular
    from repro.automata.duta import ProductAutomaton, find_accepted
    from repro.engine.budget import resolve_context
    from repro.engine.cache import automata_size, closure_automaton, dtd_automaton
    from repro.kernel import select_kernel

    positives = list(positives)
    negatives = list(negatives)
    patterns = positives + negatives
    extra = frozenset(
        label for pattern in patterns for label in pattern.labels_used()
    )
    kernel = select_kernel("automata", automata_size(dtd, patterns))
    closure = closure_automaton(patterns, dtd, extra, context=context, kernel=kernel)
    conformance = dtd_automaton(dtd, extra, context=context, kernel=kernel)

    def separated(state) -> bool:
        if not conformance.is_accepting(state[0]):
            return False
        sat = state[1]
        return all(closure.satisfies(sat, p) for p in positives) and not any(
            closure.satisfies(sat, p) for p in negatives
        )

    product = ProductAutomaton([conformance, closure], predicate=separated)
    resolved = resolve_context(context)
    found = find_accepted(
        product,
        prune=lambda state: not conformance.state_ok(state[0]),
        prune_horizontal=lambda label, h: conformance.horizontal_dead(h[0]),
        charge=resolved.charge if resolved is not None else None,
    )
    if found is None:
        return None
    return conformance.decorate(found[1])


def separation_verdict(
    dtd: DTD,
    positives: Iterable[Pattern],
    negatives: Iterable[Pattern],
    context=None,
):
    """Verdict view of separation: ``Proved`` carries the separating tree."""
    from repro.engine.verdicts import (
        AnalysisCertificate,
        Proved,
        Refuted,
        SeparatingTree,
    )

    witness = find_separating_tree(dtd, positives, negatives, context)
    if witness is not None:
        return Proved(SeparatingTree(witness))
    return Refuted(
        AnalysisCertificate(
            "separation",
            "no conforming tree matches every positive pattern while "
            "avoiding every negative one",
        )
    )


def pattern_contained(dtd: DTD, smaller: Pattern, larger: Pattern, context=None):
    """Structural containment over *dtd*: every conforming tree matching
    *smaller* also matches *larger*.

    ``Refuted`` carries a separating tree (matches *smaller*, not
    *larger*); the decision is exact.
    """
    from repro.engine.verdicts import AnalysisCertificate, Proved, Refuted, SeparatingTree

    witness = find_separating_tree(dtd, [smaller], [larger], context)
    if witness is not None:
        return Refuted(SeparatingTree(witness))
    return Proved(
        AnalysisCertificate(
            "separation",
            "no conforming tree matches the smaller pattern without the larger",
        )
    )


def patterns_equivalent(dtd: DTD, left: Pattern, right: Pattern, context=None):
    """Structural equivalence of two patterns over *dtd* (exact)."""
    forward = pattern_contained(dtd, left, right, context)
    if forward.is_refuted:
        return forward
    return pattern_contained(dtd, right, left, context)
