"""The paper's Section 9 "technical problem": pattern separation.

    Given a DTD ``D`` and two sets of patterns ``P+`` and ``P-``, can we
    find a tree ``T |= D`` that matches all the patterns in ``P+`` and
    none in ``P-``?

The paper notes this problem underlies most of its complexity gaps and
pins it between NP-hardness and EXPTIME.  For *structural* matching (data
values free — the regime of every comparison-free result) the closure
automaton answers it directly: one deterministic automaton tracks all
patterns of ``P+ ∪ P-`` at once, so the question is reachability of a
conforming root state whose satisfaction set contains ``P+`` and avoids
``P-`` — the EXPTIME upper bound, implemented.

Pattern containment over a DTD is the special case
``P+ = {p1}, P- = {p2}`` being unseparable.
"""

from __future__ import annotations

from typing import Iterable

from repro.patterns.ast import Pattern
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode


def find_separating_tree(
    dtd: DTD,
    positives: Iterable[Pattern],
    negatives: Iterable[Pattern],
) -> TreeNode | None:
    """A conforming tree matching all *positives* and no *negatives*, or None.

    Exact for structural satisfaction: patterns may carry variables (their
    arity constrains, their values do not — decorate the witness freely),
    but constants are not supported here.
    """
    # imported here: repro.automata depends on repro.patterns.ast, so a
    # top-level import would be circular
    from repro.automata.dtd_automaton import DTDAutomaton
    from repro.automata.duta import ProductAutomaton, find_accepted
    from repro.automata.pattern_automaton import PatternClosureAutomaton

    positives = list(positives)
    negatives = list(negatives)
    patterns = positives + negatives
    extra = frozenset(
        label for pattern in patterns for label in pattern.labels_used()
    )
    closure = PatternClosureAutomaton(
        patterns, extra_labels=dtd.labels | extra, arity_of=dtd.arity
    )
    dtd_automaton = DTDAutomaton(dtd, extra_labels=extra)

    def separated(state) -> bool:
        if not dtd_automaton.is_accepting(state[0]):
            return False
        sat = state[1][0]
        return all(p in sat for p in positives) and not any(
            p in sat for p in negatives
        )

    product = ProductAutomaton([dtd_automaton, closure], predicate=separated)
    found = find_accepted(
        product,
        prune=lambda state: not state[0][1],
        prune_horizontal=lambda label, h: dtd_automaton.horizontal_dead(h[0]),
    )
    if found is None:
        return None
    return dtd_automaton.decorate(found[1])


def pattern_contained(dtd: DTD, smaller: Pattern, larger: Pattern) -> bool:
    """Structural containment over *dtd*: every conforming tree matching
    *smaller* also matches *larger*."""
    return find_separating_tree(dtd, [smaller], [larger]) is None


def patterns_equivalent(dtd: DTD, left: Pattern, right: Pattern) -> bool:
    """Structural equivalence of two patterns over *dtd*."""
    return pattern_contained(dtd, left, right) and pattern_contained(
        dtd, right, left
    )
