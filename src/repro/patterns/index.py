"""Structural tree indexes backing the pattern-evaluation engine.

A :class:`TreeIndex` is built in one DFS pass over a tree and is the
read-only half of the query engine in :mod:`repro.patterns.matching`:

* **preorder intervals** — every node occurrence gets a preorder number
  and the (inclusive) end of its subtree's preorder span, so
  "descendant of ``v``" becomes an integer range test and descendant
  candidates can be enumerated by bisection instead of tree walks;
* **label → nodes** — document-ordered preorder positions per label,
  the access path for ``//l(...)`` subpatterns;
* **(label, attrs) → nodes** — the attribute-value index, the access
  path for fully-constant node formulae such as ``//a(5)``;
* **label bitsets** — per node, a bitmask of the labels occurring in
  its subtree (and strictly below it), so "this pattern mentions a
  label that does not occur under ``v``" fails in O(1) without
  visiting a single descendant.

Nodes are keyed by identity (``id``), like the matcher's memo tables:
equal subtrees may occur at several positions and trees may even share
subtree *objects* (the same ``TreeNode`` appearing under two parents).
Sharing is safe here because match relations are position-independent:
any occurrence of a shared node has, by construction, the identical
subtree, so the last-written interval enumerates exactly its descendant
objects.

:class:`EngineStats` carries the per-run counters surfaced by the
ablation benchmarks (nodes visited, join pairs considered, cache hits,
index-prune short-circuits).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, fields
from typing import Iterable, Iterator

from repro.xmlmodel.tree import TreeNode


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (see the ablation benchmarks)."""

    nodes_visited: int = 0      # node-formula evaluations (memo misses)
    join_pairs: int = 0         # valuation pairs actually merged by joins
    cache_hits: int = 0         # memo-table hits
    index_prunes: int = 0       # evaluations cut off by a label-bitset test
    candidates_scanned: int = 0 # index candidates touched by // queries

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.as_dict().items())


class TreeIndex:
    """Precomputed access paths over one tree (see module docstring)."""

    __slots__ = (
        "root",
        "size",
        "node_at",
        "pre",
        "end",
        "by_label",
        "by_label_attrs",
        "label_bit",
        "mask_at_or_below",
        "mask_below",
    )

    def __init__(self, root: TreeNode):
        self.root = root
        #: document order: ``node_at[pre]`` is the node with preorder *pre*
        self.node_at: list[TreeNode] = []
        #: id(node) -> preorder number (last occurrence for shared nodes)
        self.pre: dict[int, int] = {}
        #: id(node) -> last preorder number inside the node's subtree
        self.end: dict[int, int] = {}
        #: label -> sorted preorder numbers of nodes with that label
        self.by_label: dict[str, list[int]] = {}
        #: (label, attrs) -> sorted preorder numbers (attribute-value index)
        self.by_label_attrs: dict[tuple[str, tuple], list[int]] = {}
        #: label -> bit position in the subtree bitmasks
        self.label_bit: dict[str, int] = {}
        #: id(node) -> bitmask of labels at the node or below it
        self.mask_at_or_below: dict[int, int] = {}
        #: id(node) -> bitmask of labels strictly below the node
        self.mask_below: dict[int, int] = {}
        self._build(root)
        self.size = len(self.node_at)

    def _build(self, root: TreeNode) -> None:
        counter = 0
        stack: list[tuple[TreeNode, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                below = 0
                for child in node.children:
                    below |= self.mask_at_or_below[id(child)]
                self.mask_below[id(node)] = below
                self.mask_at_or_below[id(node)] = below | (
                    1 << self.label_bit[node.label]
                )
                self.end[id(node)] = counter - 1
                continue
            bit = self.label_bit.setdefault(node.label, len(self.label_bit))
            self.pre[id(node)] = counter
            self.node_at.append(node)
            self.by_label.setdefault(node.label, []).append(counter)
            self.by_label_attrs.setdefault((node.label, node.attrs), []).append(
                counter
            )
            counter += 1
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

    # -- label bitsets --------------------------------------------------------

    def labels_mask(self, labels: Iterable[str]) -> int | None:
        """Bitmask of *labels*, or None when some label is absent from the tree.

        None means "no node of this tree can be involved in a match": the
        caller may fail the whole query without touching the tree.
        """
        mask = 0
        for label in labels:
            bit = self.label_bit.get(label)
            if bit is None:
                return None
            mask |= 1 << bit
        return mask

    def subtree_covers(self, node: TreeNode, mask: int) -> bool:
        """Do all labels of *mask* occur at *node* or below it?"""
        return mask & ~self.mask_at_or_below[id(node)] == 0

    def below_covers(self, node: TreeNode, mask: int) -> bool:
        """Do all labels of *mask* occur strictly below *node*?"""
        return mask & ~self.mask_below[id(node)] == 0

    # -- candidate enumeration ------------------------------------------------

    def _positions(
        self, positions: list[int], first: int, last: int
    ) -> Iterator[TreeNode]:
        lo = bisect_left(positions, first)
        hi = bisect_right(positions, last)
        node_at = self.node_at
        for i in range(lo, hi):
            yield node_at[positions[i]]

    def candidates(
        self,
        node: TreeNode,
        label: str | None = None,
        attrs: tuple | None = None,
        strict: bool = True,
    ) -> Iterator[TreeNode]:
        """Nodes below *node* that could match a node formula, document order.

        *label* None means wildcard (every descendant); *attrs* restricts
        to nodes with exactly that attribute tuple (the access path for
        fully-constant formulae).  With ``strict=False`` the node itself
        is included.
        """
        first = self.pre[id(node)] + (1 if strict else 0)
        last = self.end[id(node)]
        if first > last:
            return
        if label is None:
            for p in range(first, last + 1):
                yield self.node_at[p]
        elif attrs is not None:
            positions = self.by_label_attrs.get((label, attrs))
            if positions:
                yield from self._positions(positions, first, last)
        else:
            positions = self.by_label.get(label)
            if positions:
                yield from self._positions(positions, first, last)

    def descendant_count(self, node: TreeNode) -> int:
        """Number of proper descendants of *node* (O(1) from the intervals)."""
        return self.end[id(node)] - self.pre[id(node)]


def index_for(root: TreeNode) -> TreeIndex:
    """The cached :class:`TreeIndex` of *root* (built on first use).

    The index is stored on the root node itself, so repeated queries
    against the same tree object share one index, while temporary trees
    release theirs with the tree.  Trees are immutable, so a cached
    index never goes stale.
    """
    engine = getattr(root, "_engine", None)
    if engine is not None:
        return engine.index
    return TreeIndex(root)
