"""Structural tree indexes backing the pattern-evaluation engine.

A :class:`TreeIndex` is built in one DFS pass over a tree and is the
read-only half of the query engine in :mod:`repro.patterns.matching`:

* **preorder intervals** — every node occurrence gets a preorder number
  and the (inclusive) end of its subtree's preorder span, so
  "descendant of ``v``" becomes an integer range test and descendant
  candidates can be enumerated by bisection instead of tree walks;
* **label → nodes** — document-ordered preorder positions per label,
  the access path for ``//l(...)`` subpatterns;
* **(label, attrs) → nodes** — the attribute-value index, the access
  path for fully-constant node formulae such as ``//a(5)``;
* **label bitsets** — per node, a bitmask of the labels occurring in
  its subtree (and strictly below it), so "this pattern mentions a
  label that does not occur under ``v``" fails in O(1) without
  visiting a single descendant.

Nodes are keyed by identity (``id``), like the matcher's memo tables:
equal subtrees may occur at several positions and trees may even share
subtree *objects* (the same ``TreeNode`` appearing under two parents).
Sharing is safe here because match relations are position-independent:
any occurrence of a shared node has, by construction, the identical
subtree, so the last-written interval enumerates exactly its descendant
objects.

:class:`EngineStats` carries the per-run counters surfaced by the
ablation benchmarks (nodes visited, join pairs considered, cache hits,
index-prune short-circuits).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, fields
from typing import Iterable, Iterator

from repro.xmlmodel.tree import TreeNode


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (see the ablation benchmarks)."""

    nodes_visited: int = 0      # node-formula evaluations (memo misses)
    join_pairs: int = 0         # valuation pairs actually merged by joins
    cache_hits: int = 0         # memo-table hits
    index_prunes: int = 0       # evaluations cut off by a label-bitset test
    candidates_scanned: int = 0 # index candidates touched by // queries

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.as_dict().items())


class TreeIndex:
    """Precomputed access paths over one tree (see module docstring)."""

    __slots__ = (
        "root",
        "size",
        "node_at",
        "pre",
        "end",
        "by_label",
        "by_label_attrs",
        "label_bit",
        "mask_at_or_below",
        "mask_below",
    )

    def __init__(self, root: TreeNode):
        self.root = root
        #: document order: ``node_at[pre]`` is the node with preorder *pre*
        self.node_at: list[TreeNode] = []
        #: id(node) -> preorder number (last occurrence for shared nodes)
        self.pre: dict[int, int] = {}
        #: id(node) -> last preorder number inside the node's subtree
        self.end: dict[int, int] = {}
        #: label -> sorted preorder numbers of nodes with that label
        self.by_label: dict[str, list[int]] = {}
        #: (label, attrs) -> sorted preorder numbers (attribute-value index)
        self.by_label_attrs: dict[tuple[str, tuple], list[int]] = {}
        #: label -> bit position in the subtree bitmasks
        self.label_bit: dict[str, int] = {}
        #: id(node) -> bitmask of labels at the node or below it
        self.mask_at_or_below: dict[int, int] = {}
        #: id(node) -> bitmask of labels strictly below the node
        self.mask_below: dict[int, int] = {}
        self._build(root)
        self.size = len(self.node_at)

    def _build(self, root: TreeNode) -> None:
        counter = 0
        stack: list[tuple[TreeNode, bool]] = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                below = 0
                for child in node.children:
                    below |= self.mask_at_or_below[id(child)]
                self.mask_below[id(node)] = below
                self.mask_at_or_below[id(node)] = below | (
                    1 << self.label_bit[node.label]
                )
                self.end[id(node)] = counter - 1
                continue
            bit = self.label_bit.setdefault(node.label, len(self.label_bit))
            self.pre[id(node)] = counter
            self.node_at.append(node)
            self.by_label.setdefault(node.label, []).append(counter)
            self.by_label_attrs.setdefault((node.label, node.attrs), []).append(
                counter
            )
            counter += 1
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

    # -- label bitsets --------------------------------------------------------

    def labels_mask(self, labels: Iterable[str]) -> int | None:
        """Bitmask of *labels*, or None when some label is absent from the tree.

        None means "no node of this tree can be involved in a match": the
        caller may fail the whole query without touching the tree.
        """
        mask = 0
        for label in labels:
            bit = self.label_bit.get(label)
            if bit is None:
                return None
            mask |= 1 << bit
        return mask

    def subtree_covers(self, node: TreeNode, mask: int) -> bool:
        """Do all labels of *mask* occur at *node* or below it?"""
        return mask & ~self.mask_at_or_below[id(node)] == 0

    def below_covers(self, node: TreeNode, mask: int) -> bool:
        """Do all labels of *mask* occur strictly below *node*?"""
        return mask & ~self.mask_below[id(node)] == 0

    # -- candidate enumeration ------------------------------------------------

    def _positions(
        self, positions: list[int], first: int, last: int
    ) -> Iterator[TreeNode]:
        lo = bisect_left(positions, first)
        hi = bisect_right(positions, last)
        node_at = self.node_at
        for i in range(lo, hi):
            yield node_at[positions[i]]

    def candidates(
        self,
        node: TreeNode,
        label: str | None = None,
        attrs: tuple | None = None,
        strict: bool = True,
    ) -> Iterator[TreeNode]:
        """Nodes below *node* that could match a node formula, document order.

        *label* None means wildcard (every descendant); *attrs* restricts
        to nodes with exactly that attribute tuple (the access path for
        fully-constant formulae).  With ``strict=False`` the node itself
        is included.
        """
        first = self.pre[id(node)] + (1 if strict else 0)
        last = self.end[id(node)]
        if first > last:
            return
        if label is None:
            for p in range(first, last + 1):
                yield self.node_at[p]
        elif attrs is not None:
            positions = self.by_label_attrs.get((label, attrs))
            if positions:
                yield from self._positions(positions, first, last)
        else:
            positions = self.by_label.get(label)
            if positions:
                yield from self._positions(positions, first, last)

    def descendant_count(self, node: TreeNode) -> int:
        """Number of proper descendants of *node* (O(1) from the intervals)."""
        return self.end[id(node)] - self.pre[id(node)]


class CompactTreeIndex:
    """Array-backed structural index: the bitset kernel's tree layout.

    The same access paths as :class:`TreeIndex`, but nodes are *preorder
    positions* (dense ints) instead of ``TreeNode`` objects, and every
    per-node table is a contiguous array indexed by position:

    * ``label_id[p]`` / ``attrs[p]`` — interned label and attribute tuple;
    * ``end[p]`` — inclusive end of the subtree's preorder span, so
      "descendant of p" is the range ``p < q <= end[p]``;
    * ``parent[p]`` / ``first_child[p]`` / ``next_sibling[p]`` — the
      navigation arrays (``-1`` = absent), giving child enumeration
      without touching node objects;
    * ``by_label`` — document-ordered position arrays per label;
    * ``mask_at_or_below[p]`` / ``mask_below[p]`` — subtree label
      bitmasks, same pruning contract as :class:`TreeIndex`.

    Built in one DFS plus one reverse sweep (children fold into parents
    in reverse preorder, where every descendant has already finished).
    The attribute-value access path is materialized lazily per label the
    first time a fully-constant formula queries it.
    """

    __slots__ = (
        "root",
        "size",
        "label_id",
        "attrs",
        "end",
        "parent",
        "first_child",
        "next_sibling",
        "by_label",
        "label_bit",
        "mask_at_or_below",
        "mask_below",
        "_attr_index",
    )

    def __init__(self, root: TreeNode):
        self.root = root
        label_ids: list[int] = []
        attrs: list[tuple] = []
        parents: list[int] = []
        by_label: dict[str, list[int]] = {}
        label_bit: dict[str, int] = {}
        stack: list[tuple[TreeNode, int]] = [(root, -1)]
        while stack:
            node, parent_pos = stack.pop()
            pos = len(label_ids)
            bit = label_bit.setdefault(node.label, len(label_bit))
            label_ids.append(bit)
            attrs.append(node.attrs)
            parents.append(parent_pos)
            by_label.setdefault(node.label, []).append(pos)
            for child in reversed(node.children):
                stack.append((child, pos))
        n = len(label_ids)
        self.size = n
        self.label_id = array("i", label_ids)
        self.attrs = attrs
        self.parent = array("i", parents)
        self.label_bit = label_bit
        self.by_label = {label: array("i", ps) for label, ps in by_label.items()}
        end = array("i", range(n))
        at_or_below = [1 << bit for bit in label_ids]
        below = [0] * n
        for pos in range(n - 1, 0, -1):
            parent_pos = parents[pos]
            if end[pos] > end[parent_pos]:
                end[parent_pos] = end[pos]
            at_or_below[parent_pos] |= at_or_below[pos]
            below[parent_pos] |= at_or_below[pos]
        self.end = end
        self.mask_at_or_below = at_or_below
        self.mask_below = below
        first_child = array("i", [-1]) * n if n else array("i")
        next_sibling = array("i", [-1]) * n if n else array("i")
        for pos in range(n):
            if end[pos] > pos:
                first_child[pos] = pos + 1
            parent_pos = parents[pos]
            if parent_pos >= 0:
                following = end[pos] + 1
                if following <= end[parent_pos]:
                    next_sibling[pos] = following
        self.first_child = first_child
        self.next_sibling = next_sibling
        #: label -> {attrs tuple -> positions}, built on first use
        self._attr_index: dict[str, dict[tuple, list[int]]] = {}

    # -- label bitsets --------------------------------------------------------

    def labels_mask(self, labels: Iterable[str]) -> int | None:
        """Bitmask of *labels*, or None when some label is absent."""
        mask = 0
        for label in labels:
            bit = self.label_bit.get(label)
            if bit is None:
                return None
            mask |= 1 << bit
        return mask

    def subtree_covers(self, pos: int, mask: int) -> bool:
        """Do all labels of *mask* occur at position *pos* or below it?"""
        return mask & ~self.mask_at_or_below[pos] == 0

    def below_covers(self, pos: int, mask: int) -> bool:
        """Do all labels of *mask* occur strictly below position *pos*?"""
        return mask & ~self.mask_below[pos] == 0

    # -- navigation -----------------------------------------------------------

    def children(self, pos: int) -> Iterator[int]:
        """Child positions of *pos* in sibling order."""
        child = self.first_child[pos]
        while child >= 0:
            yield child
            child = self.next_sibling[child]

    def descendant_count(self, pos: int) -> int:
        return self.end[pos] - pos

    # -- candidate enumeration ------------------------------------------------

    def attr_positions(self, label: str, attrs: tuple) -> list[int]:
        """Document-ordered positions of ``label``-nodes with exactly *attrs*."""
        per_label = self._attr_index.get(label)
        if per_label is None:
            per_label = self._attr_index[label] = {}
            all_attrs = self.attrs
            for pos in self.by_label.get(label, ()):
                per_label.setdefault(all_attrs[pos], []).append(pos)
        return per_label.get(attrs, [])

    def candidates(
        self,
        pos: int,
        label: str | None = None,
        attrs: tuple | None = None,
        strict: bool = True,
    ) -> Iterator[int]:
        """Positions below *pos* that could match a node formula.

        Same contract as :meth:`TreeIndex.candidates`, over positions.
        """
        first = pos + (1 if strict else 0)
        last = self.end[pos]
        if first > last:
            return
        if label is None:
            yield from range(first, last + 1)
            return
        if attrs is not None:
            positions: "Iterable[int]" = self.attr_positions(label, attrs)
        else:
            positions = self.by_label.get(label, ())
        lo = bisect_left(positions, first)
        hi = bisect_right(positions, last)
        for i in range(lo, hi):
            yield positions[i]


def index_for(root: TreeNode) -> TreeIndex:
    """The cached :class:`TreeIndex` of *root* (built on first use).

    The index is stored on the root node itself, so repeated queries
    against the same tree object share one index, while temporary trees
    release theirs with the tree.  Trees are immutable, so a cached
    index never goes stale.
    """
    engine = getattr(root, "_engine", None)
    index = getattr(engine, "index", None)
    if isinstance(index, TreeIndex):
        return index
    # no engine yet, or a compact engine whose index speaks positions —
    # either way the caller asked for the node-object view
    return TreeIndex(root)
