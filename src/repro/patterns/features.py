"""Feature analysis of patterns: axes used, fully-specified check.

The paper classifies mappings by a signature ``sigma`` of features: the
navigation axes (child, descendant, next-sibling, following-sibling),
wildcard, and the data comparisons ``=`` / ``!=``.  The axis part of the
signature is determined by the patterns; this module extracts it.

*Fully-specified* patterns (grammar (5), used in the PTIME result of
Theorem 6.3 and the closure result of Theorem 8.2) disallow wildcard,
descendant, and both horizontal axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence

#: Canonical feature names used in signatures.
CHILD = "child"
DESCENDANT = "descendant"
NEXT_SIBLING = "next-sibling"
FOLLOWING_SIBLING = "following-sibling"
WILDCARD_FEATURE = "wildcard"
EQUALITY = "="
INEQUALITY = "!="

#: The paper's shorthand groups.
VERTICAL = frozenset({CHILD, DESCENDANT})          # ⇓
HORIZONTAL = frozenset({NEXT_SIBLING, FOLLOWING_SIBLING})  # ⇒
COMPARISONS = frozenset({EQUALITY, INEQUALITY})    # ∼

ALL_FEATURES = VERTICAL | HORIZONTAL | COMPARISONS | {WILDCARD_FEATURE}


@dataclass(frozen=True)
class Axes:
    """The navigational features used by a pattern."""

    descendant: bool = False
    next_sibling: bool = False
    following_sibling: bool = False
    wildcard: bool = False

    def as_signature(self) -> frozenset[str]:
        """Feature-name set; the child axis is always present by convention."""
        features = {CHILD}
        if self.descendant:
            features.add(DESCENDANT)
        if self.next_sibling:
            features.add(NEXT_SIBLING)
        if self.following_sibling:
            features.add(FOLLOWING_SIBLING)
        if self.wildcard:
            features.add(WILDCARD_FEATURE)
        return frozenset(features)

    def __or__(self, other: "Axes") -> "Axes":
        return Axes(
            self.descendant or other.descendant,
            self.next_sibling or other.next_sibling,
            self.following_sibling or other.following_sibling,
            self.wildcard or other.wildcard,
        )


def axes_of(pattern: Pattern) -> Axes:
    """Compute which axes/wildcard the pattern uses."""
    descendant = False
    next_sibling = False
    following_sibling = False
    wildcard = False

    def walk(p: Pattern) -> None:
        nonlocal descendant, next_sibling, following_sibling, wildcard
        if p.label == WILDCARD:
            wildcard = True
        for item in p.items:
            if isinstance(item, Descendant):
                descendant = True
                walk(item.pattern)
            else:
                assert isinstance(item, Sequence)
                for connector in item.connectors:
                    if connector == "next":
                        next_sibling = True
                    else:
                        following_sibling = True
                for element in item.elements:
                    walk(element)

    walk(pattern)
    return Axes(descendant, next_sibling, following_sibling, wildcard)


def is_fully_specified(pattern: Pattern) -> bool:
    """Grammar (5): no wildcard, no descendant, no horizontal ordering."""
    axes = axes_of(pattern)
    return not (
        axes.wildcard or axes.descendant or axes.next_sibling or axes.following_sibling
    )


def uses_only_child_axis(pattern: Pattern) -> bool:
    """True iff the pattern stays in the ``⇓``-free fragment {child} (+wildcard)."""
    axes = axes_of(pattern)
    return not (axes.descendant or axes.next_sibling or axes.following_sibling)
