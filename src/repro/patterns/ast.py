"""AST for the extended tree patterns of the paper (grammar (2)).

    pi     := l(x)[lambda]                         patterns
    lambda := eps | mu | //pi | lambda, lambda     lists
    mu     := pi | pi -> mu | pi ->* mu            sequences

A :class:`Pattern` node carries

* ``label`` — an element type or the wildcard ``_``,
* ``vars`` — ``None`` when the pattern says nothing about attributes (the
  ``SM°`` shape ``l[lambda]``), or a tuple of terms (:class:`~repro.values.Var`,
  :class:`~repro.values.Const`, or, on target sides of Skolem stds,
  :class:`~repro.values.SkolemTerm`) that must equal the node's attribute
  tuple position-wise,
* ``items`` — the list ``lambda``: each item is either a
  :class:`Sequence` (``mu``, a chain of patterns related by next-sibling
  ``->`` / following-sibling ``->*``) or a :class:`Descendant` (``//pi``).

Patterns are immutable and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Literal, Union as TypingUnion

from repro.values import Const, SkolemTerm, Term, Var

#: The wildcard label.
WILDCARD = "_"

#: Connectors inside sequences: ``"next"`` for ``->``, ``"following"`` for ``->*``.
Connector = Literal["next", "following"]


@dataclass(frozen=True, slots=True)
class Pattern:
    """A tree pattern ``label(vars)[items]``."""

    label: str
    vars: tuple[Term, ...] | None = None
    items: tuple["ListItem", ...] = ()

    def __post_init__(self):
        for item in self.items:
            if not isinstance(item, (Sequence, Descendant)):
                raise TypeError(f"list item must be Sequence or Descendant: {item!r}")

    # -- views -------------------------------------------------------------

    def subpatterns(self) -> Iterator["Pattern"]:
        """All pattern nodes of the AST in document order (self first)."""
        yield self
        for item in self.items:
            if isinstance(item, Descendant):
                yield from item.pattern.subpatterns()
            else:
                for element in item.elements:
                    yield from element.subpatterns()

    def terms(self) -> Iterator[Term]:
        """All attribute terms in document order (with repeats)."""
        for sub in self.subpatterns():
            if sub.vars is not None:
                yield from sub.vars

    def variables(self) -> tuple[Var, ...]:
        """Distinct variables in order of first occurrence."""
        seen: dict[Var, None] = {}
        for term in self.terms():
            for var in _term_vars(term):
                seen.setdefault(var, None)
        return tuple(seen)

    def has_repeated_variables(self) -> bool:
        """True iff some variable occurs more than once (implicit equality)."""
        seen: set[Var] = set()
        for term in self.terms():
            for var in _term_vars(term):
                if var in seen:
                    return True
                seen.add(var)
        return False

    def labels_used(self) -> frozenset[str]:
        """All element-type labels (the wildcard excluded)."""
        return frozenset(
            sub.label for sub in self.subpatterns() if sub.label != WILDCARD
        )

    @property
    def size(self) -> int:
        """Number of pattern nodes."""
        return sum(1 for __ in self.subpatterns())

    # -- transformations ------------------------------------------------------

    def map_patterns(self, fn: Callable[["Pattern"], "Pattern"]) -> "Pattern":
        """Rebuild bottom-up, applying *fn* to every (already rebuilt) node."""
        new_items: list[ListItem] = []
        for item in self.items:
            if isinstance(item, Descendant):
                new_items.append(Descendant(item.pattern.map_patterns(fn)))
            else:
                new_items.append(
                    Sequence(
                        tuple(e.map_patterns(fn) for e in item.elements),
                        item.connectors,
                    )
                )
        return fn(Pattern(self.label, self.vars, tuple(new_items)))

    def strip_values(self) -> "Pattern":
        """Forget all attribute terms (the ``SM°`` projection of Section 3)."""
        return self.map_patterns(lambda p: Pattern(p.label, None, p.items))

    def substitute(self, assignment: dict[Var, object]) -> "Pattern":
        """Replace assigned variables by constants (unassigned ones remain)."""

        def replace(term: Term) -> Term:
            if isinstance(term, Var) and term in assignment:
                return Const(assignment[term])
            if isinstance(term, SkolemTerm):
                return SkolemTerm(term.function, tuple(replace(a) for a in term.args))
            return term

        def on_node(p: Pattern) -> Pattern:
            if p.vars is None:
                return p
            return Pattern(p.label, tuple(replace(t) for t in p.vars), p.items)

        return self.map_patterns(on_node)

    def rename_variables(self, renaming: dict[Var, Var]) -> "Pattern":
        """Apply a variable renaming throughout."""

        def replace(term: Term) -> Term:
            if isinstance(term, Var):
                return renaming.get(term, term)
            if isinstance(term, SkolemTerm):
                return SkolemTerm(term.function, tuple(replace(a) for a in term.args))
            return term

        def on_node(p: Pattern) -> Pattern:
            if p.vars is None:
                return p
            return Pattern(p.label, tuple(replace(t) for t in p.vars), p.items)

        return self.map_patterns(on_node)

    def __str__(self) -> str:
        from repro.patterns.parser import serialize_pattern

        return serialize_pattern(self)


@dataclass(frozen=True, slots=True)
class Sequence:
    """A sequence ``pi1 (-> | ->*) pi2 ... pik`` matched among the children.

    ``connectors[i]`` relates ``elements[i]`` and ``elements[i+1]``:
    ``"next"`` requires them on adjacent siblings, ``"following"`` on
    siblings in strict left-to-right order (any gap).
    """

    elements: tuple[Pattern, ...]
    connectors: tuple[Connector, ...] = ()

    def __post_init__(self):
        if len(self.connectors) != len(self.elements) - 1:
            raise ValueError(
                f"sequence with {len(self.elements)} elements needs "
                f"{len(self.elements) - 1} connectors, got {len(self.connectors)}"
            )
        for connector in self.connectors:
            if connector not in ("next", "following"):
                raise ValueError(f"unknown connector {connector!r}")


@dataclass(frozen=True, slots=True)
class Descendant:
    """A ``//pi`` list item: ``pi`` must match some proper descendant.

    We read "descendant" as XPath does: a child, grandchild, etc. — never
    the node itself.
    """

    pattern: Pattern


ListItem = TypingUnion[Sequence, Descendant]


def _term_vars(term: Term) -> Iterator[Var]:
    if isinstance(term, Var):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.args:
            yield from _term_vars(arg)


def _coerce_term(value) -> Term:
    if isinstance(value, (Var, Const, SkolemTerm)):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(value)


def node(
    label: str,
    vars: tuple | list | None = None,
    items: tuple | list = (),
) -> Pattern:
    """Convenience constructor for :class:`Pattern`.

    Strings inside *vars* become variables, other plain values become
    constants, and bare :class:`Pattern` objects inside *items* are wrapped
    into singleton sequences::

        node("prof", ["x"], [node("teach"), Descendant(node("course", ["c"]))])
    """
    coerced_vars = None if vars is None else tuple(_coerce_term(v) for v in vars)
    coerced_items: list[ListItem] = []
    for item in items:
        if isinstance(item, Pattern):
            coerced_items.append(Sequence((item,)))
        elif isinstance(item, (Sequence, Descendant)):
            coerced_items.append(item)
        else:
            raise TypeError(f"cannot use {item!r} as a pattern list item")
    return Pattern(label, coerced_vars, tuple(coerced_items))


def seq(*parts) -> Sequence:
    """Build a sequence from alternating patterns and connector strings::

        seq(node("course", ["c1"]), "->", node("course", ["c2"]))
        seq(node("a"), "->*", node("b"), "->", node("c"))
    """
    if not parts or not isinstance(parts[0], Pattern):
        raise TypeError("seq() starts with a Pattern")
    elements = [parts[0]]
    connectors: list[Connector] = []
    index = 1
    while index < len(parts):
        connector = parts[index]
        if connector == "->":
            connectors.append("next")
        elif connector == "->*":
            connectors.append("following")
        else:
            raise TypeError(f"expected '->' or '->*', got {connector!r}")
        if index + 1 >= len(parts) or not isinstance(parts[index + 1], Pattern):
            raise TypeError("connector must be followed by a Pattern")
        elements.append(parts[index + 1])
        index += 2
    return Sequence(tuple(elements), tuple(connectors))
