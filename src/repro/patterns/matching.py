"""Pattern matching semantics (Section 3 of the paper).

The relation ``(T, s) |= pi(a)`` is implemented by computing, for a node and
a pattern, the *set of valuations* (assignments of data values to the
pattern's variables) under which the pattern matches at that node.  This is
conjunctive-query evaluation over trees: valuations of subpatterns are
joined, and a join fails when the same variable would receive two values
(which is exactly how repeated variables express equality).

Patterns are witnessed at the root (``T |= pi`` iff the pattern's root node
formula matches the root of ``T``); descendant subpatterns ``//pi`` may
match anywhere strictly below their context node.

The evaluator memoizes on ``(node identity, subpattern)`` so that repeated
subtrees and descendant recursion stay polynomial for a fixed pattern
(matching the paper's DLOGSPACE/PTIME data-complexity results in spirit).
"""

from __future__ import annotations

from repro.errors import XsmError
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.values import Const, SkolemTerm, Var
from repro.xmlmodel.tree import TreeNode

#: A valuation is stored as a frozenset of (Var, value) pairs so sets of
#: valuations can be deduplicated; the public API converts them to dicts.
Valuation = frozenset

_EMPTY_VALUATION: Valuation = frozenset()


def _merge(a: Valuation, b: Valuation) -> Valuation | None:
    """Join two valuations; None on conflicting variable bindings."""
    if len(b) > len(a):
        a, b = b, a
    merged = dict(a)
    for var, value in b:
        existing = merged.get(var, _MISSING)
        if existing is _MISSING:
            merged[var] = value
        elif existing != value:
            return None
    return frozenset(merged.items())


_MISSING = object()


def _join(lhs: set[Valuation], rhs: set[Valuation]) -> set[Valuation]:
    out: set[Valuation] = set()
    for a in lhs:
        for b in rhs:
            merged = _merge(a, b)
            if merged is not None:
                out.add(merged)
    return out


class _Matcher:
    """One evaluation run over a fixed tree; holds the memo tables."""

    def __init__(self):
        # (id(node), pattern) -> valuations of the pattern matched AT node
        self._at: dict[tuple[int, Pattern], set[Valuation]] = {}
        # (id(node), pattern) -> valuations matched at node or any descendant
        self._below: dict[tuple[int, Pattern], set[Valuation]] = {}

    def match_at(self, node: TreeNode, pattern: Pattern) -> set[Valuation]:
        key = (id(node), pattern)
        cached = self._at.get(key)
        if cached is not None:
            return cached
        result = self._match_at(node, pattern)
        self._at[key] = result
        return result

    def _match_at(self, node: TreeNode, pattern: Pattern) -> set[Valuation]:
        base = self._match_node_formula(node, pattern)
        if base is None:
            return set()
        valuations = {base}
        for item in pattern.items:
            if isinstance(item, Descendant):
                item_valuations = self.match_strictly_below(node, item.pattern)
            else:
                item_valuations = self._match_sequence(node.children, item)
            if not item_valuations:
                return set()
            valuations = _join(valuations, item_valuations)
            if not valuations:
                return set()
        return valuations

    def _match_node_formula(
        self, node: TreeNode, pattern: Pattern
    ) -> Valuation | None:
        """Match label and attribute tuple; return the induced valuation."""
        if pattern.label != WILDCARD and pattern.label != node.label:
            return None
        if pattern.vars is None:
            return _EMPTY_VALUATION
        if len(pattern.vars) != len(node.attrs):
            return None
        binding: dict[Var, object] = {}
        for term, value in zip(pattern.vars, node.attrs):
            if isinstance(term, Var):
                bound = binding.get(term, _MISSING)
                if bound is _MISSING:
                    binding[term] = value
                elif bound != value:
                    return None
            elif isinstance(term, Const):
                if term.value != value:
                    return None
            elif isinstance(term, SkolemTerm):
                raise XsmError(
                    "Skolem terms cannot be matched directly; instantiate the "
                    "pattern through repro.mappings.skolem first"
                )
            else:
                raise TypeError(f"unexpected term {term!r}")
        return frozenset(binding.items())

    def match_strictly_below(
        self, node: TreeNode, pattern: Pattern
    ) -> set[Valuation]:
        """Valuations of *pattern* matched at some proper descendant of *node*."""
        result: set[Valuation] = set()
        for child in node.children:
            result |= self._match_at_or_below(child, pattern)
        return result

    def _match_at_or_below(self, node: TreeNode, pattern: Pattern) -> set[Valuation]:
        key = (id(node), pattern)
        cached = self._below.get(key)
        if cached is not None:
            return cached
        result = set(self.match_at(node, pattern))
        for child in node.children:
            result |= self._match_at_or_below(child, pattern)
        self._below[key] = result
        return result

    def _match_sequence(
        self, children: tuple[TreeNode, ...], sequence: Sequence
    ) -> set[Valuation]:
        """Valuations under which the sequence matches among *children*."""
        result: set[Valuation] = set()
        for start in range(len(children)):
            result |= self._match_sequence_from(children, start, sequence, 0)
        return result

    def _match_sequence_from(
        self,
        children: tuple[TreeNode, ...],
        position: int,
        sequence: Sequence,
        index: int,
    ) -> set[Valuation]:
        """Match ``sequence.elements[index:]`` with element *index* at *position*."""
        here = self.match_at(children[position], sequence.elements[index])
        if not here or index == len(sequence.elements) - 1:
            return here
        connector = sequence.connectors[index]
        if connector == "next":
            if position + 1 >= len(children):
                return set()
            rest = self._match_sequence_from(children, position + 1, sequence, index + 1)
            return _join(here, rest)
        # following-sibling: any strictly later position
        result: set[Valuation] = set()
        for later in range(position + 1, len(children)):
            rest = self._match_sequence_from(children, later, sequence, index + 1)
            if rest:
                result |= _join(here, rest)
        return result


def find_matches(pattern: Pattern, root: TreeNode) -> list[dict[Var, object]]:
    """All valuations under which ``(T, root) |= pattern``, as dicts.

    Every returned dict assigns all of ``pattern.variables()``.
    """
    matcher = _Matcher()
    return [dict(valuation) for valuation in matcher.match_at(root, pattern)]


def find_matches_anywhere(pattern: Pattern, root: TreeNode) -> list[dict[Var, object]]:
    """All valuations matching *pattern* at the root or any descendant."""
    matcher = _Matcher()
    return [dict(v) for v in matcher._match_at_or_below(root, pattern)]


def matches_at_root(pattern: Pattern, root: TreeNode) -> bool:
    """``T |= pi`` for some valuation (Boolean satisfaction at the root)."""
    return bool(_Matcher().match_at(root, pattern))


def evaluate(pattern: Pattern, root: TreeNode) -> set[tuple]:
    """The answer set ``pi(T)``: tuples over ``pattern.variables()`` order."""
    variables = pattern.variables()
    return {
        tuple(valuation[var] for var in variables)
        for valuation in find_matches(pattern, root)
    }


def holds(pattern: Pattern, root: TreeNode, assignment: dict[Var, object]) -> bool:
    """``T |= pi(a)``: does the pattern match under (an extension of) *assignment*?

    Variables not mentioned in *assignment* are existential.
    """
    return matches_at_root(pattern.substitute(assignment), root)
