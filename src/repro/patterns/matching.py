"""Pattern matching semantics (Section 3 of the paper), as a query engine.

The relation ``(T, s) |= pi(a)`` is implemented by computing, for a node and
a pattern, the *set of valuations* (assignments of data values to the
pattern's variables) under which the pattern matches at that node.  This is
conjunctive-query evaluation over trees, and the evaluator is built like a
small query engine:

* a per-tree :class:`~repro.patterns.index.TreeIndex` (label → nodes,
  preorder intervals, attribute-value index, per-node label bitsets)
  supplies the access paths, so ``//pi`` subpatterns enumerate candidate
  nodes by index lookup instead of walking the tree, and a pattern whose
  labels do not occur under a node fails in O(1);
* subpattern valuation sets are combined by **hash joins** keyed on the
  variables the two sides share (repeated variables express equality, so
  a join conflict is exactly a hash-bucket miss);
* Boolean callers (``matches_at_root``, ``holds``, the consistency and
  membership machinery) run in a **semi-join mode** that projects every
  intermediate valuation set down to the *join variables* — variables
  occurring in at least two term positions.  Variables used once are
  checked locally and dropped, so patterns without repeated variables
  evaluate with constant-size intermediate relations and ``//`` queries
  short-circuit on the first witness.

Engines are cached on the tree's root node and shared across calls, so
repeated queries against the same tree (membership checks one std at a
time, bounded searches one candidate at a time) reuse both the index and
the memo tables.  The memo key is ``(node identity, subpattern,
projection)``, keeping repeated subtrees and descendant recursion
polynomial for a fixed pattern — matching the paper's DLOGSPACE/PTIME
data-complexity results in spirit.
"""

from __future__ import annotations

import time

from repro.errors import XsmError
from repro.obs import REGISTRY, trace
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence, _term_vars
from repro.patterns.index import EngineStats, TreeIndex
from repro.values import Const, SkolemTerm, Var
from repro.xmlmodel.tree import TreeNode

#: Pre-bound children: these sit on hot paths, so label lookups are paid once.
_ENGINE_BUILDS = REGISTRY.counter(
    "repro_pattern_engines_total",
    "Pattern engines built (one per distinct tree root queried)",
)
_ENGINE_BUILD_SECONDS = REGISTRY.histogram(
    "repro_pattern_engine_build_seconds",
    "Wall-clock seconds to index a tree and build its pattern engine",
)
_QUERIES = REGISTRY.counter(
    "repro_pattern_queries_total",
    "Pattern queries through the public matching entry points",
    ("entry",),
)
_Q_FIND = _QUERIES.labels(entry="find_matches")
_Q_FIND_ANYWHERE = _QUERIES.labels(entry="find_matches_anywhere")
_Q_EXISTS_ANYWHERE = _QUERIES.labels(entry="matches_anywhere")
_Q_AT_ROOT = _QUERIES.labels(entry="matches_at_root")

#: A valuation is stored as a frozenset of (Var, value) pairs so sets of
#: valuations can be deduplicated; the public API converts them to dicts.
Valuation = frozenset

_EMPTY_VALUATION: Valuation = frozenset()

#: The two constant relations over zero variables: false and true.
_EMPTY_REL: frozenset = frozenset()
_TRUE_REL: frozenset = frozenset((_EMPTY_VALUATION,))

_MISSING = object()


class _PatternInfo:
    """Static, per-engine analysis of one pattern node."""

    __slots__ = ("formula_vars", "item_vars", "all_vars", "const_attrs")

    def __init__(self, pattern: Pattern):
        formula: set[Var] = set()
        if pattern.vars is not None:
            for term in pattern.vars:
                formula.update(_term_vars(term))
        self.formula_vars = frozenset(formula)
        self.item_vars: tuple[frozenset[Var], ...] = tuple(
            frozenset(
                var
                for element in (
                    (item.pattern,) if isinstance(item, Descendant) else item.elements
                )
                for var in element.variables()
            )
            for item in pattern.items
        )
        self.all_vars = frozenset(pattern.variables())
        #: attribute tuple when every term is a constant (index access path)
        if pattern.vars is not None and all(
            isinstance(t, Const) for t in pattern.vars
        ):
            self.const_attrs: tuple | None = tuple(t.value for t in pattern.vars)
        else:
            self.const_attrs = None


class PatternEngine:
    """Evaluates patterns over one fixed tree; index, memo and counters.

    One engine per tree root, obtained via :func:`engine_for`.  All
    methods take an optional *keep* projection: ``None`` computes full
    valuation sets (over all pattern variables); a frozenset of variables
    runs the semi-join mode, projecting intermediate sets onto ``keep``
    (which must contain every variable shared between two term
    positions — see :meth:`join_variables`).
    """

    def __init__(self, root: TreeNode):
        self.root = root
        self.index = TreeIndex(root)
        self.stats = EngineStats()
        self._info: dict[Pattern, _PatternInfo] = {}
        self._mask: dict[Pattern, int | None] = {}
        self._join_vars: dict[Pattern, frozenset[Var]] = {}
        # (id(node), pattern, keep) -> relation matched AT the node
        self._at: dict[tuple, frozenset] = {}
        # (id(node), pattern, keep) -> relation matched strictly below
        self._below: dict[tuple, frozenset] = {}

    # -- static pattern analysis -------------------------------------------

    def info(self, pattern: Pattern) -> _PatternInfo:
        cached = self._info.get(pattern)
        if cached is None:
            cached = self._info[pattern] = _PatternInfo(pattern)
        return cached

    def mask(self, pattern: Pattern) -> int | None:
        """Label bitmask of *pattern* against this tree; None = unmatchable."""
        if pattern not in self._mask:
            self._mask[pattern] = self.index.labels_mask(pattern.labels_used())
        return self._mask[pattern]

    def join_variables(self, pattern: Pattern) -> frozenset[Var]:
        """Variables occurring in >= 2 term positions (the join variables).

        Projecting valuation sets onto this set preserves joins exactly:
        any variable shared between two subpattern relations occurs twice,
        so it is kept; a variable occurring once constrains nothing beyond
        its own node formula and may be dropped after binding.
        """
        cached = self._join_vars.get(pattern)
        if cached is None:
            counts: dict[Var, int] = {}
            for term in pattern.terms():
                for var in _term_vars(term):
                    counts[var] = counts.get(var, 0) + 1
            cached = frozenset(v for v, c in counts.items() if c > 1)
            self._join_vars[pattern] = cached
        return cached

    # -- public evaluation --------------------------------------------------

    def relation_at_root(self, pattern: Pattern) -> frozenset:
        """The full valuation set of *pattern* at the root."""
        return self.match_at(self.root, pattern)

    def find_matches(self, pattern: Pattern) -> list[dict[Var, object]]:
        """All valuations of ``(T, root) |= pattern``, as dicts."""
        return [dict(v) for v in self.match_at(self.root, pattern)]

    def match_anywhere(self, pattern: Pattern) -> frozenset:
        """Valuations of *pattern* matched at the root or any descendant."""
        return self.match_at(self.root, pattern) | self.match_strictly_below(
            self.root, pattern
        )

    def exists_at_root(self, pattern: Pattern) -> bool:
        """``T |= pattern`` for some valuation (semi-join mode)."""
        return bool(
            self.match_at(self.root, pattern, self.join_variables(pattern))
        )

    def exists_anywhere(self, pattern: Pattern) -> bool:
        """Does *pattern* match at the root or at any descendant?"""
        keep = self.join_variables(pattern)
        return bool(self.match_at(self.root, pattern, keep)) or bool(
            self.match_strictly_below(self.root, pattern, keep)
        )

    # -- the evaluator ------------------------------------------------------

    def match_at(
        self, node: TreeNode, pattern: Pattern, keep: frozenset | None = None
    ) -> frozenset:
        """Relation of valuations under which *pattern* matches AT *node*."""
        key = (id(node), pattern, keep)
        cached = self._at.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._match_at(node, pattern, keep)
        self._at[key] = result
        return result

    def _match_at(
        self, node: TreeNode, pattern: Pattern, keep: frozenset | None
    ) -> frozenset:
        mask = self.mask(pattern)
        if mask is None or not self.index.subtree_covers(node, mask):
            self.stats.index_prunes += 1
            return _EMPTY_REL
        self.stats.nodes_visited += 1
        base = self._match_node_formula(node, pattern)
        if base is None:
            return _EMPTY_REL
        info = self.info(pattern)
        if keep is None:
            acc_vars = info.formula_vars
        else:
            if base:
                base = frozenset(p for p in base if p[0] in keep)
            acc_vars = info.formula_vars & keep
        valuations = frozenset((base,))
        for item, full_item_vars in zip(pattern.items, info.item_vars):
            if isinstance(item, Descendant):
                rel = self.match_strictly_below(node, item.pattern, keep)
            else:
                rel = self._match_sequence(node, item, keep)
            if not rel:
                return _EMPTY_REL
            item_vars = full_item_vars if keep is None else full_item_vars & keep
            valuations = self._hash_join(valuations, acc_vars, rel, item_vars)
            if not valuations:
                return _EMPTY_REL
            acc_vars |= item_vars
        return valuations

    def _match_node_formula(
        self, node: TreeNode, pattern: Pattern
    ) -> Valuation | None:
        """Match label and attribute tuple; return the induced valuation."""
        if pattern.label != WILDCARD and pattern.label != node.label:
            return None
        if pattern.vars is None:
            return _EMPTY_VALUATION
        if len(pattern.vars) != len(node.attrs):
            return None
        binding: dict[Var, object] = {}
        for term, value in zip(pattern.vars, node.attrs):
            if isinstance(term, Var):
                bound = binding.get(term, _MISSING)
                if bound is _MISSING:
                    binding[term] = value
                elif bound != value:
                    return None
            elif isinstance(term, Const):
                if term.value != value:
                    return None
            elif isinstance(term, SkolemTerm):
                raise XsmError(
                    "Skolem terms cannot be matched directly; instantiate the "
                    "pattern through repro.mappings.skolem first"
                )
            else:
                raise TypeError(f"unexpected term {term!r}")
        return frozenset(binding.items())

    def match_strictly_below(
        self, node: TreeNode, pattern: Pattern, keep: frozenset | None = None
    ) -> frozenset:
        """Valuations of *pattern* matched at some proper descendant of *node*."""
        key = (id(node), pattern, keep)
        cached = self._below.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._match_below(node, pattern, keep)
        self._below[key] = result
        return result

    def _match_below(
        self, node: TreeNode, pattern: Pattern, keep: frozenset | None
    ) -> frozenset:
        mask = self.mask(pattern)
        if mask is None or not self.index.below_covers(node, mask):
            self.stats.index_prunes += 1
            return _EMPTY_REL
        info = self.info(pattern)
        existence_only = keep is not None and not (info.all_vars & keep)
        label = None if pattern.label == WILDCARD else pattern.label
        attrs = info.const_attrs if label is not None else None
        out: set = set()
        for candidate in self.index.candidates(node, label, attrs):
            self.stats.candidates_scanned += 1
            rel = self.match_at(candidate, pattern, keep)
            if rel:
                if existence_only:
                    return _TRUE_REL
                out |= rel
        return frozenset(out) if out else _EMPTY_REL

    def _match_sequence(
        self, node: TreeNode, sequence: Sequence, keep: frozenset | None
    ) -> frozenset:
        """Relation under which the sequence matches among *node*'s children."""
        children = node.children
        n = len(children)
        if n == 0:
            return _EMPTY_REL
        elements = sequence.elements
        rows = [
            [self.match_at(child, element, keep) for child in children]
            for element in elements
        ]
        evars = [
            self.info(e).all_vars if keep is None else self.info(e).all_vars & keep
            for e in elements
        ]
        # suffix[p]: relation of elements[i:] with element i at position p;
        # built right to left so each (connector, position) joins once.
        suffix = rows[-1]
        suffix_vars = evars[-1]
        for i in range(len(elements) - 2, -1, -1):
            here = rows[i]
            if sequence.connectors[i] == "next":
                nxt = suffix[1:] + [_EMPTY_REL]
            else:  # following-sibling: any strictly later position
                nxt = [_EMPTY_REL] * n
                acc: frozenset = _EMPTY_REL
                for p in range(n - 2, -1, -1):
                    later = suffix[p + 1]
                    if later:
                        acc = acc | later
                    nxt[p] = acc
            suffix = [
                self._hash_join(here[p], evars[i], nxt[p], suffix_vars)
                if here[p] and nxt[p]
                else _EMPTY_REL
                for p in range(n)
            ]
            suffix_vars = evars[i] | suffix_vars
        result: frozenset = _EMPTY_REL
        for rel in suffix:
            if rel:
                result = result | rel
        return result

    def _hash_join(
        self,
        lhs: frozenset,
        lhs_vars: frozenset[Var],
        rhs: frozenset,
        rhs_vars: frozenset[Var],
    ) -> frozenset:
        return hash_join(lhs, lhs_vars, rhs, rhs_vars, self.stats)


def hash_join(
    lhs: frozenset,
    lhs_vars: frozenset[Var],
    rhs: frozenset,
    rhs_vars: frozenset[Var],
    stats: EngineStats,
) -> frozenset:
    """Join two relations on their shared variables (hash join).

    Every valuation of a relation binds exactly the relation's
    variable set, so two valuations merge iff they agree on the
    shared variables — the hash key.  Shared by the object engine and
    the compact engine (:mod:`repro.patterns.compact`), which differ in
    how they reach nodes, not in how they combine valuations.
    """
    if not lhs or not rhs:
        return _EMPTY_REL
    if not lhs_vars:
        return rhs  # lhs is the true relation over zero variables
    if not rhs_vars:
        return lhs
    if len(lhs) == 1 and len(rhs) == 1:
        # singleton x singleton: merge and check each var binds one value
        (a,) = lhs
        (b,) = rhs
        merged = a | b
        if len({pair[0] for pair in merged}) == len(merged):
            stats.join_pairs += 1
            return frozenset((merged,))
        return _EMPTY_REL
    shared = lhs_vars & rhs_vars
    if not shared:
        stats.join_pairs += len(lhs) * len(rhs)
        return frozenset(a | b for a in lhs for b in rhs)
    build, probe = (lhs, rhs) if len(lhs) <= len(rhs) else (rhs, lhs)
    key_vars = tuple(sorted(shared, key=lambda v: v.name))
    table: dict[tuple, list] = {}
    for valuation in build:
        values = dict(valuation)
        key = tuple(values[v] for v in key_vars)
        table.setdefault(key, []).append(valuation)
    out: list = []
    for valuation in probe:
        values = dict(valuation)
        bucket = table.get(tuple(values[v] for v in key_vars))
        if bucket:
            stats.join_pairs += len(bucket)
            out.extend(other | valuation for other in bucket)
    return frozenset(out)


def _size_hint(root: TreeNode, limit: int) -> int:
    """Node count of *root*, counted only far enough to clear *limit*.

    Kernel selection needs "bigger than the threshold?", not the exact
    size, so the walk stops as soon as the answer is known — tiny trees
    pay a full (cheap) count, huge trees pay O(limit).
    """
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        if count > limit:
            return count
        stack.extend(node.children)
    return count


def engine_for(root: TreeNode) -> PatternEngine:
    """The cached pattern engine of *root* (built on first use).

    Stored on the root node itself: trees are immutable, so the engine's
    index and memo tables never go stale, and they are released together
    with the tree object.  Large documents get the array-backed
    :class:`~repro.patterns.compact.CompactPatternEngine` (same public
    surface, positional internals); the cutover — and the
    ``REPRO_KERNEL`` override — lives in :mod:`repro.kernel`.
    """
    from repro.kernel import AUTO_THRESHOLDS, BITSET, select_kernel

    engine = getattr(root, "_engine", None)
    if engine is None:
        threshold = AUTO_THRESHOLDS["pattern-engine"]
        kernel = select_kernel("pattern-engine", _size_hint(root, threshold))
        started = time.perf_counter()
        with trace("pattern-engine-build"):
            if kernel == BITSET:
                from repro.patterns.compact import CompactPatternEngine

                engine = CompactPatternEngine(root)
            else:
                engine = PatternEngine(root)
        _ENGINE_BUILDS.inc()
        _ENGINE_BUILD_SECONDS.observe(time.perf_counter() - started)
        root._engine = engine
    return engine


def find_matches(pattern: Pattern, root: TreeNode) -> list[dict[Var, object]]:
    """All valuations under which ``(T, root) |= pattern``, as dicts.

    Every returned dict assigns all of ``pattern.variables()``.
    """
    _Q_FIND.inc()
    return engine_for(root).find_matches(pattern)


def find_matches_anywhere(pattern: Pattern, root: TreeNode) -> list[dict[Var, object]]:
    """All valuations matching *pattern* at the root or any descendant."""
    _Q_FIND_ANYWHERE.inc()
    return [dict(v) for v in engine_for(root).match_anywhere(pattern)]


def matches_anywhere(pattern: Pattern, root: TreeNode) -> bool:
    """Does *pattern* match at the root or any descendant? (Boolean mode.)"""
    _Q_EXISTS_ANYWHERE.inc()
    return engine_for(root).exists_anywhere(pattern)


def matches_at_root(pattern: Pattern, root: TreeNode) -> bool:
    """``T |= pi`` for some valuation (Boolean satisfaction at the root)."""
    _Q_AT_ROOT.inc()
    return engine_for(root).exists_at_root(pattern)


def evaluate(pattern: Pattern, root: TreeNode) -> set[tuple]:
    """The answer set ``pi(T)``: tuples over ``pattern.variables()`` order."""
    variables = pattern.variables()
    return {
        tuple(valuation[var] for var in variables)
        for valuation in find_matches(pattern, root)
    }


def holds(pattern: Pattern, root: TreeNode, assignment: dict[Var, object]) -> bool:
    """``T |= pi(a)``: does the pattern match under (an extension of) *assignment*?

    Variables not mentioned in *assignment* are existential.
    """
    return matches_at_root(pattern.substitute(assignment), root)
