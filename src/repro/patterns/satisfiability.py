"""Pattern satisfiability with respect to a DTD (Lemma 4.1).

The problem: given a DTD ``D`` and a pattern ``pi``, is there a tree
``T |= D`` with ``pi(T)`` non-empty?  It is NP-complete in general; this
module decides it *exactly*, in two layers.

1. **Structural layer.**  The product of the DTD automaton and the
   pattern's closure automaton has an accepting reachable state iff some
   conforming tree matches the pattern structurally (labels, arities,
   axes).  If the pattern mentions no constants this settles the question:
   decorating the structural witness with one single data value satisfies
   every (repeated-variable) equality constraint.

2. **Value layer** (*tag lifting*).  With constants, values can genuinely
   conflict (``r[a(3), a(5)]`` against ``r -> a`` is unsatisfiable because
   the single ``a`` child would need two values).  The key observation: if
   a witness exists at all, collapsing every value outside the pattern's
   constant set ``C`` to one fresh value ``f`` preserves the match (the
   pattern has no inequalities, and equalities survive the collapse).  So
   it suffices to search for witnesses over the finite domain
   ``C ∪ {f}`` — and such witnesses are recognized by tree automata over
   the *lifted alphabet* of letters ``(label, value-tags)``.  Repeated
   variables are eliminated first by enumerating their tag assignment
   (at most ``(|C|+1)^r`` cases), after which satisfaction is purely
   letter-local and the closure-automaton machinery applies unchanged.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.errors import XsmError
from repro.patterns.ast import WILDCARD, Pattern
from repro.patterns.matching import matches_at_root
from repro.values import Const, Null, SkolemTerm, Var
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode

#: The single fresh value used by the tag lifting (distinct from any
#: user-supplied constant by construction of :class:`~repro.values.Null`).
FRESH = Null("pattern-sat-fresh")


def structural_witness(
    dtd: DTD, pattern: Pattern, context=None
) -> TreeNode | None:
    """A conforming label-tree structurally matching *pattern*, or None.

    Exact as a *structural* statement: None means no conforming tree
    matches even with the most permissive choice of data values.  The two
    automata are compiled through the engine's
    :class:`~repro.engine.cache.CompilationCache`.
    """
    # imported here: repro.automata (which the engine cache compiles)
    # depends on repro.patterns.ast, so top-level imports would be circular
    from repro.automata.duta import ProductAutomaton, find_accepted
    from repro.engine.budget import resolve_context
    from repro.engine.cache import automata_size, closure_automaton, dtd_automaton
    from repro.kernel import select_kernel

    extra = frozenset(pattern.labels_used())
    kernel = select_kernel("automata", automata_size(dtd, [pattern]))
    closure = closure_automaton([pattern], dtd, extra, context=context, kernel=kernel)
    conformance = dtd_automaton(dtd, extra, context=context, kernel=kernel)
    product = ProductAutomaton(
        [conformance, closure],
        predicate=lambda state: (
            conformance.is_accepting(state[0])
            and closure.satisfies(state[1], pattern)
        ),
    )
    resolved = resolve_context(context)
    found = find_accepted(
        product,
        prune=lambda state: not conformance.state_ok(state[0]),
        charge=resolved.charge if resolved is not None else None,
    )
    if found is None:
        return None
    __, witness = found
    return witness


class _LiftedDTDAutomaton:
    """DTD conformance over the lifted alphabet of (label, tags) letters."""

    def __init__(self, dtd: DTD, letters: Iterable[tuple]):
        from repro.automata.dtd_automaton import DTDAutomaton

        self.dtd = dtd
        self._letters = frozenset(letters)
        self._base = DTDAutomaton(dtd)

    def labels(self):
        return self._letters

    def initial_horizontal(self, letter):
        return self._base.initial_horizontal(letter[0])

    def step_horizontal(self, letter, hstate, child_state):
        # child_state is (child_letter_base_label, ok)
        return self._base.step_horizontal(letter[0], hstate, child_state)

    def finish(self, letter, hstate):
        return self._base.finish(letter[0], hstate)

    def is_accepting(self, state) -> bool:
        return self._base.is_accepting(state)


def _lifted_letters(dtd: DTD, domain: tuple) -> list[tuple]:
    letters = []
    for label in dtd.labels:
        for tags in itertools.product(domain, repeat=dtd.arity(label)):
            letters.append((label, tags))
    return letters


def _lift_closure_automaton(dtd: DTD, pattern: Pattern, letters):
    """Closure automaton over lifted letters; constants constrain tags."""
    from repro.automata.pattern_automaton import PatternClosureAutomaton

    class _Lifted(PatternClosureAutomaton):
        def _node_formula_ok(self, sub: Pattern, letter) -> bool:
            base_label, tags = letter
            if sub.label != WILDCARD and sub.label != base_label:
                return False
            if sub.vars is None:
                return True
            if len(sub.vars) != len(tags):
                return False
            for term, tag in zip(sub.vars, tags):
                if isinstance(term, Const) and term.value != tag:
                    return False
            return True

    # arity_of is satisfied through the letters themselves; pass a dummy
    automaton = _Lifted([pattern], extra_labels=(), arity_of=lambda label: -1)
    automaton._labels = frozenset(letters)
    return automaton


def _unlift(witness: TreeNode) -> TreeNode:
    """Turn a tree over lifted letters back into a valued tree."""
    label, tags = witness.label
    return TreeNode(
        label, tags, tuple(_unlift(child) for child in witness.children)
    )


def satisfying_tree(dtd: DTD, pattern: Pattern, context=None) -> TreeNode | None:
    """A tree ``T |= D`` with a match for *pattern*, or None if unsatisfiable."""
    from repro.automata.dtd_automaton import DTDAutomaton
    from repro.automata.duta import ProductAutomaton, find_accepted

    if any(isinstance(term, SkolemTerm) for term in pattern.terms()):
        raise XsmError("satisfiability is defined for patterns without Skolem terms")
    skeleton = structural_witness(dtd, pattern, context)
    if skeleton is None:
        return None
    constants = [t.value for t in pattern.terms() if isinstance(t, Const)]
    if not constants:
        witness = DTDAutomaton(dtd).decorate(skeleton)
        assert matches_at_root(pattern, witness), "structural witness must match"
        return witness

    # tag lifting: finite value domain C ∪ {FRESH}
    domain = tuple(dict.fromkeys(constants)) + (FRESH,)
    counts: dict[Var, int] = {}
    for term in pattern.terms():
        if isinstance(term, Var):
            counts[term] = counts.get(term, 0) + 1
    repeated = [var for var, count in counts.items() if count > 1]
    letters = _lifted_letters(dtd, domain)
    lifted_dtd = _LiftedDTDAutomaton(dtd, letters)
    for tags in itertools.product(domain, repeat=len(repeated)):
        ground = pattern.substitute(dict(zip(repeated, tags)))
        closure = _lift_closure_automaton(dtd, ground, letters)
        product = ProductAutomaton(
            [lifted_dtd, closure],
            predicate=lambda state: (
                lifted_dtd.is_accepting(state[0])
                and closure.satisfies(state[1], ground)
            ),
        )
        found = find_accepted(product, prune=lambda state: not state[0][1])
        if found is not None:
            witness = _unlift(found[1])
            assert dtd.conforms(witness)
            assert matches_at_root(pattern, witness), "lifted witness must match"
            return witness
    return None


def is_satisfiable(dtd: DTD, pattern: Pattern, context=None):
    """Decide (exactly) whether some ``T |= D`` matches *pattern*.

    Returns a :class:`~repro.engine.verdicts.Verdict` — ``Proved`` carries
    the satisfying tree, and the decision is exact (never ``Unknown``).
    """
    from repro.engine.verdicts import (
        AnalysisCertificate,
        Proved,
        Refuted,
        SatisfyingTree,
    )

    witness = satisfying_tree(dtd, pattern, context)
    if witness is not None:
        return Proved(SatisfyingTree(witness))
    return Refuted(
        AnalysisCertificate(
            "pattern-sat",
            "no conforming tree matches the pattern (closure-automaton "
            "reachability over the tag-lifted alphabet is empty)",
        )
    )
