"""Parser and serializer for the textual pattern syntax.

Syntax (mirrors the paper, with ``//`` for descendant and ``->``/``->*``
for next-/following-sibling)::

    r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]],
              supervise[student(s)]]]
    r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)]]
    r//a(x)                  -- descendant shortcut l//l'
    r/a(x)/b                 -- child shortcut l/l'
    _[a, b]                  -- wildcard label
    a("lit", 5, x)           -- quoted strings and numbers are constants,
                                bare identifiers are variables
    t(f(x), y)               -- f(x) is a Skolem term (Section 8)

A node without parentheses (``teach``) leaves attributes unconstrained
(the ``SM°`` form); ``teach()`` demands zero attributes.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.patterns.ast import (
    WILDCARD,
    Descendant,
    ListItem,
    Pattern,
    Sequence,
)
from repro.values import Const, SkolemTerm, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrowstar>->\*)
  | (?P<arrow>->)
  | (?P<dslash>//)
  | (?P<neq>!=)
  | (?P<number>-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-.]*)
  | (?P<punct>[()\[\],/=])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens = []
    i = 0
    while i < len(text):
        match = _TOKEN_RE.match(text, i)
        if match is None:
            raise ParseError("unexpected character in pattern", text, i)
        if match.lastgroup != "ws":
            tokens.append((match.lastgroup, match.group(), i))
        i = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of pattern", self.text, len(self.text))
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        __, got, offset = self.next()
        if got != value:
            raise ParseError(f"expected {value!r}, got {got!r}", self.text, offset)

    # path := node (('/' | '//') node)*
    def parse_path(self) -> Pattern:
        steps: list[tuple[str | None, Pattern]] = [(None, self.parse_node())]
        while True:
            token = self.peek()
            if token is None or token[1] not in ("/", "//"):
                break
            __, separator, __ = self.next()
            steps.append((separator, self.parse_node()))
        pattern = steps[-1][1]
        for index in range(len(steps) - 2, -1, -1):
            __, parent = steps[index]
            separator = steps[index + 1][0]
            item: ListItem = (
                Descendant(pattern) if separator == "//" else Sequence((pattern,))
            )
            pattern = Pattern(parent.label, parent.vars, parent.items + (item,))
        return pattern

    def parse_node(self) -> Pattern:
        kind, label, offset = self.next()
        if kind != "ident":
            raise ParseError(f"expected a label, got {label!r}", self.text, offset)
        vars_: tuple[Term, ...] | None = None
        items: list[ListItem] = []
        token = self.peek()
        if token is not None and token[1] == "(":
            self.next()
            terms: list[Term] = []
            if self.peek() is not None and self.peek()[1] != ")":
                terms.append(self.parse_term())
                while self.peek() is not None and self.peek()[1] == ",":
                    self.next()
                    terms.append(self.parse_term())
            self.expect(")")
            vars_ = tuple(terms)
            token = self.peek()
        if token is not None and token[1] == "[":
            self.next()
            if self.peek() is not None and self.peek()[1] != "]":
                items.append(self.parse_item())
                while self.peek() is not None and self.peek()[1] == ",":
                    self.next()
                    items.append(self.parse_item())
            self.expect("]")
        return Pattern(label, vars_, tuple(items))

    def parse_term(self) -> Term:
        kind, value, offset = self.next()
        if kind == "number":
            return Const(int(value))
        if kind == "string":
            return Const(value[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        if kind == "ident":
            token = self.peek()
            if token is not None and token[1] == "(":
                self.next()
                args: list[Term] = []
                if self.peek() is not None and self.peek()[1] != ")":
                    args.append(self.parse_term())
                    while self.peek() is not None and self.peek()[1] == ",":
                        self.next()
                        args.append(self.parse_term())
                self.expect(")")
                return SkolemTerm(value, tuple(args))
            return Var(value)
        raise ParseError(f"expected a term, got {value!r}", self.text, offset)

    def parse_item(self) -> ListItem:
        token = self.peek()
        if token is not None and token[0] == "dslash":
            self.next()
            return Descendant(self.parse_path())
        return self.parse_sequence()

    def parse_sequence(self) -> Sequence:
        elements = [self.parse_path()]
        connectors: list[str] = []
        while True:
            token = self.peek()
            if token is None or token[0] not in ("arrow", "arrowstar"):
                break
            kind, __, __ = self.next()
            connectors.append("next" if kind == "arrow" else "following")
            elements.append(self.parse_path())
        return Sequence(tuple(elements), tuple(connectors))


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern from text; raise :class:`ParseError` on junk."""
    parser = _Parser(text)
    pattern = parser.parse_path()
    if parser.peek() is not None:
        __, value, offset = parser.peek()
        raise ParseError(f"trailing input {value!r} in pattern", text, offset)
    return pattern


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-.]*\Z")


def serialize_term(term: Term) -> str:
    """Render a term; constants are always quoted/numeric, never bare."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, SkolemTerm):
        return f"{term.function}({', '.join(serialize_term(a) for a in term.args)})"
    value = term.value
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def serialize_pattern(pattern: Pattern) -> str:
    """Render *pattern* in the syntax accepted by :func:`parse_pattern`."""
    parts = [pattern.label]
    if pattern.vars is not None:
        parts.append("(" + ", ".join(serialize_term(t) for t in pattern.vars) + ")")
    if pattern.items:
        rendered = []
        for item in pattern.items:
            if isinstance(item, Descendant):
                rendered.append("//" + serialize_pattern(item.pattern))
            else:
                chunks = [serialize_pattern(item.elements[0])]
                for connector, element in zip(item.connectors, item.elements[1:]):
                    chunks.append("->" if connector == "next" else "->*")
                    chunks.append(serialize_pattern(element))
                rendered.append(" ".join(chunks))
        parts.append("[" + ", ".join(rendered) + "]")
    return "".join(parts)
