"""The compact pattern engine: array-backed evaluation on large documents.

This is the pattern-engine half of the bitset kernel
(:mod:`repro.kernel`).  It evaluates exactly the same relation
``(T, v) |= pi(a)`` as :class:`~repro.patterns.matching.PatternEngine` —
same hash joins, same semi-join projection, same memoization contract —
but every node is a *preorder position* into the contiguous arrays of a
:class:`~repro.patterns.index.CompactTreeIndex` instead of a linked
``TreeNode``:

* memo keys are ``(position, pattern, keep)`` — small ints, no object
  identity;
* child and descendant enumeration walk ``first_child`` /
  ``next_sibling`` / ``by_label`` arrays, never node objects;
* node formulae compare interned label ids, and leaf subpatterns (no
  list items) are evaluated directly instead of being memoized — on a
  10⁶-node document a memo row per (node, leaf pattern) pair costs more
  than recomputing the formula.

Valuations are the same ``frozenset((Var, value), ...)`` objects the
object engine produces, so results are interchangeable and the
differential tests compare them directly.  Selection between the two
engines happens in :func:`repro.patterns.matching.engine_for`.
"""

from __future__ import annotations

from repro.errors import XsmError
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.patterns.index import CompactTreeIndex, EngineStats
from repro.patterns.matching import (
    _EMPTY_REL,
    _EMPTY_VALUATION,
    _MISSING,
    _TRUE_REL,
    _PatternInfo,
    hash_join,
)
from repro.values import Const, SkolemTerm, Var
from repro.xmlmodel.tree import TreeNode


class CompactPatternEngine:
    """Evaluates patterns over one fixed tree via its compact index.

    Public surface mirrors :class:`~repro.patterns.matching.PatternEngine`
    (``relation_at_root`` / ``find_matches`` / ``match_anywhere`` /
    ``exists_at_root`` / ``exists_anywhere`` / ``stats``); the positional
    evaluator is internal.
    """

    def __init__(self, root: TreeNode):
        self.root = root
        self.index = CompactTreeIndex(root)
        self.stats = EngineStats()
        self._info: dict[Pattern, _PatternInfo] = {}
        self._mask: dict[Pattern, int | None] = {}
        self._join_vars: dict[Pattern, frozenset[Var]] = {}
        #: pattern -> interned label id; None = wildcard, -1 = label absent
        self._label_id: dict[Pattern, int | None] = {}
        # (position, pattern, keep) -> relation matched AT the position
        self._at: dict[tuple, frozenset] = {}
        # (position, pattern, keep) -> relation matched strictly below
        self._below: dict[tuple, frozenset] = {}
        # (leaf pattern, keep) -> compiled position matcher
        self._leaf: dict[tuple, object] = {}

    # -- static pattern analysis -------------------------------------------

    def info(self, pattern: Pattern) -> _PatternInfo:
        cached = self._info.get(pattern)
        if cached is None:
            cached = self._info[pattern] = _PatternInfo(pattern)
        return cached

    def mask(self, pattern: Pattern) -> int | None:
        """Label bitmask of *pattern* against this tree; None = unmatchable."""
        if pattern not in self._mask:
            self._mask[pattern] = self.index.labels_mask(pattern.labels_used())
        return self._mask[pattern]

    def label_id(self, pattern: Pattern) -> int | None:
        """Interned id of the pattern's label (None = wildcard, -1 = absent)."""
        cached = self._label_id.get(pattern, _MISSING)
        if cached is _MISSING:
            if pattern.label == WILDCARD:
                cached = None
            else:
                cached = self.index.label_bit.get(pattern.label, -1)
            self._label_id[pattern] = cached
        return cached

    def join_variables(self, pattern: Pattern) -> frozenset[Var]:
        """Variables occurring in >= 2 term positions (the join variables)."""
        from repro.patterns.ast import _term_vars

        cached = self._join_vars.get(pattern)
        if cached is None:
            counts: dict[Var, int] = {}
            for term in pattern.terms():
                for var in _term_vars(term):
                    counts[var] = counts.get(var, 0) + 1
            cached = frozenset(v for v, c in counts.items() if c > 1)
            self._join_vars[pattern] = cached
        return cached

    # -- public evaluation --------------------------------------------------

    def relation_at_root(self, pattern: Pattern) -> frozenset:
        """The full valuation set of *pattern* at the root."""
        return self.match_at(0, pattern)

    def find_matches(self, pattern: Pattern) -> list[dict[Var, object]]:
        """All valuations of ``(T, root) |= pattern``, as dicts.

        Full-enumeration queries — a root formula binding nothing over a
        single descendant leaf, the ``r//item(x, y)`` shape that
        materializes a valuation per matching node — take a vectorized
        path: candidate positions stream straight out of the label
        index, the constant/equality tests run as tuple comparisons on
        the attrs arrays, and result dicts are built once per distinct
        binding tuple.  No frozenset-of-pairs relation algebra runs on
        that hot path; every other shape falls back to the generic
        evaluator with the per-row dicts materialized by a C-level
        ``map``.
        """
        fast = self._enumerate_fast(pattern)
        if fast is not None:
            return fast
        return list(map(dict, self.match_at(0, pattern)))

    def _enumerate_fast(
        self, pattern: Pattern
    ) -> list[dict[Var, object]] | None:
        """The vectorized full-enumeration materialization, or None.

        Applicable when the pattern is a root formula that binds no
        variables over exactly one ``//leaf`` item whose terms are plain
        variables and constants; the result is then the distinct binding
        tuples of the leaf over all matching descendants — computable in
        one pass over the candidate positions.
        """
        if len(pattern.items) != 1 or not isinstance(pattern.items[0], Descendant):
            return None
        leaf = pattern.items[0].pattern
        if leaf.items:
            return None
        terms = leaf.vars
        if terms is None or not all(isinstance(t, (Var, Const)) for t in terms):
            return None
        base = self._match_node_formula(0, pattern)
        if base is None:
            return []
        if base:
            return None  # root bindings would need the join machinery
        mask = self.mask(pattern)
        if mask is None or not self.index.subtree_covers(0, mask):
            self.stats.index_prunes += 1
            return []
        label_id = self.label_id(leaf)
        if label_id is not None and label_id < 0:
            return []
        arity = len(terms)
        consts = tuple(
            (i, t.value) for i, t in enumerate(terms) if isinstance(t, Const)
        )
        first: dict[Var, int] = {}
        equalities: list[tuple[int, int]] = []
        for i, term in enumerate(terms):
            if isinstance(term, Var):
                j = first.setdefault(term, i)
                if j != i:
                    equalities.append((j, i))
        kept = tuple(first.items())  # (var, first position) per variable
        label = None if leaf.label == WILDCARD else leaf.label
        attr_index = (
            self.info(leaf).const_attrs if label is not None else None
        )
        attrs = self.index.attrs
        stats = self.stats
        rows: set[tuple] = set()
        add = rows.add
        for candidate in self.index.candidates(0, label, attr_index):
            stats.candidates_scanned += 1
            values = attrs[candidate]
            if len(values) != arity:
                continue
            if any(values[i] != constant for i, constant in consts):
                continue
            if any(values[i] != values[j] for i, j in equalities):
                continue
            add(tuple(values[i] for __, i in kept))
        variables = tuple(var for var, __ in kept)
        return [dict(zip(variables, row)) for row in rows]

    def match_anywhere(self, pattern: Pattern) -> frozenset:
        """Valuations of *pattern* matched at the root or any descendant."""
        return self.match_at(0, pattern) | self.match_strictly_below(0, pattern)

    def exists_at_root(self, pattern: Pattern) -> bool:
        """``T |= pattern`` for some valuation (semi-join mode)."""
        return bool(self.match_at(0, pattern, self.join_variables(pattern)))

    def exists_anywhere(self, pattern: Pattern) -> bool:
        """Does *pattern* match at the root or at any descendant?"""
        keep = self.join_variables(pattern)
        return bool(self.match_at(0, pattern, keep)) or bool(
            self.match_strictly_below(0, pattern, keep)
        )

    # -- the evaluator (positions, not nodes) --------------------------------

    def match_at(
        self, pos: int, pattern: Pattern, keep: frozenset | None = None
    ) -> frozenset:
        """Relation of valuations under which *pattern* matches AT *pos*."""
        if not pattern.items:
            # leaf subpattern: a compiled matcher beats a memo row
            return self._leaf_matcher(pattern, keep)(pos)
        key = (pos, pattern, keep)
        cached = self._at.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._match_at(pos, pattern, keep)
        self._at[key] = result
        return result

    def _leaf_matcher(self, pattern: Pattern, keep: frozenset | None):
        key = (pattern, keep)
        matcher = self._leaf.get(key)
        if matcher is None:
            matcher = self._leaf[key] = self._compile_leaf(pattern, keep)
        return matcher

    def _compile_leaf(self, pattern: Pattern, keep: frozenset | None):
        """A closure evaluating an item-less *pattern* at a position.

        Sequence evaluation calls the leaf formula once per (element,
        child) pair — on wide documents that is millions of calls, so the
        per-call work is compiled down to array lookups and comparisons.
        Projected results are cached by their bound values: within a run
        of siblings the projection typically collapses to a handful of
        distinct relations, reusing the frozenset objects outright.
        """
        label_id = self.label_id(pattern)
        labels = self.index.label_id
        if label_id is not None and label_id < 0:
            return lambda pos: _EMPTY_REL  # label absent from the tree
        terms = pattern.vars
        if terms is None:
            if label_id is None:
                return lambda pos: _TRUE_REL
            return (
                lambda pos: _TRUE_REL if labels[pos] == label_id else _EMPTY_REL
            )
        if not all(isinstance(t, (Var, Const)) for t in terms):
            # Skolem (or unknown) terms: keep the generic formula so the
            # diagnostic surfaces exactly as in the object engine
            def generic(pos: int) -> frozenset:
                base = self._match_node_formula(pos, pattern)
                if base is None:
                    return _EMPTY_REL
                if keep is not None and base:
                    base = frozenset(p for p in base if p[0] in keep)
                return frozenset((base,))

            return generic
        arity = len(terms)
        consts = tuple(
            (i, t.value) for i, t in enumerate(terms) if isinstance(t, Const)
        )
        first: dict[Var, int] = {}
        equalities = []
        for i, term in enumerate(terms):
            if isinstance(term, Var):
                j = first.setdefault(term, i)
                if j != i:
                    equalities.append((j, i))
        eqs = tuple(equalities)
        kept = tuple(
            (i, var)
            for var, i in first.items()
            if keep is None or var in keep
        )
        attrs = self.index.attrs
        cache: dict[tuple, frozenset] = {}

        def matcher(pos: int) -> frozenset:
            if label_id is not None and labels[pos] != label_id:
                return _EMPTY_REL
            values = attrs[pos]
            if len(values) != arity:
                return _EMPTY_REL
            for i, constant in consts:
                if values[i] != constant:
                    return _EMPTY_REL
            for i, j in eqs:
                if values[i] != values[j]:
                    return _EMPTY_REL
            key = tuple(values[i] for i, _ in kept)
            rel = cache.get(key)
            if rel is None:
                rel = cache[key] = frozenset(
                    (frozenset((var, values[i]) for i, var in kept),)
                )
            return rel

        return matcher

    def _match_at(
        self, pos: int, pattern: Pattern, keep: frozenset | None
    ) -> frozenset:
        mask = self.mask(pattern)
        if mask is None or not self.index.subtree_covers(pos, mask):
            self.stats.index_prunes += 1
            return _EMPTY_REL
        self.stats.nodes_visited += 1
        base = self._match_node_formula(pos, pattern)
        if base is None:
            return _EMPTY_REL
        info = self.info(pattern)
        if keep is None:
            acc_vars = info.formula_vars
        else:
            if base:
                base = frozenset(p for p in base if p[0] in keep)
            acc_vars = info.formula_vars & keep
        valuations = frozenset((base,))
        for item, full_item_vars in zip(pattern.items, info.item_vars):
            if isinstance(item, Descendant):
                rel = self.match_strictly_below(pos, item.pattern, keep)
            else:
                rel = self._match_sequence(pos, item, keep)
            if not rel:
                return _EMPTY_REL
            item_vars = full_item_vars if keep is None else full_item_vars & keep
            valuations = hash_join(valuations, acc_vars, rel, item_vars, self.stats)
            if not valuations:
                return _EMPTY_REL
            acc_vars |= item_vars
        return valuations

    def _match_node_formula(self, pos: int, pattern: Pattern):
        """Match label id and attribute tuple; return the induced valuation."""
        label_id = self.label_id(pattern)
        if label_id is not None and label_id != self.index.label_id[pos]:
            return None
        if pattern.vars is None:
            return _EMPTY_VALUATION
        attrs = self.index.attrs[pos]
        if len(pattern.vars) != len(attrs):
            return None
        binding: dict[Var, object] = {}
        for term, value in zip(pattern.vars, attrs):
            if isinstance(term, Var):
                bound = binding.get(term, _MISSING)
                if bound is _MISSING:
                    binding[term] = value
                elif bound != value:
                    return None
            elif isinstance(term, Const):
                if term.value != value:
                    return None
            elif isinstance(term, SkolemTerm):
                raise XsmError(
                    "Skolem terms cannot be matched directly; instantiate the "
                    "pattern through repro.mappings.skolem first"
                )
            else:
                raise TypeError(f"unexpected term {term!r}")
        return frozenset(binding.items())

    def match_strictly_below(
        self, pos: int, pattern: Pattern, keep: frozenset | None = None
    ) -> frozenset:
        """Valuations of *pattern* matched at some proper descendant of *pos*."""
        key = (pos, pattern, keep)
        cached = self._below.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._match_below(pos, pattern, keep)
        self._below[key] = result
        return result

    def _match_below(
        self, pos: int, pattern: Pattern, keep: frozenset | None
    ) -> frozenset:
        mask = self.mask(pattern)
        if mask is None or not self.index.below_covers(pos, mask):
            self.stats.index_prunes += 1
            return _EMPTY_REL
        info = self.info(pattern)
        existence_only = keep is not None and not (info.all_vars & keep)
        label = None if pattern.label == WILDCARD else pattern.label
        attrs = info.const_attrs if label is not None else None
        out: set = set()
        for candidate in self.index.candidates(pos, label, attrs):
            self.stats.candidates_scanned += 1
            rel = self.match_at(candidate, pattern, keep)
            if rel:
                if existence_only:
                    return _TRUE_REL
                out |= rel
        return frozenset(out) if out else _EMPTY_REL

    def _match_sequence(
        self, pos: int, sequence: Sequence, keep: frozenset | None
    ) -> frozenset:
        """Relation under which the sequence matches among the children of *pos*."""
        children = list(self.index.children(pos))
        n = len(children)
        if n == 0:
            return _EMPTY_REL
        elements = sequence.elements
        rows = []
        for element in elements:
            if element.items:
                rows.append(
                    [self.match_at(child, element, keep) for child in children]
                )
            else:  # hoist the compiled matcher out of the child loop
                matcher = self._leaf_matcher(element, keep)
                rows.append([matcher(child) for child in children])
        evars = [
            self.info(e).all_vars if keep is None else self.info(e).all_vars & keep
            for e in elements
        ]
        # suffix[p]: relation of elements[i:] with element i at position p;
        # built right to left so each (connector, position) joins once.
        suffix = rows[-1]
        suffix_vars = evars[-1]
        for i in range(len(elements) - 2, -1, -1):
            here = rows[i]
            if sequence.connectors[i] == "next":
                nxt = suffix[1:] + [_EMPTY_REL]
            else:  # following-sibling: any strictly later position
                nxt = [_EMPTY_REL] * n
                acc: frozenset = _EMPTY_REL
                for p in range(n - 2, -1, -1):
                    later = suffix[p + 1]
                    if later:
                        acc = acc | later
                    nxt[p] = acc
            suffix = [
                hash_join(here[p], evars[i], nxt[p], suffix_vars, self.stats)
                if here[p] and nxt[p]
                else _EMPTY_REL
                for p in range(n)
            ]
            suffix_vars = evars[i] | suffix_vars
        parts = [rel for rel in suffix if rel]
        if not parts:
            return _EMPTY_REL
        if len(parts) == 1:
            return parts[0]
        return frozenset().union(*parts)
