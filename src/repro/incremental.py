"""Incremental re-solving: diff a mapping edit, invalidate its cone, reuse the rest.

Every edit used to pay a cold solve.  The compiled artifacts were
already content-keyed in the :class:`~repro.engine.cache.CompilationCache`
(and its disk tier), and since PR 8 every compile registers its input
digests in the cache's :class:`~repro.engine.depgraph.DependencyGraph` —
this module closes the loop:

* :func:`fingerprint_mapping` reduces a mapping revision to its input
  digests (one per std, per DTD production, per label/arity alphabet);
* :func:`diff_fingerprints` maps an edit to the set of **dirty** digests
  (the symmetric difference — old content that disappeared, new content
  that arrived);
* :class:`IncrementalEngine` owns the third piece: per-revision
  bookkeeping.  ``update(name, text)`` parses the revision, diffs it
  against the previous one, invalidates exactly the downstream cone
  (compiled artifacts out of both cache tiers via
  :meth:`CompilationCache.invalidate`, memoized verdicts and lint
  reports out of the in-process memos), then re-solves the standard
  problem set — whole-mapping consistency and absolute consistency plus
  per-std source/target satisfiability — and re-lints.  Decided verdicts
  whose inputs are untouched come straight out of the
  :class:`VerdictMemo` (consulted by ``engine.solve`` through
  ``context.memo``), so a single-std edit of a 20-std mapping re-solves
  one std and reuses nineteen.

Correctness story: memo keys are *content* digests (problem inputs plus
the budget), so a reused verdict is byte-for-byte the verdict a cold
solve of identical content would compute.  ``Unknown`` verdicts are
never memoized — a larger budget or a warmer cache may decide them, so
they are re-solved each time.  Invalidation is therefore hygiene (bound
memory, evict dead disk files), not a correctness requirement; the
equivalence property (incremental ≡ cold, both kernels) is pinned by
``tests/test_incremental.py`` and gated in
``benchmarks/bench_incremental.py --smoke``.

Front-ends: ``repro lint --watch`` (a :class:`FileWatcher` polling loop
in :mod:`repro.cli`) and the ``/delta`` handler of
:class:`~repro.service.session.EngineSession`.  Each delta runs under a
``delta`` trace span and moves the ``repro_incremental_{reused,
invalidated,recompiled}_total`` counters plus the ``repro_delta_seconds``
histogram.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

from repro.engine.budget import Budget, ExecutionContext
from repro.engine.cache import CompilationCache, cache_kind
from repro.engine.depgraph import (
    dtd_digest,
    dtd_digests,
    mapping_digest,
    mapping_digests,
    pattern_digest,
    std_digest,
)
from repro.engine.problems import (
    AbsoluteConsistencyProblem,
    ConsistencyProblem,
    SatisfiabilityProblem,
)
from repro.obs import REGISTRY, observe_seconds, trace
from repro.values import SkolemTerm

if TYPE_CHECKING:
    from repro.analysis.diagnostics import LintReport
    from repro.engine.verdicts import Verdict
    from repro.mappings.mapping import SchemaMapping
    from repro.patterns.ast import Pattern

_REUSED = REGISTRY.counter(
    "repro_incremental_reused_total",
    "Memoized results served instead of re-solving, by result kind",
    ("kind",),
)
_RECOMPILED = REGISTRY.counter(
    "repro_incremental_recompiled_total",
    "Results actually recomputed under the incremental engine, by kind",
    ("kind",),
)
_INVALIDATED = REGISTRY.counter(
    "repro_incremental_invalidated_total",
    "Artifacts evicted by delta invalidation, by artifact kind",
    ("kind",),
)
_DELTA_SECONDS = REGISTRY.histogram(
    "repro_delta_seconds",
    "Wall-clock seconds per incremental delta update",
)
_DEPGRAPH_ARTIFACTS = REGISTRY.gauge(
    "repro_depgraph_artifacts",
    "Artifacts currently registered in the dependency graph",
)

#: Memo-owned cache kinds: these keys live in the in-process memos, not
#: in the compilation cache's entry map or on disk.
_RESULT_KINDS = frozenset({"verdict", "lint-report"})


def _sha(text: str) -> str:
    return sha256(text.encode()).hexdigest()[:16]


def _budget_digest(budget: Budget) -> str:
    """Budgets enter memo keys: a tighter budget may yield a different
    (Unknown) verdict, so verdicts are only reused under equal limits."""
    return _sha(repr(budget))


# ---------------------------------------------------------------------------
# fingerprints and deltas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MappingFingerprint:
    """A mapping revision reduced to its content digests."""

    digest: str
    std_digests: tuple[str, ...]
    source_digests: frozenset[str]
    target_digests: frozenset[str]
    pattern_digests: frozenset[str]

    @property
    def inputs(self) -> frozenset[str]:
        """Every input digest of the revision (the differ's universe)."""
        return (
            self.source_digests
            | self.target_digests
            | self.pattern_digests
            | frozenset(self.std_digests)
        )


def fingerprint_mapping(mapping: "SchemaMapping") -> MappingFingerprint:
    """The content fingerprint of *mapping* (cheap: memoized DTD digests).

    Pattern digests cover both the raw std patterns and their
    value-stripped (``SM°``) projections — the two forms compiled
    artifacts actually register as inputs — and a pattern shared by two
    stds only turns dirty when *every* user of it changes, so shared
    closure automata survive single-std edits.
    """
    patterns: set[str] = set()
    for std in mapping.stds:
        for pattern in (std.source, std.target):
            patterns.add(pattern_digest(pattern))
            patterns.add(pattern_digest(pattern.strip_values()))
    return MappingFingerprint(
        digest=mapping_digest(mapping),
        std_digests=tuple(std_digest(std) for std in mapping.stds),
        source_digests=dtd_digests(mapping.source_dtd),
        target_digests=dtd_digests(mapping.target_dtd),
        pattern_digests=frozenset(patterns),
    )


@dataclass(frozen=True)
class MappingDelta:
    """What an edit changed, in digest terms.

    ``dirty`` is the symmetric difference of the two revisions' input
    digests — digests whose content disappeared (their artifacts are
    stale) plus digests that are new (nothing compiled yet).  The
    invalidation cone of ``dirty`` is exactly the set of artifacts an
    edit can have made stale.
    """

    dirty: frozenset[str]
    changed_stds: tuple[int, ...]
    removed_stds: int
    source_dtd_changed: bool
    target_dtd_changed: bool
    cold: bool = False

    @property
    def unchanged(self) -> bool:
        return not self.cold and not self.dirty


def diff_fingerprints(
    old: MappingFingerprint | None, new: MappingFingerprint
) -> MappingDelta:
    """The delta from revision *old* to *new* (``old=None`` = cold start)."""
    if old is None:
        return MappingDelta(
            dirty=new.inputs,
            changed_stds=tuple(range(len(new.std_digests))),
            removed_stds=0,
            source_dtd_changed=True,
            target_dtd_changed=True,
            cold=True,
        )
    dirty = old.inputs ^ new.inputs
    old_stds = set(old.std_digests)
    changed = tuple(
        index
        for index, digest in enumerate(new.std_digests)
        if digest not in old_stds
    )
    return MappingDelta(
        dirty=frozenset(dirty),
        changed_stds=changed,
        removed_stds=len(old_stds - set(new.std_digests)),
        source_dtd_changed=old.source_digests != new.source_digests,
        target_dtd_changed=old.target_digests != new.target_digests,
    )


# ---------------------------------------------------------------------------
# memos: verdicts and lint reports, registered in the dependency graph
# ---------------------------------------------------------------------------


class VerdictMemo:
    """Decided verdicts keyed by problem content + budget.

    ``engine.solve`` consults an attached memo (``context.memo``) before
    routing and stores every decided verdict afterwards; each stored key
    is registered in the dependency graph under the problem's input
    digests, so delta invalidation drops exactly the verdicts an edit
    could change.  ``Unknown`` verdicts are never stored (re-solving may
    decide them), and unsupported problem types simply bypass the memo.
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self._entries: dict[Hashable, "Verdict"] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _describe(problem: object) -> tuple[tuple, frozenset[str]] | None:
        """(key tail, input digests) for supported problem types."""
        if isinstance(problem, (ConsistencyProblem, AbsoluteConsistencyProblem)):
            tag = (
                "consistency"
                if isinstance(problem, ConsistencyProblem)
                else "abscons"
            )
            return (
                (tag, mapping_digest(problem.mapping)),
                mapping_digests(problem.mapping),
            )
        if isinstance(problem, SatisfiabilityProblem):
            return (
                ("satisfiability", dtd_digest(problem.dtd),
                 pattern_digest(problem.pattern)),
                dtd_digests(problem.dtd) | {pattern_digest(problem.pattern)},
            )
        return None

    def lookup(self, problem: object, budget: Budget) -> "Verdict | None":
        described = self._describe(problem)
        if described is None:
            return None
        key = ("verdict", *described[0], _budget_digest(budget))
        with self._lock:
            verdict = self._entries.get(key)
        if verdict is not None:
            _REUSED.labels(kind="verdict").inc()
        return verdict

    def store(self, problem: object, budget: Budget, verdict: "Verdict") -> None:
        _RECOMPILED.labels(kind="verdict").inc()
        if verdict.is_unknown:
            return
        described = self._describe(problem)
        if described is None:
            return
        tail, deps = described
        key = ("verdict", *tail, _budget_digest(budget))
        with self._lock:
            self._entries[key] = verdict
        self._graph.record(key, deps)

    def drop(self, key: Hashable) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class LintMemo:
    """Whole-mapping :class:`LintReport` objects, invalidated like verdicts."""

    def __init__(self, graph) -> None:
        self._graph = graph
        self._entries: dict[Hashable, "LintReport"] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(mapping: "SchemaMapping", passes: tuple[str, ...]) -> tuple:
        return ("lint-report", mapping_digest(mapping), passes)

    def lookup(
        self, mapping: "SchemaMapping", passes: tuple[str, ...]
    ) -> "LintReport | None":
        with self._lock:
            report = self._entries.get(self._key(mapping, passes))
        if report is not None:
            _REUSED.labels(kind="lint").inc()
        return report

    def store(
        self,
        mapping: "SchemaMapping",
        passes: tuple[str, ...],
        report: "LintReport",
    ) -> None:
        _RECOMPILED.labels(kind="lint").inc()
        key = self._key(mapping, passes)
        with self._lock:
            self._entries[key] = report
        self._graph.record(key, mapping_digests(mapping))

    def drop(self, key: Hashable) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# the incremental engine
# ---------------------------------------------------------------------------


def _sat_pattern(pattern: "Pattern") -> "Pattern":
    # Skolem terms (legal on target sides) are outside Lemma 4.1;
    # stripping values keeps the check sound, mirroring the linter's
    # dead/unsafe-std probe.
    if any(isinstance(term, SkolemTerm) for term in pattern.terms()):
        return pattern.strip_values()
    return pattern


@dataclass
class DeltaResult:
    """One ``update()``'s outcome: verdicts, lint, and reuse accounting."""

    name: str
    revision: str
    delta: MappingDelta
    verdicts: dict[str, "Verdict"]
    lint: "LintReport"
    invalidated: dict[str, int]
    reused: int
    recompiled: int
    elapsed: float

    @property
    def cold(self) -> bool:
        return self.delta.cold


class IncrementalEngine:
    """Per-revision state: fingerprints, memos, and the delta pipeline.

    One engine is owned by an :class:`~repro.service.session.EngineSession`
    (the ``/delta`` handler) or by a ``repro lint --watch`` loop; it
    shares the session's compilation cache, so artifact reuse spans
    one-shot requests and deltas alike.  ``update`` is safe to call from
    concurrent handler threads.
    """

    #: Problem labels solved per revision, in response order.
    CHECKS = ("consistency", "absolutely_consistent")

    def __init__(
        self,
        cache: CompilationCache | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.cache = cache if cache is not None else CompilationCache()
        self.budget = budget if budget is not None else Budget.default()
        self.verdicts = VerdictMemo(self.cache.depgraph)
        self.lints = LintMemo(self.cache.depgraph)
        self._revisions: dict[str, MappingFingerprint] = {}
        self._lock = threading.Lock()
        self.deltas = 0

    # -- invalidation -------------------------------------------------------

    def invalidate(self, dirty: Iterable[str]) -> dict[str, int]:
        """Evict the downstream cone of *dirty* from every tier.

        Compiled artifacts leave the memory LRU *and* the disk tier
        (:meth:`CompilationCache.invalidate`); memoized verdicts and
        lint reports leave their memos.  Siblings stay warm.
        """
        dirty = frozenset(dirty)
        cone = self.cache.depgraph.cone(dirty)
        counts = {"artifacts": 0, "results": 0, "memory": 0, "disk": 0}
        for key in cone:
            kind = cache_kind(key)
            if kind in _RESULT_KINDS:
                if self.verdicts.drop(key) or self.lints.drop(key):
                    counts["results"] += 1
                self.cache.depgraph.discard(key)
                _INVALIDATED.labels(kind=kind).inc()
            else:
                dropped = self.cache.evict(key)
                counts["artifacts"] += 1
                counts["memory"] += dropped["memory"]
                counts["disk"] += dropped["disk"]
                _INVALIDATED.labels(kind=kind).inc()
        return counts

    # -- the delta pipeline -------------------------------------------------

    def _problems(self, mapping: "SchemaMapping") -> dict[str, object]:
        problems: dict[str, object] = {
            "consistency": ConsistencyProblem(mapping),
            "absolutely_consistent": AbsoluteConsistencyProblem(mapping),
        }
        for index, std in enumerate(mapping.stds):
            problems[f"std[{index}].source"] = SatisfiabilityProblem(
                mapping.source_dtd, _sat_pattern(std.source)
            )
            problems[f"std[{index}].target"] = SatisfiabilityProblem(
                mapping.target_dtd, _sat_pattern(std.target)
            )
        return problems

    def update(
        self,
        name: str,
        mapping: "SchemaMapping | str",
        budget: Budget | None = None,
    ) -> DeltaResult:
        """Apply revision *mapping* of the stream *name* and re-solve.

        Returns the full verdict set for the revision; everything whose
        inputs the edit did not touch is served from the memos.
        """
        from repro.analysis.lint import lint_mapping
        from repro.engine.core import solve
        from repro.mappings.io import parse_mapping

        if isinstance(mapping, str):
            mapping = parse_mapping(mapping)
        budget = budget if budget is not None else self.budget
        started = time.perf_counter()
        reused_before = _family_total(_REUSED)
        recompiled_before = _family_total(_RECOMPILED)
        new = fingerprint_mapping(mapping)
        with self._lock:
            old = self._revisions.get(name)
            self._revisions[name] = new
            self.deltas += 1
        delta = diff_fingerprints(old, new)
        with observe_seconds(_DELTA_SECONDS), trace(
            "delta", mapping=name, cold=delta.cold or None
        ) as span:
            invalidated = (
                self.invalidate(delta.dirty)
                if delta.dirty and not delta.cold
                else {"artifacts": 0, "results": 0, "memory": 0, "disk": 0}
            )
            context = ExecutionContext(
                budget, cache=self.cache, memo=self.verdicts
            )
            verdicts = {
                label: solve(problem, context)
                for label, problem in self._problems(mapping).items()
            }
            report = lint_mapping(
                mapping, context, name=name, memo=self.lints
            )
            span.annotate(
                dirty=len(delta.dirty),
                invalidated=invalidated["artifacts"] + invalidated["results"],
            )
        _DEPGRAPH_ARTIFACTS.set(len(self.cache.depgraph))
        return DeltaResult(
            name=name,
            revision=new.digest,
            delta=delta,
            verdicts=verdicts,
            lint=report,
            invalidated=invalidated,
            reused=int(_family_total(_REUSED) - reused_before),
            recompiled=int(_family_total(_RECOMPILED) - recompiled_before),
            elapsed=time.perf_counter() - started,
        )

    def stats(self) -> dict[str, int]:
        """Incremental health for ``/stats`` and ``/metrics`` consumers."""
        with self._lock:
            revisions = len(self._revisions)
            deltas = self.deltas
        return {
            "revisions": revisions,
            "deltas": deltas,
            "memoized_verdicts": len(self.verdicts),
            "memoized_lints": len(self.lints),
            **{f"depgraph_{k}": v for k, v in self.cache.depgraph.stats().items()},
        }


def _family_total(family) -> float:
    """Sum of one counter family's series (per-update reuse accounting)."""
    with family.registry._lock:
        return sum(child.value for child in family.children.values())


# ---------------------------------------------------------------------------
# file watching (the `repro lint --watch` substrate)
# ---------------------------------------------------------------------------


class FileWatcher:
    """Cheap stdlib change detection over a fixed set of files.

    ``poll()`` stats every path; only files whose (mtime, size) moved
    are re-read and content-digested, so an unchanged tree costs a few
    ``stat`` calls per tick and an editor's touch-without-change does
    not trigger a spurious re-lint.  Missing files (mid-save renames)
    are skipped until they reappear.
    """

    def __init__(self, paths: Sequence[str | Path]):
        self.paths = [Path(p) for p in paths]
        self._stamps: dict[Path, tuple[int, int]] = {}
        self._digests: dict[Path, str] = {}
        for path in self.paths:
            self._snapshot(path)

    def _snapshot(self, path: Path) -> None:
        try:
            stat = path.stat()
            self._stamps[path] = (stat.st_mtime_ns, stat.st_size)
            self._digests[path] = _sha(path.read_text())
        except OSError:
            pass

    def poll(self) -> list[Path]:
        """The paths whose *content* changed since the last poll."""
        changed: list[Path] = []
        for path in self.paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            stamp = (stat.st_mtime_ns, stat.st_size)
            if stamp == self._stamps.get(path):
                continue
            try:
                digest = _sha(path.read_text())
            except OSError:
                continue
            self._stamps[path] = stamp
            if digest != self._digests.get(path):
                self._digests[path] = digest
                changed.append(path)
        return changed
