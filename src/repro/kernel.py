"""Kernel selection: pure-Python oracle vs bitset fast path.

Two independent surfaces carry a vectorized "bitset" implementation next
to the original pure-Python one:

* **automata** — the closure/DTD automata and their product emptiness
  check encode states as machine integers (bit-packed subpattern sets,
  dense DFA state ids) instead of frozensets of tuples;
* **pattern-engine** — large documents are evaluated over a contiguous
  array layout (preorder arrays of label ids) instead of linked
  ``TreeNode`` objects.

The pure path is the semantic reference: both kernels decide the same
relations, and the differential tests (``tests/test_kernels.py``) hold
them to byte-identical verdicts.  Selection is automatic by input size;
``REPRO_KERNEL=pure`` or ``REPRO_KERNEL=bitset`` forces one side
everywhere (the CI matrix runs the whole suite under ``bitset`` once).
Every decision increments ``repro_kernel_selected_total`` so ``--stats``
shows which kernels actually ran.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.obs import REGISTRY

#: Environment override: ``pure`` or ``bitset`` (anything else → auto).
KERNEL_ENV = "REPRO_KERNEL"

PURE = "pure"
BITSET = "bitset"

#: Automatic thresholds per surface: below the size, the pure path is
#: used (its constant factors win and it doubles as the oracle on the
#: inputs the tests exercise); at or above it, the bitset path runs.
#: "Size" is surface-specific — subpatterns+labels for automata, node
#: count for the pattern engine.
AUTO_THRESHOLDS = {
    "automata": 16,
    "pattern-engine": 32768,
}

#: When a kernel is *forced*, tiny inputs still keep the pure engine on
#: the pattern surface: the object engine is part of the public API
#: surface (tests poke at its index), and sub-floor trees gain nothing.
FORCED_BITSET_FLOORS = {
    "automata": 0,
    "pattern-engine": 512,
}

_SELECTED = REGISTRY.counter(
    "repro_kernel_selected_total",
    "Kernel selections by surface (automata / pattern-engine)",
    ("kernel", "surface"),
)

#: Programmatic override stack (stronger than the environment); used by
#: benchmarks and tests to pin a kernel without mutating ``os.environ``.
_FORCED: list[str] = []


def kernel_override() -> str | None:
    """The forced kernel, or None for automatic selection.

    Reads the innermost :func:`force_kernel` frame first, then
    ``REPRO_KERNEL``; unknown values are ignored (auto) rather than
    fatal, so a typo degrades to the default instead of crashing.
    """
    if _FORCED:
        forced = _FORCED[-1]
        return forced if forced else None  # "" = forced-auto (masks the env)
    raw = os.environ.get(KERNEL_ENV, "").strip().lower()
    if raw in (PURE, BITSET):
        return raw
    return None


@contextmanager
def force_kernel(kernel: str | None) -> Iterator[None]:
    """Pin kernel selection within the block (None restores auto)."""
    if kernel is not None and kernel not in (PURE, BITSET):
        raise ValueError(f"unknown kernel {kernel!r}")
    _FORCED.append(kernel if kernel is not None else "")
    try:
        yield
    finally:
        _FORCED.pop()


def select_kernel(surface: str, size: int) -> str:
    """The kernel to run *surface* with, for an input of the given *size*.

    The decision (override or size threshold) is recorded in the
    ``repro_kernel_selected_total`` metric.
    """
    forced = kernel_override()
    if forced == PURE:
        kernel = PURE
    elif forced == BITSET:
        floor = FORCED_BITSET_FLOORS.get(surface, 0)
        kernel = BITSET if size >= floor else PURE
    else:
        threshold = AUTO_THRESHOLDS.get(surface)
        kernel = BITSET if threshold is not None and size >= threshold else PURE
    _SELECTED.labels(kernel=kernel, surface=surface).inc()
    return kernel
