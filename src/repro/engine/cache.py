"""The content-hash-keyed compilation cache shared by every procedure.

Solvers spend their time in compiled artifacts — DTD automata, pattern
closure automata, determinized production DFAs, DTD classifications and
the achievable trigger-set tables read off their products.  Each artifact
depends only on the *content* of its inputs, so the cache keys are content
hashes (a DTD's deterministic ``repr``; patterns hash structurally), and
two structurally equal DTDs hit the same entry regardless of object
identity.  A benchmark sweep or CLI session compiles each artifact once.

The cache is a bounded LRU with exact hit/miss/eviction counters
(``--stats`` prints them).  ``CompilationCache(enabled=False)`` gives the
measured-off mode the Figure-1 benchmarks compare against.  An optional
:class:`~repro.engine.diskcache.DiskCacheTier` sits under the LRU so
compiled artifacts survive the interpreter (and are shared by the worker
processes of :func:`repro.engine.parallel.solve_many`): a memory miss
consults the disk before building, and every build is written back.

Defaults are environment-configurable: ``REPRO_CACHE_SIZE`` overrides the
LRU capacity (default 256) and ``REPRO_CACHE_DIR`` attaches a disk tier
to the process-wide :data:`DEFAULT_CACHE`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.automata.bitset import BitsetClosureAutomaton, BitsetDTDAutomaton
from repro.automata.dtd_automaton import DTDAutomaton
from repro.automata.duta import ProductAutomaton, reachable_states
from repro.automata.pattern_automaton import PatternClosureAutomaton
from repro.engine.depgraph import (
    DependencyGraph,
    alphabet_digest,
    dtd_digests,
    pattern_digest,
    production_digest,
)
from repro.engine.diskcache import MISS, DiskCacheTier
from repro.kernel import BITSET, PURE, select_kernel

if TYPE_CHECKING:
    from repro.engine.budget import ExecutionContext
from repro.obs import REGISTRY, trace
from repro.patterns.ast import Pattern
from repro.xmlmodel.dtd import DTD
from repro.xmlmodel.tree import TreeNode

#: Per-kind cache traffic in the global registry (kind = key[0]: the
#: artifact family — "closure", "dtd-automaton", "regex-dfa", ...).
_CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total",
    "Compilation-cache memory hits by artifact kind",
    ("kind",),
)
_CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total",
    "Compilation-cache builds (memory+disk misses) by artifact kind",
    ("kind",),
)
_CACHE_EVICTIONS = REGISTRY.counter(
    "repro_cache_evictions_total",
    "LRU evictions from the in-memory compilation cache",
)
_COMPILE_SECONDS = REGISTRY.histogram(
    "repro_compile_seconds",
    "Wall-clock seconds spent building one compiled artifact, by kind",
    ("kind",),
)
_DISK_LOAD_SECONDS = REGISTRY.histogram(
    "repro_cache_disk_load_seconds",
    "Wall-clock seconds per disk-tier read (hit or miss)",
)
_DISK_HITS = REGISTRY.counter(
    "repro_cache_disk_hits_total",
    "Disk-tier hits (artifact loaded instead of rebuilt)",
)
_DISK_STORES = REGISTRY.counter(
    "repro_cache_disk_stores_total",
    "Artifacts written back to the disk tier",
)
_INVALIDATED = REGISTRY.counter(
    "repro_incremental_invalidated_total",
    "Artifacts evicted by delta invalidation, by artifact kind",
    ("kind",),
)


def cache_kind(key: Hashable) -> str:
    """The artifact family of a cache key (its leading tag string)."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "other"

#: Environment overrides for the default cache configuration.
CACHE_SIZE_ENV = "REPRO_CACHE_SIZE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_MAX_ENTRIES = 256


def env_cache_size(default: int = DEFAULT_MAX_ENTRIES) -> int:
    """The LRU capacity from ``REPRO_CACHE_SIZE`` (malformed → default)."""
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None:
        return default
    try:
        size = int(raw)
    except ValueError:
        return default
    return size if size > 0 else default


class CompilationCache:
    """Bounded LRU of compiled artifacts, keyed by input content.

    ``max_entries=None`` reads ``REPRO_CACHE_SIZE`` (default 256).
    *disk* is an optional :class:`DiskCacheTier` consulted on memory
    misses; ``misses`` then counts actual builds, with disk traffic
    reported separately in :meth:`stats`.

    The cache is **thread-safe**: one warm instance is shared by every
    handler thread of the ``repro serve`` daemon, so the LRU order, the
    entry map and the counters mutate only under an internal lock.
    Builds deliberately run *outside* the lock — a slow compilation on
    one thread must not serialize every other thread's hits.  Two
    threads racing the same missing key may both build it (the second
    store wins); artifacts are content-keyed and interchangeable, so
    the worst case is a redundant build, never a wrong answer.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        enabled: bool = True,
        disk: DiskCacheTier | None = None,
    ):
        self.max_entries = env_cache_size() if max_entries is None else max_entries
        self.enabled = enabled
        self.disk = disk
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.hits_by_kind: Counter[str] = Counter()
        self.misses_by_kind: Counter[str] = Counter()
        self.depgraph = DependencyGraph()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        """Pickle without the lock (a fresh one is created on unpickle)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def lookup(
        self,
        key: Hashable,
        build: Callable[[], object],
        deps: Iterable[str] | None = None,
    ) -> object:
        """The cached artifact under *key*, building (and storing) on miss.

        *deps* are the artifact's input digests (see
        :mod:`repro.engine.depgraph`); they are registered in the
        dependency graph whenever the artifact enters the cache, so a
        later delta invalidation can evict exactly the downstream cone
        of an edit.  Omitting *deps* keeps the artifact out of the
        graph (it is then immune to invalidation — correct, because
        content-keyed entries are never *wrong*, only possibly stale).
        """
        kind = cache_kind(key)
        if self.enabled:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    self.hits_by_kind[kind] += 1
                    self._entries.move_to_end(key)
                    value = self._entries[key]
                    _CACHE_HITS.labels(kind=kind).inc()
                    return value
        if self.enabled and self.disk is not None:
            started = time.perf_counter()
            value = self.disk.get(key)
            _DISK_LOAD_SECONDS.observe(time.perf_counter() - started)
            if value is not MISS:
                _DISK_HITS.inc()
                self._store(key, value, deps)
                return value
        with self._lock:
            self.misses += 1
            self.misses_by_kind[kind] += 1
        _CACHE_MISSES.labels(kind=kind).inc()
        with trace("compile", kind=kind):
            started = time.perf_counter()
            value = build()
            build_seconds = time.perf_counter() - started
        _COMPILE_SECONDS.labels(kind=kind).observe(build_seconds)
        if self.enabled:
            self._store(key, value, deps)
            if self.disk is not None:
                if self.disk.put(key, value):
                    _DISK_STORES.inc()
        return value

    def _store(
        self, key: Hashable, value: object, deps: Iterable[str] | None = None
    ) -> None:
        if deps is not None:
            self.depgraph.record(key, deps)
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                # LRU-evicted artifacts stay in the graph (and on disk):
                # they can come back from the disk tier, so they must
                # remain reachable by a later invalidation.
                self._entries.popitem(last=False)
                self.evictions += 1
                _CACHE_EVICTIONS.inc()

    def evict(self, key: Hashable) -> dict[str, bool]:
        """Drop *key* from the memory tier, the disk tier and the graph."""
        with self._lock:
            in_memory = self._entries.pop(key, MISS) is not MISS
        on_disk = self.disk.evict(key) if self.disk is not None else False
        self.depgraph.discard(key)
        return {"memory": in_memory, "disk": on_disk}

    def invalidate(self, dirty: Iterable[str]) -> dict[str, int]:
        """Evict every artifact compiled from a dirty input digest.

        Walks the downstream cone of *dirty* in the dependency graph
        and evicts each artifact from **both** tiers, so neither the
        LRU nor a later session boot can resurrect a stale entry.
        Returns eviction counts; sibling artifacts (no dirty input)
        are untouched and stay warm.
        """
        cone = self.depgraph.cone(dirty)
        counts = {"artifacts": len(cone), "memory": 0, "disk": 0}
        for key in cone:
            dropped = self.evict(key)
            counts["memory"] += dropped["memory"]
            counts["disk"] += dropped["disk"]
            _INVALIDATED.labels(kind=cache_kind(key)).inc()
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            stats = {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
        if self.disk is not None:
            stats.update(self.disk.stats())
        return stats

    def stats_by_kind(self) -> dict[str, dict[str, int]]:
        """Hit/miss counts broken down by artifact kind (this instance).

        The process-global registry carries the same breakdown summed
        over every cache instance; this is the per-instance view the
        ``--stats`` accounting reads.
        """
        with self._lock:
            kinds = sorted(set(self.hits_by_kind) | set(self.misses_by_kind))
            return {
                kind: {
                    "hits": self.hits_by_kind.get(kind, 0),
                    "misses": self.misses_by_kind.get(kind, 0),
                }
                for kind in kinds
            }

    def entries_by_kind(self) -> dict[str, int]:
        """Live in-memory entry counts per artifact kind (``/stats``)."""
        with self._lock:
            counts: Counter[str] = Counter(
                cache_kind(key) for key in self._entries
            )
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        self.depgraph.clear()


def cache_from_env() -> CompilationCache:
    """A cache configured by ``REPRO_CACHE_SIZE`` / ``REPRO_CACHE_DIR``."""
    directory = os.environ.get(CACHE_DIR_ENV)
    disk = DiskCacheTier(directory) if directory else None
    return CompilationCache(disk=disk)


#: The process-wide cache used when no :class:`ExecutionContext` overrides it.
DEFAULT_CACHE = cache_from_env()


def resolve_cache(context: "ExecutionContext | None" = None) -> CompilationCache:
    """The cache of the (explicit or ambient) context, or the default."""
    from repro.engine.budget import resolve_context

    resolved = resolve_context(context)
    return resolved.cache if resolved is not None else DEFAULT_CACHE


# ---------------------------------------------------------------------------
# content keys
# ---------------------------------------------------------------------------


def dtd_key(dtd: DTD) -> str:
    """A content key for a DTD: its deterministic ``repr`` (sorted rows).

    Computed once per object (memoized on the instance), equal across
    distinct objects with identical content.
    """
    key = getattr(dtd, "_content_key", None)
    if key is None:
        key = repr(dtd)
        dtd._content_key = key
    return key


def patterns_key(patterns: Iterable[Pattern]) -> tuple:
    """Patterns are frozen dataclasses — they *are* their content."""
    return tuple(patterns)


# ---------------------------------------------------------------------------
# compiled artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DTDClassification:
    """The schema-class facts routing decisions keep re-deriving."""

    recursive: bool
    nested_relational: bool
    strictly_nested_relational: bool


def dtd_classification(
    dtd: DTD, context: "ExecutionContext | None" = None
) -> DTDClassification:
    """Cached recursive / nested-relational classification of a DTD."""
    cache = resolve_cache(context)
    return cache.lookup(
        ("classification", dtd_key(dtd)),
        lambda: DTDClassification(
            recursive=dtd.is_recursive(),
            nested_relational=dtd.is_nested_relational(),
            strictly_nested_relational=dtd.is_strictly_nested_relational(),
        ),
        deps=dtd_digests(dtd),
    )


def regex_dfa(
    dtd: DTD, label: str, alphabet: frozenset[str],
    context: "ExecutionContext | None" = None,
) -> Any:
    """The determinized production DFA of *label*, total over *alphabet*."""
    cache = resolve_cache(context)
    return cache.lookup(
        ("regex-dfa", dtd_key(dtd), label, alphabet),
        lambda: dtd.production_nfa(label).determinize(alphabet),
        deps=(production_digest(dtd, label), alphabet_digest(dtd)),
    )


class CompiledDTDAutomaton(DTDAutomaton):
    """A :class:`DTDAutomaton` stepping through cached production DFAs.

    The subset construction is paid once per (DTD, alphabet) and stored in
    the compilation cache; ``step_horizontal`` then becomes two dict
    lookups instead of an NFA subset union.  DFA states are the same
    frozensets the NFA stepping produces, so pruning and state identity
    are unchanged.
    """

    def __init__(self, dtd: DTD, extra_labels: Iterable[str] = (),
                 context: "ExecutionContext | None" = None):
        super().__init__(dtd, extra_labels)
        alphabet = self._labels
        self._dfas = {
            label: regex_dfa(dtd, label, alphabet, context)
            for label in dtd.productions
        }

    def initial_horizontal(self, label: str) -> Any:
        dfa = self._dfas.get(label)
        if dfa is None:
            return None  # unknown label: sink
        return (dfa.initial, True)

    def step_horizontal(self, label: str, hstate: Any, child_state: Any) -> Any:
        if hstate is None:
            return None
        subset, children_ok = hstate
        child_label, child_ok = child_state
        return (
            self._dfas[label].transitions[subset][child_label],
            children_ok and child_ok,
        )

    def finish(self, label: str, hstate: Any) -> tuple[str, bool]:
        if hstate is None:
            return (label, False)
        subset, children_ok = hstate
        return (label, children_ok and subset in self._dfas[label].accepting)


def dtd_automaton(
    dtd: DTD, extra_labels: frozenset[str] = frozenset(),
    context: "ExecutionContext | None" = None,
    kernel: str = PURE,
) -> DTDAutomaton:
    """A cached conformance automaton for *dtd* over its labels + extras.

    *kernel* selects the implementation: ``"pure"`` (the default — keys
    and artifacts are byte-identical to the pre-kernel cache) or
    ``"bitset"`` for the integer-encoded fast path.  The two kernels use
    distinct artifact kinds, so a disk tier never serves one in place of
    the other.
    """
    cache = resolve_cache(context)
    if kernel == BITSET:
        return cache.lookup(
            ("bitset-dtd-automaton", dtd_key(dtd), frozenset(extra_labels)),
            lambda: BitsetDTDAutomaton(dtd, extra_labels),
            deps=dtd_digests(dtd),
        )
    return cache.lookup(
        ("dtd-automaton", dtd_key(dtd), frozenset(extra_labels)),
        lambda: CompiledDTDAutomaton(dtd, extra_labels, context),
        deps=dtd_digests(dtd),
    )


def closure_automaton(
    patterns: Iterable[Pattern],
    dtd: DTD,
    extra_labels: frozenset[str] = frozenset(),
    with_arity: bool = True,
    context: "ExecutionContext | None" = None,
    kernel: str = PURE,
) -> PatternClosureAutomaton:
    """A cached pattern closure automaton over *dtd*'s label alphabet.

    See :func:`dtd_automaton` for the *kernel* contract.
    """
    cache = resolve_cache(context)
    patterns = tuple(patterns)
    # closures read only the label/arity alphabet off the DTD, so their
    # dependency set is the alphabet digest plus the patterns — editing a
    # production's content model leaves them warm.
    deps = frozenset(
        {alphabet_digest(dtd)} | {pattern_digest(p) for p in patterns}
    )
    if kernel == BITSET:
        return cache.lookup(
            (
                "bitset-closure",
                dtd_key(dtd),
                patterns,
                frozenset(extra_labels),
                with_arity,
            ),
            lambda: BitsetClosureAutomaton(
                patterns,
                extra_labels=dtd.labels | frozenset(extra_labels),
                arity_of=dtd.arity if with_arity else None,
            ),
            deps=deps,
        )
    return cache.lookup(
        ("closure", dtd_key(dtd), patterns, frozenset(extra_labels), with_arity),
        lambda: PatternClosureAutomaton(
            patterns,
            extra_labels=dtd.labels | frozenset(extra_labels),
            arity_of=dtd.arity if with_arity else None,
        ),
        deps=deps,
    )


def automata_size(dtd: DTD, patterns: Iterable[Pattern]) -> int:
    """The kernel-selection size of an automata problem.

    Subpattern count plus alphabet size — the quantities that scale the
    closure-automaton state space and the per-step work.
    """
    return sum(p.size for p in patterns) + len(dtd.labels)


def achievable_sets(
    dtd: DTD,
    patterns: Iterable[Pattern],
    extra_labels: frozenset[str] = frozenset(),
    with_arity: bool = True,
    context: "ExecutionContext | None" = None,
) -> dict[frozenset[int], TreeNode]:
    """All achievable ``{satisfied pattern indices}`` with a witness each.

    One reachability pass over the product of the DTD automaton and the
    closure automaton of *patterns*, pruning states whose DTD component is
    dead (a non-conforming subtree never occurs inside a conforming tree).
    This table is what the Section-5/6/7 trigger-set algorithms consume;
    caching it is the big win on repeated-DTD sweeps, since the reachability
    pass *is* the exponential part.

    The automata kernel (pure vs bitset, chosen by problem size or the
    ``REPRO_KERNEL`` override) is part of the cache key: the table's
    *content* is kernel-independent, but witnesses may legitimately
    differ between kernels, so artifacts are never reused across them.
    """
    from repro.engine.budget import resolve_context

    cache = resolve_cache(context)
    patterns = tuple(patterns)
    kernel = select_kernel("automata", automata_size(dtd, patterns))
    key = (
        "achievable",
        dtd_key(dtd),
        patterns,
        frozenset(extra_labels),
        with_arity,
        kernel,
    )
    if cache.enabled and key in cache._entries:
        return cache.lookup(key, lambda: None)  # pure hit, no charging

    resolved = resolve_context(context)
    charge = resolved.charge if resolved is not None else None

    def build() -> dict[frozenset[int], TreeNode]:
        closure = closure_automaton(
            patterns, dtd, extra_labels, with_arity, context, kernel=kernel
        )
        conformance = dtd_automaton(
            dtd, frozenset(extra_labels), context, kernel=kernel
        )
        product = ProductAutomaton([conformance, closure])
        realized = reachable_states(
            product,
            prune=lambda state: not conformance.state_ok(state[0]),
            prune_horizontal=lambda label, h: conformance.horizontal_dead(h[0]),
            charge=charge,
        )
        sets: dict[frozenset[int], TreeNode] = {}
        for state, witness in realized.items():
            if conformance.is_accepting(state[0]):
                sets.setdefault(closure.trigger_set(state[1]), witness)
        return sets

    return cache.lookup(
        key,
        build,
        deps=dtd_digests(dtd) | {pattern_digest(p) for p in patterns},
    )
