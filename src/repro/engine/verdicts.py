"""The verdict algebra: ``Proved`` / ``Refuted`` / ``Unknown``.

Every decision procedure in the library answers with a :class:`Verdict`
instead of the old mix of bools, witness-or-``None`` tuples and
:class:`~repro.errors.BoundExceededError` control flow:

* ``Proved(certificate)`` — the property holds, and the certificate is
  evidence an independent checker can re-validate;
* ``Refuted(certificate)`` — the property fails, with evidence;
* ``Unknown(reason, bound_exhausted=...)`` — the applicable procedure is
  incomplete (bounded search, undecidable class) and its budget ran out.

Verdicts are drop-in truthy: ``bool(Proved(...))`` is True,
``bool(Refuted(...))`` is False, and ``bool(Unknown(...))`` raises
:class:`~repro.errors.UnknownVerdictError` — forcing callers that treat a
tri-state as a bool to confront the third value.  ``==`` compares the
decision against another verdict or a plain bool (``Unknown`` equals
neither True nor False).

Certificate types are per-problem frozen dataclasses; the independent
re-checker lives in :mod:`repro.engine.certify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import UnknownVerdictError

if TYPE_CHECKING:
    from repro.engine.report import SolveReport
    from repro.mappings.mapping import SchemaMapping
    from repro.xmlmodel.tree import TreeNode


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WitnessPair:
    """``(T, T') ∈ [[M]]`` — proves consistency (re-check: membership)."""

    source: "TreeNode"
    target: "TreeNode"


@dataclass(frozen=True)
class WitnessChain:
    """``T_1, ..., T_n`` with each consecutive pair a solution — proves
    consistency of a composition chain."""

    trees: tuple["TreeNode", ...]


@dataclass(frozen=True)
class MiddleTree:
    """``T_2`` with ``(T_1,T_2) ∈ [[M12]]`` and ``(T_2,T_3) ∈ [[M23]]`` —
    proves composition membership."""

    middle: "TreeNode"


@dataclass(frozen=True)
class SatisfyingTree:
    """A conforming tree matching the pattern — proves satisfiability."""

    tree: "TreeNode"


@dataclass(frozen=True)
class SeparatingTree:
    """A conforming tree matching all positives and no negatives —
    proves separability (refutes containment)."""

    tree: "TreeNode"


@dataclass(frozen=True)
class Counterexample:
    """A conforming source tree with no solution — refutes ABSCONS."""

    source: "TreeNode"


@dataclass(frozen=True)
class RigidityExplanation:
    """The Theorem-6.3 rigidity problems — refutes ABSCONS in PTIME."""

    problems: tuple[str, ...]


@dataclass(frozen=True)
class TriggerRefutation:
    """A source tree whose triggered stds no conforming target covers —
    refutes consistency.  ``std_indices`` are the triggered stds."""

    source: "TreeNode"
    std_indices: tuple[int, ...]


@dataclass(frozen=True)
class ObligationsMet:
    """All source-side obligations found a target match — proves membership."""

    obligations: int


@dataclass(frozen=True)
class ViolationWitness:
    """An exported source valuation with no target extension — refutes
    membership.  ``valuation`` is a sorted tuple of (variable name, value)."""

    std_index: int
    valuation: tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class ConformanceFailure:
    """A tree fails DTD conformance — refutes membership/composition."""

    side: str  # "source" | "target" | "middle" | "final"
    detail: str = ""


@dataclass(frozen=True)
class AnalysisCertificate:
    """An exact algorithm's claim with no small witness object.

    ``certify()`` validates these by an independent deterministic second
    run of the named analysis; *detail* records what the run must find.
    """

    algorithm: str
    detail: str = ""


@dataclass(frozen=True)
class ComposedMapping:
    """The Theorem-8.2 composed mapping deciding membership exactly."""

    mapping: "SchemaMapping"


Certificate = object


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Verdict:
    """Base class; use :class:`Proved`, :class:`Refuted` or :class:`Unknown`."""

    #: attached by ``engine.solve``: how the verdict was produced.
    report: Optional["SolveReport"] = field(default=None, init=False, repr=False)
    #: attached by ``engine.solve``: the problem instance, for ``certify()``.
    problem: object = field(default=None, init=False, repr=False)

    @property
    def is_proved(self) -> bool:
        return isinstance(self, Proved)

    @property
    def is_refuted(self) -> bool:
        return isinstance(self, Refuted)

    @property
    def is_unknown(self) -> bool:
        return isinstance(self, Unknown)

    def decision(self) -> bool | None:
        """True / False / None for proved / refuted / unknown."""
        if isinstance(self, Proved):
            return True
        if isinstance(self, Refuted):
            return False
        return None

    def __bool__(self) -> bool:
        decision = self.decision()
        if decision is None:
            reason = getattr(self, "reason", "")
            raise UnknownVerdictError(
                f"verdict is Unknown ({reason}); test .is_unknown / .decision() "
                "instead of treating it as a bool"
            )
        return decision

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Verdict):
            return self.decision() == other.decision()
        if isinstance(other, bool):
            return self.decision() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.decision())


@dataclass(eq=False, repr=False)
class Proved(Verdict):
    certificate: Certificate = None

    def __repr__(self) -> str:
        return f"Proved({type(self.certificate).__name__})"


@dataclass(eq=False, repr=False)
class Refuted(Verdict):
    certificate: Certificate = None

    def __repr__(self) -> str:
        return f"Refuted({type(self.certificate).__name__})"


@dataclass(eq=False, repr=False)
class Unknown(Verdict):
    reason: str = ""
    bound_exhausted: bool = False

    def __repr__(self) -> str:
        flag = ", bound_exhausted" if self.bound_exhausted else ""
        return f"Unknown({self.reason!r}{flag})"
