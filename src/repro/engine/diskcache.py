"""An opt-in, content-keyed on-disk tier under the CompilationCache.

The in-memory :class:`~repro.engine.cache.CompilationCache` dies with the
interpreter, so every CLI invocation and every worker process of a
parallel batch used to recompile the same DTD automata and regex DFAs.
:class:`DiskCacheTier` persists the compiled artifacts:

* **content-keyed** — the same key tuples the memory cache uses are
  canonicalized (frozensets sorted, tuples recursed, everything else by
  its deterministic ``repr``) and hashed, so the file name is stable
  across processes and interpreter restarts regardless of hash
  randomization;
* **version-stamped** — :data:`CACHE_FORMAT_VERSION` enters both the
  digest and the stored payload, so a format bump simply stops old files
  from being read (they are reaped lazily, never misinterpreted);
* **atomic** — writes go to a same-directory temporary file followed by
  ``os.replace``, so concurrent workers sharing one directory never see
  a half-written artifact;
* **corruption-tolerant** — any unreadable, truncated, tampered or
  version-skewed file is treated as a miss, deleted best-effort, and the
  artifact is rebuilt; a corrupt cache can slow a run down but never
  change a verdict.

Artifacts that fail to pickle are skipped silently (counted in
``stats()["unpicklable"]``) — the disk tier is an accelerator, never a
requirement.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from hashlib import sha256
from pathlib import Path
from typing import Hashable

#: Bump when the key layout or any pickled artifact's shape changes.
CACHE_FORMAT_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()


def canonical_key(obj: object) -> str:
    """A deterministic textual form of a cache key.

    ``pickle`` and ``repr`` of sets depend on iteration order, which
    depends on randomized string hashing — useless for cross-process
    file names.  This canonicalization recurses through tuples and sorts
    set elements; leaves rely on deterministic ``repr`` (DTD keys are
    already sorted ``repr`` strings, patterns are frozen dataclasses).
    """
    if isinstance(obj, tuple | list):
        return "(" + ",".join(canonical_key(item) for item in obj) + ")"
    if isinstance(obj, frozenset | set):
        return "{" + ",".join(sorted(canonical_key(item) for item in obj)) + "}"
    return f"{type(obj).__name__}:{obj!r}"


def key_digest(key: Hashable, version: int = CACHE_FORMAT_VERSION) -> str:
    """The hex digest naming *key*'s artifact file."""
    text = f"v{version}|{canonical_key(key)}"
    return sha256(text.encode()).hexdigest()


class DiskCacheTier:
    """Content-keyed artifact files under one directory.

    ``get`` returns :data:`MISS` (never raises) when the artifact is
    absent or unreadable; ``put`` is best-effort.  Several processes may
    share a directory concurrently — the worst interleaving is a
    redundant rebuild, never a torn read.  Reads and writes are also
    safe from concurrent *threads* of one process (the ``repro serve``
    daemon): file operations are atomic at the OS level and the
    counters mutate under a lock, so ``stats()`` stays exact.
    """

    def __init__(self, directory: str | Path, version: int = CACHE_FORMAT_VERSION):
        self.directory = Path(directory)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.evictions = 0
        self.unpicklable = 0
        self._lock = threading.Lock()
        self.directory.mkdir(parents=True, exist_ok=True)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def path_for(self, key: Hashable) -> Path:
        return self.directory / f"{key_digest(key, self.version)}.pkl"

    def get(self, key: Hashable) -> object:
        """The stored artifact, or :data:`MISS`; never raises."""
        path = self.path_for(key)
        try:
            payload = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return MISS
        try:
            stamp, value = pickle.loads(payload)
            if stamp != self.version:
                raise ValueError(f"version stamp {stamp!r} != {self.version!r}")
        except Exception:
            # truncated, tampered, unreadable or version-skewed: rebuild
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        with self._lock:
            self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> bool:
        """Store *value* atomically; False (silently) when impossible."""
        try:
            payload = pickle.dumps(
                (self.version, value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            with self._lock:
                self.unpicklable += 1
            return False
        path = self.path_for(key)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        with self._lock:
            self.stores += 1
        return True

    def evict(self, key: Hashable) -> bool:
        """Delete the artifact stored under *key*; False when absent.

        Invalidation's disk half: without it a delta-invalidated
        artifact would silently come back from the disk tier on the
        next session boot.  Corruption-safe like every other operation
        here — a concurrent writer racing the unlink at worst leaves a
        fresh (content-correct) file behind, never a torn one, and any
        filesystem error is swallowed as "nothing to evict".
        """
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        with self._lock:
            self.evictions += 1
        return True

    def __len__(self) -> int:
        return sum(1 for __ in self.directory.glob("*.pkl"))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "disk_hits": self.hits,
                "disk_misses": self.misses,
                "disk_stores": self.stores,
                "disk_corrupt": self.corrupt,
                "disk_evictions": self.evictions,
                "unpicklable": self.unpicklable,
            }

    def clear(self) -> None:
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
