"""Resource budgets and execution contexts for the solver engine.

Every decision procedure in the library runs under an
:class:`ExecutionContext`: a :class:`Budget` (tree-size bounds, a
node-expansion limit, a wall-clock deadline) plus the shared
:class:`~repro.engine.cache.CompilationCache` and the expansion counters
the :class:`~repro.engine.report.SolveReport` reads off afterwards.

The budget replaces the ad-hoc ``max_source_size`` / ``max_target_size`` /
``limit`` parameters the solver modules used to grow independently; the
single source of default bounds is :meth:`Budget.default`.

Exhaustion is signalled internally by :class:`BudgetExceeded` (a
:class:`~repro.errors.BoundExceededError`, so legacy ``except`` clauses
still apply); :func:`repro.engine.core.solve` catches it and returns an
``Unknown`` verdict — bound exhaustion never escapes as an exception from
the engine's public surface.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

from repro.errors import BoundExceededError

if TYPE_CHECKING:
    from repro.engine.cache import CompilationCache


class BudgetExceeded(BoundExceededError):
    """Internal control flow: a budget limit was hit mid-search.

    Derives from :class:`BoundExceededError` so code written against the
    old bounded procedures keeps catching it; the engine converts it into
    an ``Unknown`` verdict before returning.
    """


@dataclass(frozen=True)
class Budget:
    """Resource limits for one solver invocation.

    ``max_source_size`` / ``max_target_size`` bound enumerated source and
    target trees (the old ``DEFAULT_MAX_SOURCE_SIZE`` / ``_TARGET_SIZE``),
    ``max_mid_size`` bounds composition intermediates (``None`` = the
    per-instance heuristic), ``max_chain_size`` bounds the trees of a
    bounded composition-consistency chain, ``expansion_limit`` guards
    pattern-expansion blowup, ``max_expansions`` caps charged search steps
    (enumerated candidate trees + realized automaton states) and
    ``deadline_seconds`` is a wall-clock limit for the whole solve.
    """

    max_source_size: int = 6
    max_target_size: int = 6
    max_mid_size: int | None = None
    max_chain_size: int = 5
    expansion_limit: int = 10_000
    max_expansions: int | None = None
    deadline_seconds: float | None = None

    @classmethod
    def default(cls) -> "Budget":
        """The library-wide default bounds (one place, not five modules)."""
        return _DEFAULT_BUDGET

    def with_(self, **overrides: int) -> "Budget":
        """A copy with some limits replaced."""
        return replace(self, **overrides)


_DEFAULT_BUDGET = Budget()


class ExecutionContext:
    """A budget plus the mutable accounting of one solver run.

    Passed explicitly through the solver layers (every public procedure
    takes ``context=None``); :meth:`activate` additionally installs the
    context ambiently so deep helpers (tree enumeration loops, automaton
    reachability) can charge it without widening every signature.
    """

    def __init__(self, budget: Budget | None = None,
                 cache: "CompilationCache | None" = None,
                 memo: object | None = None):
        from repro.engine.cache import DEFAULT_CACHE

        self.budget = budget if budget is not None else Budget.default()
        self.cache = cache if cache is not None else DEFAULT_CACHE
        #: Optional verdict memo (see :mod:`repro.incremental`): when
        #: set, ``engine.solve`` returns memoized decided verdicts for
        #: content-identical problems instead of re-running the route.
        self.memo = memo
        self.expansions = 0
        self._deadline_at: float | None = None
        self.start_clock()

    def start_clock(self) -> None:
        """(Re)arm the wall-clock deadline from now."""
        if self.budget.deadline_seconds is not None:
            self._deadline_at = time.monotonic() + self.budget.deadline_seconds
        else:
            self._deadline_at = None

    def charge(self, steps: int = 1) -> None:
        """Account *steps* search expansions; raise when the budget is out."""
        self.expansions += steps
        limit = self.budget.max_expansions
        if limit is not None and self.expansions > limit:
            raise BudgetExceeded(
                f"expansion budget of {limit} exhausted", bound=limit
            )
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            raise BudgetExceeded(
                f"deadline of {self.budget.deadline_seconds}s exhausted"
            )

    @contextmanager
    def activate(self) -> Iterator["ExecutionContext"]:
        """Install this context ambiently for the duration of a solve."""
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            _ACTIVE.pop()


_ACTIVE: list[ExecutionContext] = []


def current_context() -> ExecutionContext | None:
    """The innermost ambient context, or None outside any solve."""
    return _ACTIVE[-1] if _ACTIVE else None


def resolve_context(context: ExecutionContext | None) -> ExecutionContext | None:
    """An explicit context wins; otherwise fall back to the ambient one."""
    return context if context is not None else current_context()


def resolve_budget(context: ExecutionContext | None) -> Budget:
    resolved = resolve_context(context)
    return resolved.budget if resolved is not None else Budget.default()
