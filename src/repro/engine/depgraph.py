"""The artifact dependency graph behind incremental re-solving.

The :class:`~repro.engine.cache.CompilationCache` is content-keyed, so a
*changed* input never produces a wrong artifact — but until this module
the engine had no idea which artifacts an edit made *stale*.  Every
``lookup`` that builds (or disk-loads) an artifact now registers the
**input digests** the artifact was compiled from — one digest per DTD
production, one per pattern, one for the label/arity alphabet — in a
:class:`DependencyGraph`.  A mapping edit is then diffed down to a set
of dirty input digests, and invalidation walks only the downstream cone
of those digests: the artifacts (and memoized verdicts / lint reports)
compiled from a changed production or pattern are evicted from both
cache tiers, while every sibling artifact stays warm.

The graph is bipartite (input digest → artifact key) and flat: composite
artifacts such as the achievable trigger-set tables register the *union*
of their inputs' digests, so one hop covers the whole cone.  Digests are
prefixed by their input family (``prod:`` / ``alpha:`` / ``root:`` /
``pat:`` / ``std:`` / ``map:``), purely for debuggability — equality is
all the invalidator needs.

Everything here is stdlib, thread-safe, and picklable (the graph rides
inside the compilation cache, which ships to ``solve_many`` workers).
"""

from __future__ import annotations

import threading
from functools import lru_cache
from hashlib import sha256
from typing import TYPE_CHECKING, Hashable, Iterable

if TYPE_CHECKING:
    from repro.mappings.mapping import SchemaMapping
    from repro.mappings.std import STD
    from repro.patterns.ast import Pattern
    from repro.xmlmodel.dtd import DTD


# ---------------------------------------------------------------------------
# input digests
# ---------------------------------------------------------------------------


def _sha(text: str) -> str:
    return sha256(text.encode()).hexdigest()[:16]


def production_digest(dtd: "DTD", label: str) -> str:
    """The content digest of one DTD production row (regex + attributes).

    Two DTDs declaring the same production for *label* share the digest,
    exactly as they share the compiled production DFA.
    """
    attrs = ",".join(dtd.attributes.get(label, ()))
    return f"prod:{_sha(f'{label}({attrs}) -> {dtd.productions[label]}')}"


def alphabet_digest(dtd: "DTD") -> str:
    """The digest of the DTD's label/arity alphabet (plus its root).

    This is what pattern closure automata and production DFAs read off a
    DTD besides individual productions: the set of labels, their
    attribute arities and the distinguished root.  Editing one
    production's *regex* leaves it unchanged, so closure automata stay
    warm across pure content-model edits.
    """
    rows = sorted((label, dtd.arity(label)) for label in dtd.labels)
    return f"alpha:{_sha(f'{dtd.root}|{rows}')}"


def dtd_digests(dtd: "DTD") -> frozenset[str]:
    """Every input digest of *dtd*: per-production rows plus the alphabet.

    Memoized on the instance (and shed on pickling, like the content
    key) — fingerprinting is on the per-edit hot path.
    """
    cached = getattr(dtd, "_input_digests", None)
    if cached is None:
        cached = frozenset(
            {alphabet_digest(dtd)}
            | {production_digest(dtd, label) for label in dtd.productions}
        )
        dtd._input_digests = cached
    return cached


def dtd_digest(dtd: "DTD") -> str:
    """One digest summarizing a whole DTD (used in memo keys)."""
    return f"dtd:{_sha(repr(dtd))}"


@lru_cache(maxsize=4096)
def pattern_digest(pattern: "Pattern") -> str:
    """The content digest of a tree pattern (frozen dataclass ``repr``)."""
    return f"pat:{_sha(repr(pattern))}"


def std_digest(std: "STD") -> str:
    """The content digest of one source-to-target dependency."""
    return f"std:{_sha(repr(std))}"


def mapping_digest(mapping: "SchemaMapping") -> str:
    """One digest summarizing a whole mapping (DTDs + the std list).

    Whole-mapping artifacts (consistency verdicts, lint reports) depend
    on this plus every constituent digest; the summary keys them.
    """
    parts = [
        repr(mapping.source_dtd),
        repr(mapping.target_dtd),
        *(repr(std) for std in mapping.stds),
    ]
    return f"map:{_sha('||'.join(parts))}"


def mapping_digests(mapping: "SchemaMapping") -> frozenset[str]:
    """Every input digest a whole-mapping artifact depends on."""
    return frozenset(
        dtd_digests(mapping.source_dtd)
        | dtd_digests(mapping.target_dtd)
        | {std_digest(std) for std in mapping.stds}
    )


# ---------------------------------------------------------------------------
# the graph
# ---------------------------------------------------------------------------


class DependencyGraph:
    """A thread-safe bipartite map: input digest ⇄ dependent artifact keys.

    ``record`` is called on every artifact build (cheap: set inserts);
    ``cone`` answers the invalidator's only question — *which artifacts
    were compiled from any of these dirty inputs?* — in one hop, because
    composite artifacts register flattened input sets.  ``discard``
    keeps the graph in step with cache eviction so it cannot grow past
    the artifacts that actually exist.
    """

    def __init__(self) -> None:
        self._down: dict[str, set[Hashable]] = {}
        self._up: dict[Hashable, frozenset[str]] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def record(self, key: Hashable, digests: Iterable[str]) -> None:
        """Register that artifact *key* was compiled from *digests*."""
        digests = frozenset(digests)
        if not digests:
            return
        with self._lock:
            previous = self._up.get(key)
            if previous == digests:
                return
            if previous:
                for digest in previous - digests:
                    self._drop_edge(digest, key)
            self._up[key] = digests
            for digest in digests:
                self._down.setdefault(digest, set()).add(key)

    def _drop_edge(self, digest: str, key: Hashable) -> None:
        dependents = self._down.get(digest)
        if dependents is not None:
            dependents.discard(key)
            if not dependents:
                del self._down[digest]

    def cone(self, dirty: Iterable[str]) -> set[Hashable]:
        """All recorded artifact keys depending on any dirty digest."""
        stale: set[Hashable] = set()
        with self._lock:
            for digest in dirty:
                stale.update(self._down.get(digest, ()))
        return stale

    def dependencies(self, key: Hashable) -> frozenset[str]:
        """The input digests recorded for *key* (empty if unknown)."""
        with self._lock:
            return self._up.get(key, frozenset())

    def discard(self, key: Hashable) -> None:
        """Forget *key* (evicted artifact) and its edges."""
        with self._lock:
            digests = self._up.pop(key, None)
            if digests:
                for digest in digests:
                    self._drop_edge(digest, key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._up)

    def clear(self) -> None:
        with self._lock:
            self._down.clear()
            self._up.clear()

    def stats(self) -> dict[str, int]:
        """Graph size for ``/stats``: inputs, artifacts and edge count."""
        with self._lock:
            return {
                "inputs": len(self._down),
                "artifacts": len(self._up),
                "edges": sum(len(d) for d in self._up.values()),
            }
