"""``engine.solve``: the single front door of every decision procedure.

Routing follows Figures 1–2 of the paper: the problem type plus the
mapping's ``SM(σ)`` fragment (axes, comparisons, constants) and the
DTD classification select the strongest applicable algorithm — exact
where the theory gives one, sound-but-bounded where it proves
undecidability or leaves the construction open.  The selected algorithm,
the routing rationale and the run's cost (wall clock, charged expansions,
cache hit/miss deltas) are recorded in a
:class:`~repro.engine.report.SolveReport` attached to the returned
verdict, and :class:`~repro.engine.budget.BudgetExceeded` (or any legacy
:class:`~repro.errors.BoundExceededError`) raised mid-search is converted
into ``Unknown(bound_exhausted=True)`` — bound exhaustion never escapes
``solve`` as an exception.

Solver modules are imported lazily inside the routing functions: they
import the engine's leaf modules (verdicts, budget, cache) at module
level, so importing them from here at module level would be circular.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.engine.budget import ExecutionContext, current_context
from repro.engine.problems import (
    AbsoluteConsistencyProblem,
    CompositionConsistencyProblem,
    CompositionMembershipProblem,
    ConsistencyProblem,
    MembershipProblem,
    SatisfiabilityProblem,
    SeparationProblem,
)
from repro.engine.report import SolveReport
from repro.engine.verdicts import Unknown, Verdict
from repro.errors import BoundExceededError, SignatureError, XsmError
from repro.obs import REGISTRY, ambient_tag, current_tags, maybe_profile, trace

#: Always-on operational series (pre-bound families; cheap label lookups).
_SOLVES = REGISTRY.counter(
    "repro_solves_total",
    "Solves by problem type, selected algorithm and verdict outcome",
    ("problem", "algorithm", "outcome"),
)
_SOLVE_LATENCY = REGISTRY.histogram(
    "repro_solve_latency_seconds",
    "Wall-clock seconds per solve, by selected algorithm",
    ("algorithm",),
)
_EXPANSIONS = REGISTRY.counter(
    "repro_expansions_total",
    "Budget-charged search expansions, by selected algorithm",
    ("algorithm",),
)


# ---------------------------------------------------------------------------
# fragment predicates (Figure 1's row labels)
# ---------------------------------------------------------------------------
# The predicates themselves live in ``repro.analysis.fragment`` (the
# static classifier, which the linter and this router share so their
# answers cannot drift); re-exported here for compatibility.


def uses_constants(mapping: Any) -> bool:
    """Does any pattern of the mapping mention a constant?"""
    from repro.analysis.fragment import uses_constants as predicate

    return predicate(mapping)


def uses_skolem_functions(mapping: Any) -> bool:
    """Does any std use Skolem functions (Section 8 semantics)?"""
    from repro.analysis.fragment import uses_skolem_functions as predicate

    return predicate(mapping)


def nested_ptime_applicable(
    mapping: Any, context: ExecutionContext | None = None
) -> bool:
    """Is the Fact-5.1 PTIME consistency route applicable?

    Requires ``SM(⇓)`` (no horizontal axes, comparisons or constants) over
    nested-relational DTDs; the DTD classification is read through the
    compilation cache.
    """
    from repro.analysis.fragment import nested_ptime_applicable as predicate

    return predicate(mapping, context)


# ---------------------------------------------------------------------------
# per-problem routing
# ---------------------------------------------------------------------------


def _solve_consistency(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.analysis.fragment import predict_consistency
    from repro.consistency.bounded import is_consistent_bounded
    from repro.consistency.cons_automata import is_consistent_automata
    from repro.consistency.cons_nested import is_consistent_nested

    mapping = problem.mapping
    prediction = predict_consistency(mapping, context)
    info.update(algorithm=prediction.algorithm, reason=prediction.reason)
    if prediction.algorithm == "cons-nested":
        return is_consistent_nested(mapping, context)
    if prediction.algorithm == "cons-automata":
        return is_consistent_automata(mapping, context)
    return is_consistent_bounded(mapping, context=context)


def _solve_abscons(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.analysis.fragment import predict_abscons
    from repro.consistency.abscons import decide_absolute_consistency

    prediction = predict_abscons(problem.mapping, context)
    verdict, algorithm = decide_absolute_consistency(problem.mapping, context)
    if algorithm == prediction.algorithm:
        reason = prediction.reason
    else:
        # the one static-dynamic divergence: a predicted-exact route
        # (source expansion) overflowed its budget mid-run
        reason = (
            f"predicted {prediction.algorithm} exceeded its budget: "
            "sound bounded refutation instead"
        )
    info.update(algorithm=algorithm, reason=reason)
    return verdict


def _solve_membership(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.analysis.fragment import predict_membership
    from repro.mappings.membership import is_solution
    from repro.mappings.skolem import is_skolem_solution

    prediction = predict_membership(problem.mapping)
    info.update(algorithm=prediction.algorithm, reason=prediction.reason)
    if prediction.algorithm == "membership-skolem":
        return is_skolem_solution(
            problem.mapping, problem.source_tree, problem.target_tree
        )
    return is_solution(problem.mapping, problem.source_tree, problem.target_tree)


def _solve_composition_membership(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.analysis.fragment import predict_composition_membership
    from repro.composition.semantics import (
        composition_contains,
        composition_contains_exact,
    )
    from repro.errors import NotInClassError

    prediction = predict_composition_membership(problem.m12, problem.m23)
    if prediction.algorithm == "composition-exact":
        try:
            verdict = composition_contains_exact(
                problem.m12, problem.m23, problem.source_tree, problem.final_tree
            )
        except (NotInClassError, SignatureError):
            # defensive: the executor found a class violation the static
            # predicates missed — fall through to the bounded search
            pass
        else:
            info.update(algorithm=prediction.algorithm, reason=prediction.reason)
            return verdict
    info.update(
        algorithm="composition-bounded",
        reason="outside the Theorem 8.2 class: bounded intermediate-tree "
        "search with the finite value abstraction (Section 7.2)",
    )
    return composition_contains(
        problem.m12,
        problem.m23,
        problem.source_tree,
        problem.final_tree,
        context=context,
    )


def _solve_composition_consistency(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.analysis.fragment import predict_composition_consistency
    from repro.composition.conscomp import (
        is_composition_consistent,
        is_composition_consistent_bounded,
    )

    mappings = list(problem.mappings)
    prediction = predict_composition_consistency(tuple(mappings))
    info.update(algorithm=prediction.algorithm, reason=prediction.reason)
    if prediction.algorithm == "conscomp-automata":
        return is_composition_consistent(mappings, context)
    return is_composition_consistent_bounded(mappings, context=context)


def _solve_satisfiability(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.patterns.satisfiability import is_satisfiable

    info.update(
        algorithm="pattern-sat",
        reason="closure-automaton reachability with tag lifting (Lemma 4.1)",
    )
    return is_satisfiable(problem.dtd, problem.pattern, context)


def _solve_separation(
    problem: Any, context: ExecutionContext, info: dict[str, str]
) -> Verdict:
    from repro.patterns.separation import separation_verdict

    info.update(
        algorithm="separation",
        reason="joint closure automaton over P+ ∪ P-: conforming root state "
        "containing P+ and avoiding P- (Section 9)",
    )
    return separation_verdict(
        problem.dtd, problem.positives, problem.negatives, context
    )


_ROUTES = {
    ConsistencyProblem: _solve_consistency,
    AbsoluteConsistencyProblem: _solve_abscons,
    MembershipProblem: _solve_membership,
    CompositionMembershipProblem: _solve_composition_membership,
    CompositionConsistencyProblem: _solve_composition_consistency,
    SatisfiabilityProblem: _solve_satisfiability,
    SeparationProblem: _solve_separation,
}


def register_route(
    problem_type: type,
    route: Callable[[Any, ExecutionContext, dict[str, str]], Verdict],
) -> None:
    """Register a routing function for an out-of-tree problem type.

    *route* is called as ``route(problem, context, info)`` and must return
    a :class:`~repro.engine.verdicts.Verdict`.  Registration at module
    import time makes the type solvable in :func:`solve_many` worker
    processes too: unpickling the problem imports its defining module,
    which re-registers the route.
    """
    _ROUTES[problem_type] = route


def solve(problem: Any, context: ExecutionContext | None = None) -> Verdict:
    """Decide *problem* with the strongest applicable algorithm.

    The returned verdict carries ``.report`` (algorithm, routing reason,
    cost accounting) and ``.problem`` (for ``certify()``).  Bound
    exhaustion inside any route surfaces as ``Unknown``, never as a
    :class:`~repro.errors.BoundExceededError`.
    """
    from repro.analysis.passes import diagnostics_for_problem

    route = _ROUTES.get(type(problem))
    if route is None:
        raise XsmError(
            f"engine.solve cannot route a {type(problem).__name__}; "
            "use one of repro.engine.problems"
        )
    if context is None:
        context = current_context()
    if context is None:
        context = ExecutionContext()
    problem_name = type(problem).__name__
    # Incremental re-solving (repro.incremental): a context carrying a
    # verdict memo gets content-identical, still-valid decided verdicts
    # back without re-running the route — the memo is kept honest by
    # delta invalidation through the cache's dependency graph.
    memo = getattr(context, "memo", None)
    if memo is not None:
        reused = memo.lookup(problem, context.budget)
        if reused is not None:
            return reused
    info = {"algorithm": problem_name, "reason": ""}
    cache_before = context.cache.stats()
    expansions_before = context.expansions
    started = time.perf_counter()
    context.start_clock()
    with maybe_profile(f"solve-{problem_name}"):
        with context.activate(), trace("solve", problem=problem_name) as span:
            try:
                verdict = route(problem, context, info)
            except BoundExceededError as exc:
                verdict = Unknown(str(exc), bound_exhausted=True)
            outcome = (
                "proved" if verdict.is_proved
                else "refuted" if verdict.is_refuted
                else "unknown"
            )
            span.annotate(algorithm=info["algorithm"], outcome=outcome)
    elapsed = time.perf_counter() - started
    expansions = context.expansions - expansions_before
    cache_after = context.cache.stats()
    verdict.report = SolveReport(
        problem=problem_name,
        algorithm=info["algorithm"],
        reason=info["reason"],
        elapsed=elapsed,
        expansions=expansions,
        cache={
            "hits": cache_after["hits"] - cache_before["hits"],
            "misses": cache_after["misses"] - cache_before["misses"],
            "evictions": cache_after["evictions"] - cache_before["evictions"],
            "entries": cache_after["entries"],
        },
        budget=context.budget,
        trace=None if span.is_noop else span.to_dict(),
        diagnostics=diagnostics_for_problem(problem, context),
        request_id=current_tags().get("request"),
    )
    verdict.problem = problem
    if memo is not None:
        memo.store(problem, context.budget, verdict)
    _SOLVES.labels(
        problem=problem_name, algorithm=info["algorithm"], outcome=outcome
    ).inc()
    # exemplar: latency buckets remember the trace ID of their worst
    # observation, so a histogram spike links back to /debug/requests/<id>
    _SOLVE_LATENCY.labels(algorithm=info["algorithm"]).observe(
        elapsed, exemplar=ambient_tag("trace_id")
    )
    if expansions:
        _EXPANSIONS.labels(algorithm=info["algorithm"]).inc(expansions)
    return verdict
