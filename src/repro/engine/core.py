"""``engine.solve``: the single front door of every decision procedure.

Routing follows Figures 1–2 of the paper: the problem type plus the
mapping's ``SM(σ)`` fragment (axes, comparisons, constants) and the
DTD classification select the strongest applicable algorithm — exact
where the theory gives one, sound-but-bounded where it proves
undecidability or leaves the construction open.  The selected algorithm,
the routing rationale and the run's cost (wall clock, charged expansions,
cache hit/miss deltas) are recorded in a
:class:`~repro.engine.report.SolveReport` attached to the returned
verdict, and :class:`~repro.engine.budget.BudgetExceeded` (or any legacy
:class:`~repro.errors.BoundExceededError`) raised mid-search is converted
into ``Unknown(bound_exhausted=True)`` — bound exhaustion never escapes
``solve`` as an exception.

Solver modules are imported lazily inside the routing functions: they
import the engine's leaf modules (verdicts, budget, cache) at module
level, so importing them from here at module level would be circular.
"""

from __future__ import annotations

import time

from repro.engine.budget import ExecutionContext, current_context
from repro.engine.problems import (
    AbsoluteConsistencyProblem,
    CompositionConsistencyProblem,
    CompositionMembershipProblem,
    ConsistencyProblem,
    MembershipProblem,
    SatisfiabilityProblem,
    SeparationProblem,
)
from repro.engine.report import SolveReport
from repro.engine.verdicts import Unknown, Verdict
from repro.errors import BoundExceededError, SignatureError, XsmError
from repro.obs import REGISTRY, maybe_profile, trace

#: Always-on operational series (pre-bound families; cheap label lookups).
_SOLVES = REGISTRY.counter(
    "repro_solves_total",
    "Solves by problem type, selected algorithm and verdict outcome",
    ("problem", "algorithm", "outcome"),
)
_SOLVE_LATENCY = REGISTRY.histogram(
    "repro_solve_latency_seconds",
    "Wall-clock seconds per solve, by selected algorithm",
    ("algorithm",),
)
_EXPANSIONS = REGISTRY.counter(
    "repro_expansions_total",
    "Budget-charged search expansions, by selected algorithm",
    ("algorithm",),
)


# ---------------------------------------------------------------------------
# fragment predicates (Figure 1's row labels)
# ---------------------------------------------------------------------------


def uses_constants(mapping) -> bool:
    """Does any pattern of the mapping mention a constant?"""
    from repro.values import Const

    return any(
        isinstance(term, Const)
        for std in mapping.stds
        for pattern in (std.source, std.target)
        for term in pattern.terms()
    )


def uses_skolem_functions(mapping) -> bool:
    """Does any std use Skolem functions (Section 8 semantics)?"""
    return any(std.skolem_functions() for std in mapping.stds)


def nested_ptime_applicable(mapping, context: ExecutionContext | None = None) -> bool:
    """Is the Fact-5.1 PTIME consistency route applicable?

    Requires ``SM(⇓)`` (no horizontal axes, comparisons or constants) over
    nested-relational DTDs; the DTD classification is read through the
    compilation cache.
    """
    from repro.engine.cache import dtd_classification
    from repro.patterns.features import HORIZONTAL

    if mapping.uses_data_comparisons() or uses_constants(mapping):
        return False
    if mapping.signature().features & HORIZONTAL:
        return False
    return (
        dtd_classification(mapping.source_dtd, context).nested_relational
        and dtd_classification(mapping.target_dtd, context).nested_relational
    )


# ---------------------------------------------------------------------------
# per-problem routing
# ---------------------------------------------------------------------------


def _solve_consistency(problem, context, info) -> Verdict:
    from repro.consistency.bounded import is_consistent_bounded
    from repro.consistency.cons_automata import is_consistent_automata
    from repro.consistency.cons_nested import is_consistent_nested

    mapping = problem.mapping
    if not mapping.uses_data_comparisons() and not uses_constants(mapping):
        if nested_ptime_applicable(mapping, context):
            info.update(
                algorithm="cons-nested",
                reason="SM(⇓) over nested-relational DTDs: PTIME via the "
                "minimal tree (Fact 5.1)",
            )
            return is_consistent_nested(mapping, context)
        info.update(
            algorithm="cons-automata",
            reason="no data comparisons or constants: exact trigger-set "
            "automata (Theorem 5.2, EXPTIME)",
        )
        return is_consistent_automata(mapping, context)
    info.update(
        algorithm="cons-bounded",
        reason="data comparisons or constants: sound bounded witness search "
        "only (Theorems 5.4/5.5)",
    )
    return is_consistent_bounded(mapping, context=context)


def _solve_abscons(problem, context, info) -> Verdict:
    from repro.consistency.abscons import decide_absolute_consistency

    reasons = {
        "abscons-sm0": "value-free SM° mapping: exact trigger-set coverage "
        "(Proposition 6.1)",
        "abscons-ptime": "nested-relational + fully specified: exact rigidity "
        "analysis (Theorem 6.3, PTIME)",
        "abscons-expansion": "⇓-sources over non-recursive DTDs: exact via "
        "source expansion + rigidity analysis",
        "abscons-bounded": "outside every exact class: sound bounded "
        "refutation (Theorem 6.2 gives EXPSPACE, construction unpublished)",
    }
    verdict, algorithm = decide_absolute_consistency(problem.mapping, context)
    info.update(algorithm=algorithm, reason=reasons.get(algorithm, ""))
    return verdict


def _solve_membership(problem, context, info) -> Verdict:
    from repro.mappings.membership import is_solution
    from repro.mappings.skolem import is_skolem_solution

    if uses_skolem_functions(problem.mapping):
        info.update(
            algorithm="membership-skolem",
            reason="Skolem stds: backtracking valuation of the shared "
            "unknowns (Section 8)",
        )
        return is_skolem_solution(
            problem.mapping, problem.source_tree, problem.target_tree
        )
    info.update(
        algorithm="membership",
        reason="plain stds: conformance plus per-obligation semi-joins "
        "(Definition 3.2)",
    )
    return is_solution(problem.mapping, problem.source_tree, problem.target_tree)


def _solve_composition_membership(problem, context, info) -> Verdict:
    from repro.composition.semantics import (
        composition_contains,
        composition_contains_exact,
    )
    from repro.errors import NotInClassError

    try:
        verdict = composition_contains_exact(
            problem.m12, problem.m23, problem.source_tree, problem.final_tree
        )
    except (NotInClassError, SignatureError):
        info.update(
            algorithm="composition-bounded",
            reason="outside the Theorem 8.2 class: bounded intermediate-tree "
            "search with the finite value abstraction (Section 7.2)",
        )
        return composition_contains(
            problem.m12,
            problem.m23,
            problem.source_tree,
            problem.final_tree,
            context=context,
        )
    info.update(
        algorithm="composition-exact",
        reason="Theorem 8.2 class: membership via the composed Skolem mapping",
    )
    return verdict


def _solve_composition_consistency(problem, context, info) -> Verdict:
    from repro.composition.conscomp import (
        is_composition_consistent,
        is_composition_consistent_bounded,
    )

    mappings = list(problem.mappings)
    try:
        verdict = is_composition_consistent(mappings, context)
    except SignatureError:
        info.update(
            algorithm="conscomp-bounded",
            reason="comparisons or constants in the chain: sound bounded "
            "witness-chain search (the problem is undecidable, Theorem 7.1(2))",
        )
        return is_composition_consistent_bounded(mappings, context=context)
    info.update(
        algorithm="conscomp-automata",
        reason="comparison-free chain: exact staged trigger-set chaining "
        "(Theorem 7.1(1), EXPTIME)",
    )
    return verdict


def _solve_satisfiability(problem, context, info) -> Verdict:
    from repro.patterns.satisfiability import is_satisfiable

    info.update(
        algorithm="pattern-sat",
        reason="closure-automaton reachability with tag lifting (Lemma 4.1)",
    )
    return is_satisfiable(problem.dtd, problem.pattern, context)


def _solve_separation(problem, context, info) -> Verdict:
    from repro.patterns.separation import separation_verdict

    info.update(
        algorithm="separation",
        reason="joint closure automaton over P+ ∪ P-: conforming root state "
        "containing P+ and avoiding P- (Section 9)",
    )
    return separation_verdict(
        problem.dtd, problem.positives, problem.negatives, context
    )


_ROUTES = {
    ConsistencyProblem: _solve_consistency,
    AbsoluteConsistencyProblem: _solve_abscons,
    MembershipProblem: _solve_membership,
    CompositionMembershipProblem: _solve_composition_membership,
    CompositionConsistencyProblem: _solve_composition_consistency,
    SatisfiabilityProblem: _solve_satisfiability,
    SeparationProblem: _solve_separation,
}


def register_route(problem_type: type, route) -> None:
    """Register a routing function for an out-of-tree problem type.

    *route* is called as ``route(problem, context, info)`` and must return
    a :class:`~repro.engine.verdicts.Verdict`.  Registration at module
    import time makes the type solvable in :func:`solve_many` worker
    processes too: unpickling the problem imports its defining module,
    which re-registers the route.
    """
    _ROUTES[problem_type] = route


def solve(problem, context: ExecutionContext | None = None) -> Verdict:
    """Decide *problem* with the strongest applicable algorithm.

    The returned verdict carries ``.report`` (algorithm, routing reason,
    cost accounting) and ``.problem`` (for ``certify()``).  Bound
    exhaustion inside any route surfaces as ``Unknown``, never as a
    :class:`~repro.errors.BoundExceededError`.
    """
    route = _ROUTES.get(type(problem))
    if route is None:
        raise XsmError(
            f"engine.solve cannot route a {type(problem).__name__}; "
            "use one of repro.engine.problems"
        )
    if context is None:
        context = current_context()
    if context is None:
        context = ExecutionContext()
    problem_name = type(problem).__name__
    info = {"algorithm": problem_name, "reason": ""}
    cache_before = context.cache.stats()
    expansions_before = context.expansions
    started = time.perf_counter()
    context.start_clock()
    with maybe_profile(f"solve-{problem_name}"):
        with context.activate(), trace("solve", problem=problem_name) as span:
            try:
                verdict = route(problem, context, info)
            except BoundExceededError as exc:
                verdict = Unknown(str(exc), bound_exhausted=True)
            outcome = (
                "proved" if verdict.is_proved
                else "refuted" if verdict.is_refuted
                else "unknown"
            )
            span.annotate(algorithm=info["algorithm"], outcome=outcome)
    elapsed = time.perf_counter() - started
    expansions = context.expansions - expansions_before
    cache_after = context.cache.stats()
    verdict.report = SolveReport(
        problem=problem_name,
        algorithm=info["algorithm"],
        reason=info["reason"],
        elapsed=elapsed,
        expansions=expansions,
        cache={
            "hits": cache_after["hits"] - cache_before["hits"],
            "misses": cache_after["misses"] - cache_before["misses"],
            "evictions": cache_after["evictions"] - cache_before["evictions"],
            "entries": cache_after["entries"],
        },
        budget=context.budget,
        trace=None if span.is_noop else span.to_dict(),
    )
    verdict.problem = problem
    _SOLVES.labels(
        problem=problem_name, algorithm=info["algorithm"], outcome=outcome
    ).inc()
    _SOLVE_LATENCY.labels(algorithm=info["algorithm"]).observe(elapsed)
    if expansions:
        _EXPANSIONS.labels(algorithm=info["algorithm"]).inc(expansions)
    return verdict
