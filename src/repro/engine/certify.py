"""Independent re-validation of verdict certificates.

``certify(verdict, problem)`` re-checks the evidence attached to a
``Proved`` / ``Refuted`` verdict **without** trusting the solver that
produced it: witness trees are re-validated through DTD conformance and
the membership checkers (:class:`~repro.mappings.membership.SolutionChecker`
and its Skolem analogue) plus the pattern engine — machinery independent
of the automata constructions and rigidity analyses that emit the
verdicts.  :class:`~repro.engine.verdicts.AnalysisCertificate`\\ s (exact
claims with no small witness object) are validated by a deterministic
second run of the named analysis.

Returns True when the certificate checks out; raises
:class:`CertificationError` otherwise (including for ``Unknown`` verdicts,
which carry nothing to certify, and for certificate/problem mismatches).
"""

from __future__ import annotations

from typing import Any

import time

from repro.engine.verdicts import (
    AnalysisCertificate,
    ConformanceFailure,
    Counterexample,
    MiddleTree,
    ObligationsMet,
    Proved,
    Refuted,
    RigidityExplanation,
    SatisfyingTree,
    SeparatingTree,
    TriggerRefutation,
    Verdict,
    ViolationWitness,
    WitnessChain,
    WitnessPair,
)
from repro.errors import XsmError
from repro.obs import REGISTRY, trace

#: Proof-checking cost, kept separable from search cost (its own span too).
_CERTIFY = REGISTRY.counter(
    "repro_certify_total",
    "Certificate re-validations by certificate type and outcome",
    ("certificate", "outcome"),
)
_CERTIFY_LATENCY = REGISTRY.histogram(
    "repro_certify_latency_seconds",
    "Wall-clock seconds per certificate re-validation",
)


class CertificationError(XsmError):
    """A certificate failed its independent re-check."""


def _fail(message: str) -> bool:
    raise CertificationError(message)


def _membership_holds(mapping: Any, source_tree: Any, target_tree: Any) -> bool:
    """Boolean membership through the checker layer (conformance included)."""
    from repro.engine.core import uses_skolem_functions
    from repro.mappings.membership import SolutionChecker
    from repro.mappings.skolem import SkolemSolutionChecker

    if not mapping.source_dtd.conforms(source_tree):
        return False
    make_checker = (
        SkolemSolutionChecker if uses_skolem_functions(mapping) else SolutionChecker
    )
    return make_checker(mapping, source_tree).is_solution_for(target_tree)


# ---------------------------------------------------------------------------
# per-certificate checks
# ---------------------------------------------------------------------------


def _certify_witness_pair(certificate: WitnessPair, problem: Any) -> bool:
    mapping = problem.mapping
    if not mapping.source_dtd.conforms(certificate.source):
        return _fail("witness source tree does not conform to the source DTD")
    if not mapping.target_dtd.conforms(certificate.target):
        return _fail("witness target tree does not conform to the target DTD")
    if not _membership_holds(mapping, certificate.source, certificate.target):
        return _fail("witness pair is not in [[M]]")
    return True


def _certify_witness_chain(certificate: WitnessChain, problem: Any) -> bool:
    mappings = list(problem.mappings)
    trees = certificate.trees
    if len(trees) != len(mappings) + 1:
        return _fail(
            f"witness chain has {len(trees)} trees for {len(mappings)} mappings"
        )
    if not mappings[0].source_dtd.conforms(trees[0]):
        return _fail("chain head does not conform to the first source DTD")
    for index, mapping in enumerate(mappings):
        if not mapping.target_dtd.conforms(trees[index + 1]):
            return _fail(f"chain tree {index + 1} fails target-DTD conformance")
        if not _membership_holds(mapping, trees[index], trees[index + 1]):
            return _fail(
                f"consecutive pair {index} is not a solution of mapping {index}"
            )
    return True


def _certify_middle_tree(certificate: MiddleTree, problem: Any) -> bool:
    middle = certificate.middle
    if not problem.m12.target_dtd.conforms(middle):
        return _fail("middle tree does not conform to the intermediate DTD")
    if not _membership_holds(problem.m12, problem.source_tree, middle):
        return _fail("(source, middle) is not in [[M12]]")
    if not _membership_holds(problem.m23, middle, problem.final_tree):
        return _fail("(middle, final) is not in [[M23]]")
    return True


def _certify_satisfying_tree(certificate: SatisfyingTree, problem: Any) -> bool:
    from repro.patterns.matching import matches_at_root

    if not problem.dtd.conforms(certificate.tree):
        return _fail("satisfying tree does not conform to the DTD")
    if not matches_at_root(problem.pattern, certificate.tree):
        return _fail("satisfying tree does not match the pattern")
    return True


def _certify_separating_tree(certificate: SeparatingTree, problem: Any) -> bool:
    from repro.patterns.matching import matches_at_root

    tree = certificate.tree
    if not problem.dtd.conforms(tree):
        return _fail("separating tree does not conform to the DTD")
    for pattern in problem.positives:
        if not matches_at_root(pattern, tree):
            return _fail("separating tree misses a positive pattern")
    for pattern in problem.negatives:
        if matches_at_root(pattern, tree):
            return _fail("separating tree matches a negative pattern")
    return True


def _certify_counterexample(certificate: Counterexample, problem: Any) -> bool:
    from repro.consistency.bounded import default_value_domain
    from repro.engine.budget import resolve_budget
    from repro.verification.oracle import oracle_has_solution

    mapping = problem.mapping
    source = certificate.source
    if not mapping.source_dtd.conforms(source):
        return _fail("counterexample does not conform to the source DTD")
    budget = resolve_budget(None)
    domain = tuple(default_value_domain(mapping)) + tuple(
        sorted(source.adom(), key=repr)
    )
    if oracle_has_solution(mapping, source, budget.max_target_size, domain):
        return _fail("counterexample has a solution within the check bounds")
    return True


def _certify_trigger_refutation(certificate: TriggerRefutation, problem: Any) -> bool:
    from repro.patterns.matching import engine_for

    mapping = problem.mapping
    source = certificate.source
    if not mapping.source_dtd.conforms(source):
        return _fail("refutation source tree does not conform to the source DTD")
    engine = engine_for(source)
    for index in certificate.std_indices:
        if index < 0 or index >= len(mapping.stds):
            return _fail(f"refutation names std #{index}, which does not exist")
        if not engine.exists_at_root(mapping.stds[index].source):
            return _fail(
                f"refutation claims std #{index} is triggered, but its "
                "source pattern does not match the tree"
            )
    return True


def _certify_obligations_met(certificate: ObligationsMet, problem: Any) -> bool:
    from repro.engine.problems import MembershipProblem

    if isinstance(problem, MembershipProblem):
        if not _membership_holds(
            problem.mapping, problem.source_tree, problem.target_tree
        ):
            return _fail("membership re-check disagrees with Proved")
        return True
    # composition membership decided via the composed mapping (Theorem 8.2)
    from repro.composition.compose import compose
    from repro.mappings.skolem import SkolemMapping

    composed = compose(
        SkolemMapping(problem.m12.source_dtd, problem.m12.target_dtd, problem.m12.stds),
        SkolemMapping(problem.m23.source_dtd, problem.m23.target_dtd, problem.m23.stds),
    )
    if not _membership_holds(composed, problem.source_tree, problem.final_tree):
        return _fail("composed-mapping membership re-check disagrees with Proved")
    return True


def _certify_violation_witness(certificate: ViolationWitness, problem: Any) -> bool:
    mapping = problem.mapping
    if certificate.std_index < 0 or certificate.std_index >= len(mapping.stds):
        return _fail("violation names a non-existent std")
    if _membership_holds(mapping, problem.source_tree, problem.target_tree):
        return _fail("membership re-check disagrees with Refuted")
    from repro.mappings.membership import violations

    failing = violations(mapping, problem.source_tree, problem.target_tree)
    std = mapping.stds[certificate.std_index]
    if not any(failed is std for failed, __ in failing):
        return _fail("the named std has no failing source match")
    return True


def _certify_conformance_failure(certificate: ConformanceFailure, problem: Any) -> bool:
    sides = _conformance_sides(problem)
    checker = sides.get(certificate.side)
    if checker is None:
        return _fail(f"no side named {certificate.side!r} on this problem")
    dtd, tree = checker
    if dtd.conforms(tree):
        return _fail(f"the {certificate.side} tree actually conforms")
    return True


def _conformance_sides(problem: Any) -> dict:
    from repro.engine.problems import (
        CompositionMembershipProblem,
        MembershipProblem,
    )

    if isinstance(problem, MembershipProblem):
        return {
            "source": (problem.mapping.source_dtd, problem.source_tree),
            "target": (problem.mapping.target_dtd, problem.target_tree),
        }
    if isinstance(problem, CompositionMembershipProblem):
        return {
            "source": (problem.m12.source_dtd, problem.source_tree),
            "target": (problem.m23.target_dtd, problem.final_tree),
        }
    return {}


def _certify_rigidity(certificate: RigidityExplanation, problem: Any) -> bool:
    from repro.consistency.abscons import abscons_ptime_analysis
    from repro.consistency.expansion import expand_mapping_sources
    from repro.errors import SignatureError

    if not certificate.problems:
        return _fail("rigidity refutation lists no problems")
    try:
        rerun = abscons_ptime_analysis(problem.mapping)
    except SignatureError:
        rerun = abscons_ptime_analysis(expand_mapping_sources(problem.mapping))
    if not rerun:
        return _fail("rigidity re-analysis found no problems")
    return True


def _certify_analysis(
    certificate: AnalysisCertificate, verdict: Verdict, problem: Any
) -> bool:
    """Deterministic second run of the named analysis."""
    rerun = _ANALYSIS_RERUNS.get(certificate.algorithm)
    if rerun is None:
        return _fail(f"no re-check available for analysis {certificate.algorithm!r}")
    if not rerun(verdict, problem):
        return _fail(
            f"re-running {certificate.algorithm!r} disagrees with the verdict"
        )
    return True


def _rerun_cons_nested(verdict: Verdict, problem: Any) -> bool:
    # the Proved case: the PTIME analysis must produce a checkable witness
    from repro.consistency.cons_nested import nested_consistency_witness

    pair = nested_consistency_witness(problem.mapping)
    if pair is None:
        return False
    source, target = pair
    return (
        problem.mapping.source_dtd.conforms(source)
        and problem.mapping.target_dtd.conforms(target)
        and _membership_holds(problem.mapping, source, target)
    )


def _rerun_cons_automata(verdict: Verdict, problem: Any) -> bool:
    # the Refuted unsatisfiable-source-DTD case
    return not problem.mapping.source_dtd.is_satisfiable()


def _rerun_abscons_sm0(verdict: Verdict, problem: Any) -> bool:
    from repro.consistency.abscons import sm0_counterexample

    return (sm0_counterexample(problem.mapping) is None) == verdict.is_proved


def _rerun_abscons_ptime(verdict: Verdict, problem: Any) -> bool:
    from repro.consistency.abscons import abscons_ptime_analysis

    return (not abscons_ptime_analysis(problem.mapping)) == verdict.is_proved


def _rerun_abscons_expansion(verdict: Verdict, problem: Any) -> bool:
    from repro.consistency.abscons import abscons_ptime_analysis
    from repro.consistency.expansion import expand_mapping_sources

    expanded = expand_mapping_sources(problem.mapping)
    return (not abscons_ptime_analysis(expanded)) == verdict.is_proved


def _rerun_conscomp(verdict: Verdict, problem: Any) -> bool:
    from repro.composition.conscomp import is_composition_consistent

    return is_composition_consistent(list(problem.mappings)) == verdict


def _rerun_pattern_sat(verdict: Verdict, problem: Any) -> bool:
    from repro.patterns.satisfiability import satisfying_tree

    return (satisfying_tree(problem.dtd, problem.pattern) is not None) == (
        verdict.is_proved
    )


def _rerun_separation(verdict: Verdict, problem: Any) -> bool:
    from repro.patterns.separation import find_separating_tree

    # an AnalysisCertificate for separation always asserts "no separator"
    return (
        find_separating_tree(problem.dtd, problem.positives, problem.negatives)
        is None
    )


def _rerun_skolem_membership(verdict: Verdict, problem: Any) -> bool:
    return (
        _membership_holds(problem.mapping, problem.source_tree, problem.target_tree)
        == verdict.is_proved
    )


_ANALYSIS_RERUNS = {
    "cons-nested": _rerun_cons_nested,
    "cons-automata": _rerun_cons_automata,
    "abscons-sm0": _rerun_abscons_sm0,
    "abscons-ptime": _rerun_abscons_ptime,
    "abscons-expansion": _rerun_abscons_expansion,
    "conscomp": _rerun_conscomp,
    "pattern-sat": _rerun_pattern_sat,
    "separation": _rerun_separation,
    "skolem-membership": _rerun_skolem_membership,
}


def certify(verdict: Verdict, problem: Any = None) -> bool:
    """Re-validate a verdict's certificate against independent checkers.

    *problem* defaults to the instance ``engine.solve`` attached; verdicts
    produced by calling a solver module directly need it passed
    explicitly.  Raises :class:`CertificationError` when the certificate
    does not hold (or the verdict is ``Unknown``/bare).

    Records its own ``certify`` span and ``repro_certify_*`` metrics so
    proof-checking cost stays separable from search cost.
    """
    certificate = getattr(verdict, "certificate", None)
    kind = type(certificate).__name__ if certificate is not None else "none"
    started = time.perf_counter()
    with trace("certify", certificate=kind) as span:
        try:
            ok = _certify_dispatch(verdict, problem)
        except CertificationError:
            span.annotate(outcome="failed")
            _CERTIFY.labels(certificate=kind, outcome="failed").inc()
            _CERTIFY_LATENCY.observe(time.perf_counter() - started)
            raise
        span.annotate(outcome="ok")
    _CERTIFY.labels(certificate=kind, outcome="ok").inc()
    _CERTIFY_LATENCY.observe(time.perf_counter() - started)
    return ok


def _certify_dispatch(verdict: Verdict, problem: Any) -> bool:
    if problem is None:
        problem = verdict.problem
    if problem is None:
        return _fail("no problem instance to certify against")
    if not isinstance(verdict, (Proved, Refuted)):
        return _fail("only Proved/Refuted verdicts carry certificates")
    certificate = verdict.certificate
    if certificate is None:
        return _fail("verdict carries no certificate")
    if isinstance(certificate, WitnessPair):
        return _certify_witness_pair(certificate, problem)
    if isinstance(certificate, WitnessChain):
        return _certify_witness_chain(certificate, problem)
    if isinstance(certificate, MiddleTree):
        return _certify_middle_tree(certificate, problem)
    if isinstance(certificate, SatisfyingTree):
        return _certify_satisfying_tree(certificate, problem)
    if isinstance(certificate, SeparatingTree):
        return _certify_separating_tree(certificate, problem)
    if isinstance(certificate, Counterexample):
        return _certify_counterexample(certificate, problem)
    if isinstance(certificate, TriggerRefutation):
        return _certify_trigger_refutation(certificate, problem)
    if isinstance(certificate, ObligationsMet):
        return _certify_obligations_met(certificate, problem)
    if isinstance(certificate, ViolationWitness):
        return _certify_violation_witness(certificate, problem)
    if isinstance(certificate, ConformanceFailure):
        return _certify_conformance_failure(certificate, problem)
    if isinstance(certificate, RigidityExplanation):
        return _certify_rigidity(certificate, problem)
    if isinstance(certificate, AnalysisCertificate):
        return _certify_analysis(certificate, verdict, problem)
    return _fail(f"unknown certificate type {type(certificate).__name__}")
