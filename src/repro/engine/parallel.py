"""``engine.solve_many``: the batch front door over a process pool.

The paper's evaluation is sweeps of many independent ``solve()`` calls
(consistency, membership, composition) over generated workloads.  This
module fans such a batch out over a :class:`ProcessPoolExecutor` with

* **chunked work-stealing** — the batch is cut into small chunks (a few
  per worker) pulled by whichever worker frees up first, so one slow
  EXPTIME cell cannot serialize the sweep behind it;
* **per-task enforcement** — each worker solve runs under the caller's
  :class:`~repro.engine.budget.Budget` (tightened to ``task_timeout`` as
  a cooperative deadline), and a hard watchdog catches what budgets
  cannot: a hung worker is killed and its tasks re-run in isolation,
  a crashed worker's tasks are re-attributed one by one.  A task that
  hangs or dies yields an ``Unknown`` verdict with a ``worker-timeout``
  or ``worker-crash`` reason — never an exception, never a lost result;
* **deterministic ordering** — ``result[i]`` answers ``problems[i]``
  regardless of which worker finished first;
* **aggregated accounting** — a :class:`~repro.engine.report.BatchReport`
  sums the per-worker compilation-cache deltas, verdict outcomes and
  recovery events.

Workers keep a process-global :class:`ExecutionContext` across chunks,
so their in-memory caches warm up over the batch; pass ``cache_dir`` (or
set ``REPRO_CACHE_DIR``) to share compiled artifacts between workers and
across runs through the :class:`~repro.engine.diskcache.DiskCacheTier`.

Problems must be picklable — every type in :mod:`repro.engine.problems`
round-trips (guaranteed by tests); out-of-tree types registered through
:func:`repro.engine.core.register_route` at module import time work too,
because unpickling re-imports the registering module.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterable, Sequence

from repro.engine.budget import Budget, ExecutionContext, resolve_context
from repro.engine.cache import CompilationCache
from repro.engine.diskcache import DiskCacheTier
from repro.engine.report import BatchReport, SolveReport
from repro.engine.verdicts import Unknown, Verdict
from repro.obs import (
    REGISTRY,
    ambient_tag,
    bind_tags,
    collecting,
    current_tags,
    trace,
    tracing_active,
    truncated_span,
)
from repro.obs.metrics import diff_snapshots

#: ``Unknown.reason`` prefixes for results the pool had to synthesize.
WORKER_TIMEOUT = "worker-timeout"
WORKER_CRASH = "worker-crash"

#: Pool-level operational series (driver side unless noted).
_QUEUE_WAIT = REGISTRY.histogram(
    "repro_queue_wait_seconds",
    "Seconds a chunk waited between driver submission and worker pickup",
)
_WORKER_CHUNKS = REGISTRY.counter(
    "repro_worker_chunks_total",
    "Chunks completed per worker process (the work-stealing spread)",
    ("worker",),
)
_WORKER_FAILURES = REGISTRY.counter(
    "repro_worker_failures_total",
    "Tasks lost to worker failures, by kind (timeout / crash / error)",
    ("kind",),
)
_BATCH_PROBLEMS = REGISTRY.counter(
    "repro_batch_problems_total",
    "Problems submitted through solve_many",
)
_BATCH_RETRIES = REGISTRY.counter(
    "repro_batch_retries_total",
    "Innocent-bystander chunks requeued after a pool failure",
)

#: How often the driver wakes up to collect results and check deadlines.
_POLL_SECONDS = 0.05
#: Watchdog slack on top of the cooperative per-task deadline.
_TIMEOUT_GRACE = 1.0


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

_WORKER_CONTEXT: ExecutionContext | None = None
_WORKER_TRACE = False


def _effective_budget(budget: Budget, task_timeout: float | None) -> Budget:
    """Tighten *budget*'s deadline to the per-task timeout (first line of
    defense: budget-aware searches give up cooperatively before the
    watchdog has to kill anything)."""
    if task_timeout is None:
        return budget
    deadline = budget.deadline_seconds
    if deadline is None or deadline > task_timeout:
        return budget.with_(deadline_seconds=task_timeout)
    return budget


def _init_worker(
    budget: Budget,
    cache_size: int,
    cache_dir: str | None,
    enabled: bool,
    trace_enabled: bool = False,
) -> None:
    """Build the process-global context a worker reuses across chunks."""
    global _WORKER_CONTEXT, _WORKER_TRACE
    disk = DiskCacheTier(cache_dir) if cache_dir else None
    _WORKER_CONTEXT = ExecutionContext(
        budget, cache=CompilationCache(max_entries=cache_size, enabled=enabled, disk=disk)
    )
    _WORKER_TRACE = trace_enabled


def _run_chunk(
    tasks: list[tuple[int, object]],
    tags: dict | None = None,
) -> tuple[list, dict[str, int], dict, dict]:
    """Solve one chunk in a worker.

    Returns ``([(index, verdict)], cache-stat delta, metrics snapshot
    delta, meta)``.  When the driver was tracing, each verdict carries
    its serialized solve span in ``verdict.report.trace`` (spans pickle
    as plain dicts); *meta* records the worker pid, the wall-clock
    pickup time (for queue-wait attribution) and the chunk's elapsed
    seconds.  *tags* re-binds the driver's ambient span tags (request
    IDs) in this worker for the duration of the chunk, so every span
    and report produced here carries them.
    """
    from repro.engine.core import solve

    meta = {"pid": os.getpid(), "picked_up_wall": time.time()}
    started = time.perf_counter()
    context = _WORKER_CONTEXT if _WORKER_CONTEXT is not None else ExecutionContext()
    metrics_before = REGISTRY.snapshot()
    before = context.cache.stats()
    results = []

    def run_all() -> None:
        for index, problem in tasks:
            try:
                verdict = solve(problem, context)
            except Exception as exc:  # a solver bug must not lose the batch
                verdict = Unknown(f"worker-error: {exc!r}")
                verdict.problem = problem
                _WORKER_FAILURES.labels(kind="error").inc()
            results.append((index, verdict))

    with bind_tags(**(tags or {})):
        if _WORKER_TRACE:
            with collecting("worker-chunk", worker=os.getpid()):
                run_all()
        else:
            run_all()
    after = context.cache.stats()
    delta = {
        key: after.get(key, 0) - before.get(key, 0)
        for key in after
        if key != "entries"
    }
    meta["elapsed"] = time.perf_counter() - started
    metrics_delta = diff_snapshots(metrics_before, REGISTRY.snapshot())
    return results, delta, metrics_delta, meta


# ---------------------------------------------------------------------------
# driver side
# ---------------------------------------------------------------------------


class _Chunk:
    __slots__ = ("tasks", "submitted", "submitted_wall")

    def __init__(self, tasks: list[tuple[int, object]]):
        self.tasks = tasks
        self.submitted = 0.0
        self.submitted_wall = 0.0

    def deadline(self, task_timeout: float) -> float:
        """Chunks solve serially, so the wall budget is the per-task sum."""
        return task_timeout * len(self.tasks) + _TIMEOUT_GRACE


class BatchResult(Sequence):
    """Verdicts in problem order plus the aggregated :class:`BatchReport`."""

    def __init__(self, verdicts: list[Verdict], report: BatchReport):
        self.verdicts = verdicts
        self.report = report

    def __len__(self) -> int:
        return len(self.verdicts)

    def __getitem__(self, index: Any) -> Any:
        return self.verdicts[index]

    def decisions(self) -> list[bool | None]:
        return [verdict.decision() for verdict in self.verdicts]

    def __repr__(self) -> str:
        outcomes = self.report.outcomes
        return (
            f"BatchResult({len(self.verdicts)} verdicts: "
            f"{outcomes.get('proved', 0)} proved, "
            f"{outcomes.get('refuted', 0)} refuted, "
            f"{outcomes.get('unknown', 0)} unknown)"
        )


def _synthetic(
    reason: str, detail: str, problem: object, elapsed: float = 0.0,
    tags: dict | None = None,
) -> Unknown:
    """An ``Unknown`` standing in for a lost worker result.

    Failures must not drop observability: the verdict carries a
    :class:`SolveReport` with a *truncated* trace span (the worker's real
    spans died with it) and the failure is counted in
    ``repro_worker_failures_total``.  The truncated span carries the
    batch's ambient *tags* (request IDs) — a crashed or hung worker must
    not lose the request attribution either.
    """
    verdict = Unknown(f"{reason}: {detail}" if detail else reason)
    verdict.problem = problem
    kind = "timeout" if reason == WORKER_TIMEOUT else "crash"
    _WORKER_FAILURES.labels(kind=kind).inc()
    tags = tags or {}
    verdict.report = SolveReport(
        problem=type(problem).__name__,
        algorithm=reason,
        reason=detail,
        elapsed=elapsed,
        trace=truncated_span(
            "solve",
            duration=elapsed,
            problem=type(problem).__name__,
            outcome=reason,
            detail=detail,
            **tags,
        ),
        request_id=tags.get("request"),
    )
    return verdict


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, including any hung worker processes.

    Workers are terminated first, so the waiting shutdown is immediate —
    and, unlike ``wait=False``, it joins the manager thread and
    deregisters the pool's atexit wakeup (which would otherwise write to
    a closed pipe at interpreter exit)."""
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    executor.shutdown(wait=True, cancel_futures=True)


def default_jobs(n_problems: int) -> int:
    """All cores, but never more workers than problems."""
    return max(1, min(n_problems, os.cpu_count() or 1))


def solve_many(
    problems: Iterable[object],
    *,
    jobs: int | None = None,
    context: ExecutionContext | None = None,
    task_timeout: float | None = None,
    chunk_size: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    tags: dict | None = None,
) -> BatchResult:
    """Decide every problem of a batch, fanning out over *jobs* processes.

    ``jobs=None`` uses one worker per core (capped by the batch size);
    ``jobs=1`` solves serially in-process against *context*'s own cache.
    *task_timeout* bounds each solve in wall-clock seconds — cooperatively
    through the budget deadline, and by force through the pool watchdog.
    *cache_dir* attaches a shared on-disk compilation-cache tier to every
    worker (defaults to ``REPRO_CACHE_DIR`` when set).

    *tags* (merged over the caller's ambient :func:`repro.obs.bind_tags`
    bindings, so a service request ID propagates with no explicit
    plumbing) are re-bound inside every worker chunk: chunk spans, solve
    spans and the truncated spans of crashed/hung workers all carry them.

    Returns a :class:`BatchResult`: ``result[i]`` is the verdict of
    ``problems[i]``, always — a hung or crashed worker contributes an
    ``Unknown`` with a ``worker-timeout`` / ``worker-crash`` reason.
    """
    problems = list(problems)
    tags = {**current_tags(), **(tags or {})}
    resolved = resolve_context(context)
    if resolved is None:
        resolved = ExecutionContext()
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    if jobs is None:
        jobs = default_jobs(len(problems))
    jobs = max(1, jobs)

    report = BatchReport(problems=len(problems), jobs=jobs)
    _BATCH_PROBLEMS.inc(len(problems))
    started = time.perf_counter()
    with bind_tags(**tags), trace(
        "solve_many", problems=len(problems), jobs=jobs
    ) as batch_span:
        if jobs == 1 or len(problems) <= 1:
            verdicts = _solve_serial(
                problems, resolved, task_timeout, cache_dir, report
            )
        else:
            verdicts = _solve_pooled(
                problems, jobs, resolved, task_timeout, chunk_size, cache_dir,
                report, batch_span, tags,
            )
    report.elapsed = time.perf_counter() - started
    if not batch_span.is_noop:
        report.trace = batch_span.to_dict()
    for verdict in verdicts:
        if verdict.is_proved:
            report.outcomes["proved"] += 1
        elif verdict.is_refuted:
            report.outcomes["refuted"] += 1
        else:
            report.outcomes["unknown"] += 1
            reason = getattr(verdict, "reason", "")
            if reason.startswith(WORKER_TIMEOUT):
                report.timeouts += 1
            elif reason.startswith(WORKER_CRASH):
                report.crashes += 1
    return BatchResult(verdicts, report)


def _solve_serial(
    problems: list,
    context: ExecutionContext,
    task_timeout: float | None,
    cache_dir: str | None,
    report: BatchReport,
) -> list[Verdict]:
    from repro.engine.core import solve

    budget = _effective_budget(context.budget, task_timeout)
    cache = context.cache
    if cache_dir is not None and cache.disk is None:
        # same deal the pooled workers get: a persistent tier under the LRU
        cache = CompilationCache(
            max_entries=cache.max_entries,
            enabled=cache.enabled,
            disk=DiskCacheTier(cache_dir),
        )
    run_context = ExecutionContext(budget, cache=cache)
    before = run_context.cache.stats()
    verdicts = []
    for problem in problems:
        run_context.start_clock()
        verdicts.append(solve(problem, run_context))
    after = run_context.cache.stats()
    report.chunks = len(problems)
    report.merge_cache(
        {k: after.get(k, 0) - before.get(k, 0) for k in after if k != "entries"}
    )
    return verdicts


def _absorb_chunk(
    chunk: _Chunk, stats: dict, metrics_delta: dict, meta: dict,
    report: BatchReport, batch_span: Any,
) -> None:
    """Fold one completed chunk's accounting into the driver's registry,
    batch report and (when tracing) the merged cross-process trace."""
    report.merge_cache(stats)
    REGISTRY.merge(metrics_delta)
    wait = max(0.0, meta["picked_up_wall"] - chunk.submitted_wall)
    # absorbed on the driver thread, so the request's trace ID is ambient
    _QUEUE_WAIT.observe(wait, exemplar=ambient_tag("trace_id"))
    report.queue_wait_seconds += wait
    _WORKER_CHUNKS.labels(worker=str(meta["pid"])).inc()


def _chunk_span(chunk: _Chunk, pairs: list, meta: dict, tags: dict | None = None) -> dict:
    """The serialized chunk span wrapping the worker-captured solve spans."""
    children = [
        verdict.report.trace
        for __, verdict in pairs
        if getattr(verdict, "report", None) is not None
        and verdict.report.trace is not None
    ]
    return {
        "name": "chunk",
        "attrs": {
            **(tags or {}),
            "worker": meta["pid"],
            "tasks": len(chunk.tasks),
            "queue_wait": max(0.0, meta["picked_up_wall"] - chunk.submitted_wall),
        },
        "wall": meta["picked_up_wall"],
        "duration": meta["elapsed"],
        "expansions": 0,
        "cache": {},
        "children": children,
    }


def _solve_pooled(
    problems: list,
    jobs: int,
    context: ExecutionContext,
    task_timeout: float | None,
    chunk_size: int | None,
    cache_dir: str | os.PathLike | None,
    report: BatchReport,
    batch_span: Any,
    tags: dict | None = None,
) -> list[Verdict]:
    budget = _effective_budget(context.budget, task_timeout)
    cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
    initargs = (
        budget,
        context.cache.max_entries,
        cache_dir,
        context.cache.enabled,
        tracing_active(),
    )

    if chunk_size is None:
        # a few chunks per worker: coarse enough to amortize IPC, fine
        # enough that idle workers can steal from a slow one's backlog
        chunk_size = max(1, -(-len(problems) // (jobs * 4)))
    queue: deque[_Chunk] = deque(
        _Chunk([(i, problems[i]) for i in range(start, min(start + chunk_size, len(problems)))])
        for start in range(0, len(problems), chunk_size)
    )
    report.chunks = len(queue)
    results: dict[int, Verdict] = {}
    quarantine: list[tuple[int, object]] = []

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=initargs
        )

    executor = make_executor()
    inflight: dict = {}
    try:
        while queue or inflight:
            while queue and len(inflight) < jobs:
                chunk = queue.popleft()
                try:
                    future = executor.submit(_run_chunk, chunk.tasks, tags)
                except BrokenProcessPool:
                    # the pool died between rounds; replace it and retry
                    queue.appendleft(chunk)
                    _kill_executor(executor)
                    executor = make_executor()
                    continue
                chunk.submitted = time.monotonic()
                chunk.submitted_wall = time.time()
                inflight[future] = chunk
            done, __ = wait(
                set(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            pool_broken = False
            for future in done:
                chunk = inflight.pop(future)
                try:
                    pairs, stats, metrics_delta, meta = future.result()
                except Exception:
                    # BrokenProcessPool, or an unpicklable problem or
                    # verdict; isolate to attribute the failure to the
                    # guilty task alone
                    pool_broken = True
                    quarantine.extend(chunk.tasks)
                else:
                    for index, verdict in pairs:
                        results[index] = verdict
                    _absorb_chunk(
                        chunk, stats, metrics_delta, meta, report, batch_span
                    )
                    if not batch_span.is_noop:
                        batch_span.adopt(_chunk_span(chunk, pairs, meta, tags))
            if pool_broken:
                # the pool died under every other in-flight chunk too;
                # re-run the innocent bystanders, isolate the casualties
                for chunk in inflight.values():
                    queue.appendleft(chunk)
                    report.retries += 1
                    _BATCH_RETRIES.inc()
                inflight.clear()
                _kill_executor(executor)
                executor = make_executor()
                continue
            if task_timeout is not None and inflight:
                now = time.monotonic()
                overdue = [
                    (future, chunk)
                    for future, chunk in inflight.items()
                    if now - chunk.submitted > chunk.deadline(task_timeout)
                ]
                if overdue:
                    for future, chunk in overdue:
                        quarantine.extend(chunk.tasks)
                        del inflight[future]
                    # killing the hung worker means killing the pool;
                    # everything else in flight is requeued untouched
                    for chunk in inflight.values():
                        queue.appendleft(chunk)
                        report.retries += 1
                        _BATCH_RETRIES.inc()
                    inflight.clear()
                    _kill_executor(executor)
                    executor = make_executor()
    finally:
        _kill_executor(executor)

    if quarantine:
        _solve_isolated(
            quarantine, initargs, task_timeout, results, report, batch_span, tags
        )

    return [results[index] for index in range(len(problems))]


def _solve_isolated(
    tasks: list[tuple[int, object]],
    initargs: tuple,
    task_timeout: float | None,
    results: dict[int, Verdict],
    report: BatchReport,
    batch_span: Any,
    tags: dict | None = None,
) -> None:
    """Re-run suspect tasks one per single-worker pool, for exact blame.

    When a shared pool breaks (or a chunk times out) the driver cannot
    tell which of its tasks was responsible, so each suspect re-runs
    alone: a crash or timeout here is attributable beyond doubt, and the
    rest recover their real verdicts.
    """
    deadline = None if task_timeout is None else task_timeout + _TIMEOUT_GRACE
    for index, problem in tasks:
        if index in results:
            continue
        chunk = _Chunk([(index, problem)])
        executor = ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker, initargs=initargs
        )
        try:
            future = executor.submit(_run_chunk, chunk.tasks, tags)
            chunk.submitted_wall = time.time()
            synthetic = None
            try:
                pairs, stats, metrics_delta, meta = future.result(timeout=deadline)
            except FuturesTimeoutError:
                synthetic = _synthetic(
                    WORKER_TIMEOUT,
                    f"no result within {task_timeout}s (worker killed)",
                    problem,
                    elapsed=0.0 if deadline is None else deadline,
                    tags=tags,
                )
            except BrokenProcessPool:
                synthetic = _synthetic(
                    WORKER_CRASH, "worker process died mid-solve", problem,
                    tags=tags,
                )
            except Exception as exc:
                synthetic = _synthetic(WORKER_CRASH, repr(exc), problem, tags=tags)
            if synthetic is not None:
                results[index] = synthetic
                batch_span.adopt(synthetic.report.trace)
            else:
                for i, verdict in pairs:
                    results[i] = verdict
                _absorb_chunk(
                    chunk, stats, metrics_delta, meta, report, batch_span
                )
                if not batch_span.is_noop:
                    batch_span.adopt(_chunk_span(chunk, pairs, meta, tags))
        finally:
            _kill_executor(executor)
