"""Structured accounting of one ``engine.solve`` call."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.budget import Budget


@dataclass
class SolveReport:
    """What ran, why, and what it cost.

    ``algorithm`` names the procedure the Figure-1/2 routing selected,
    ``reason`` the routing rationale (fragment facts), ``elapsed`` the
    wall-clock seconds, ``expansions`` the charged search steps, and
    ``cache`` the hit/miss/eviction deltas of the compilation cache over
    this solve.
    """

    problem: str
    algorithm: str
    reason: str
    elapsed: float = 0.0
    expansions: int = 0
    cache: dict[str, int] = field(default_factory=dict)
    budget: Budget = field(default_factory=Budget.default)

    def lines(self) -> list[str]:
        """Render for ``--stats`` output."""
        cache = self.cache or {}
        return [
            f"algorithm: {self.algorithm} ({self.reason})",
            f"elapsed: {self.elapsed:.6f}s  expansions: {self.expansions}",
            "cache: "
            + "  ".join(f"{k}={cache.get(k, 0)}" for k in ("hits", "misses", "evictions")),
        ]
