"""Structured accounting of ``engine.solve`` / ``engine.solve_many`` calls."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.engine.budget import Budget


@dataclass
class SolveReport:
    """What ran, why, and what it cost.

    ``algorithm`` names the procedure the Figure-1/2 routing selected,
    ``reason`` the routing rationale (fragment facts), ``elapsed`` the
    wall-clock seconds, ``expansions`` the charged search steps, and
    ``cache`` the hit/miss/eviction deltas of the compilation cache over
    this solve.  When the solve ran under a trace collector
    (:func:`repro.obs.collecting`), ``trace`` holds the serialized span
    tree of the solve — plain picklable data, so it survives the trip
    back from a ``solve_many`` worker process.

    ``diagnostics`` carries the static classifier's fragment-level
    findings (:func:`repro.analysis.diagnostics_for_problem`):
    immutable :class:`~repro.analysis.Diagnostic` tuples, picklable for
    the same worker round trip.

    ``request_id`` is the service-layer request the solve ran under
    (read from the ambient :func:`repro.obs.bind_tags` binding), or
    ``None`` outside any request — it survives the worker round trip
    exactly like the trace, including crash/timeout synthetics.
    """

    problem: str
    algorithm: str
    reason: str
    elapsed: float = 0.0
    expansions: int = 0
    cache: dict[str, int] = field(default_factory=dict)
    budget: Budget = field(default_factory=Budget.default)
    trace: dict | None = field(default=None, repr=False)
    diagnostics: tuple = ()
    request_id: str | None = None

    def lines(self) -> list[str]:
        """Render for ``--stats`` output."""
        cache = self.cache or {}
        rendered = [
            f"algorithm: {self.algorithm} ({self.reason})",
            f"elapsed: {self.elapsed:.6f}s  expansions: {self.expansions}",
            "cache: "
            + "  ".join(f"{k}={cache.get(k, 0)}" for k in ("hits", "misses", "evictions")),
        ]
        for diagnostic in self.diagnostics:
            if diagnostic.severity:  # warnings and errors only in --stats
                rendered.append(diagnostic.render())
        return rendered


@dataclass
class BatchReport:
    """Aggregated accounting of one ``engine.solve_many`` batch.

    ``outcomes`` counts verdict kinds (``proved`` / ``refuted`` /
    ``unknown``), ``cache`` sums the per-chunk compilation-cache deltas
    across every worker (plus the driver, on the serial path),
    ``timeouts`` / ``crashes`` count tasks that came back as ``Unknown``
    with a ``worker-timeout`` / ``worker-crash`` reason, and ``retries``
    counts chunks that were re-run after a pool failure took out
    innocent bystanders.

    Under a trace collector, ``trace`` is the merged cross-process span
    tree: a ``solve_many`` root whose children are per-chunk spans
    (annotated with the worker pid and queue wait) wrapping the solve
    spans each worker captured and pickled back with its results.
    ``queue_wait_seconds`` sums the time chunks spent waiting between
    driver submission and worker pickup.
    """

    problems: int = 0
    jobs: int = 1
    chunks: int = 0
    elapsed: float = 0.0
    outcomes: Counter = field(default_factory=Counter)
    cache: Counter = field(default_factory=Counter)
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    queue_wait_seconds: float = 0.0
    trace: dict | None = field(default=None, repr=False)

    def merge_cache(self, stats: dict[str, int]) -> None:
        self.cache.update(stats)

    def lines(self) -> list[str]:
        """Render for ``--stats`` output."""
        outcome = "  ".join(
            f"{kind}={self.outcomes.get(kind, 0)}"
            for kind in ("proved", "refuted", "unknown")
        )
        cache = "  ".join(
            f"{k}={self.cache.get(k, 0)}"
            for k in ("hits", "misses", "disk_hits", "disk_stores")
        )
        return [
            f"batch: {self.problems} problems over {self.jobs} jobs "
            f"({self.chunks} chunks) in {self.elapsed:.6f}s",
            f"outcomes: {outcome}",
            f"cache: {cache}",
            f"recovery: timeouts={self.timeouts}  crashes={self.crashes}  "
            f"retries={self.retries}",
            f"queue-wait: {self.queue_wait_seconds:.6f}s total",
        ]
