"""Problem objects for the ``engine.solve`` front door.

One dataclass per decision problem of Figures 1–2; ``solve`` routes on the
problem type plus the mapping's ``SM(σ)`` fragment.  They are plain value
holders — construction never computes anything.

Every problem type is guaranteed to pickle round-trip (enforced by
``tests/test_parallel.py``): :func:`repro.engine.parallel.solve_many`
ships problems to worker processes, and their components (mappings,
DTDs, trees, patterns) shed per-process memoized state on the way.  Keep
new problem types plain — no lambdas, no open handles, no locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.mappings.mapping import SchemaMapping
    from repro.patterns.ast import Pattern
    from repro.xmlmodel.dtd import DTD
    from repro.xmlmodel.tree import TreeNode


@dataclass(eq=False)
class ConsistencyProblem:
    """CONS: is ``[[M]]`` non-empty?  (Figure 1, top half.)"""

    mapping: "SchemaMapping"


@dataclass(eq=False)
class AbsoluteConsistencyProblem:
    """ABSCONS: does every source tree have a solution?  (Figure 1, bottom.)"""

    mapping: "SchemaMapping"


@dataclass(eq=False)
class MembershipProblem:
    """Membership: is ``(T, T') ∈ [[M]]``?  (Figure 2.)"""

    mapping: "SchemaMapping"
    source_tree: "TreeNode"
    target_tree: "TreeNode"


@dataclass(eq=False)
class CompositionMembershipProblem:
    """Is ``(T1, T3) ∈ [[M12]] ∘ [[M23]]``?  (Section 7.2 / Theorem 8.2.)"""

    m12: "SchemaMapping"
    m23: "SchemaMapping"
    source_tree: "TreeNode"
    final_tree: "TreeNode"


@dataclass(eq=False)
class CompositionConsistencyProblem:
    """CONSCOMP: is ``[[M1]] ∘ ... ∘ [[Mn]]`` non-empty?  (Theorem 7.1.)"""

    mappings: tuple["SchemaMapping", ...]

    def __post_init__(self) -> None:
        self.mappings = tuple(self.mappings)


@dataclass(eq=False)
class SatisfiabilityProblem:
    """Is some ``T |= D`` matched by the pattern?  (Lemma 4.1.)"""

    dtd: "DTD"
    pattern: "Pattern"


@dataclass(eq=False)
class SeparationProblem:
    """Is there a ``T |= D`` matching all positives and no negatives?
    (Section 9's technical problem.)"""

    dtd: "DTD"
    positives: tuple["Pattern", ...] = field(default_factory=tuple)
    negatives: tuple["Pattern", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.positives = tuple(self.positives)
        self.negatives = tuple(self.negatives)


Problem = (
    ConsistencyProblem,
    AbsoluteConsistencyProblem,
    MembershipProblem,
    CompositionMembershipProblem,
    CompositionConsistencyProblem,
    SatisfiabilityProblem,
    SeparationProblem,
)
