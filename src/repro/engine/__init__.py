"""The solver engine: budgets, compilation caching, certified verdicts.

Every decision procedure in the library routes through this layer:

* :mod:`repro.engine.verdicts` — the ``Proved`` / ``Refuted`` / ``Unknown``
  result algebra with per-problem certificates;
* :mod:`repro.engine.budget` — :class:`Budget` (the single home of the
  default bounds) and :class:`ExecutionContext` (budget + cache + cost
  accounting, threaded through every solver);
* :mod:`repro.engine.cache` — the content-hash-keyed
  :class:`CompilationCache` of DTD automata, closure automata, production
  DFAs, classifications and achievable trigger-set tables;
* :mod:`repro.engine.core` — :func:`solve`, the front door routing each
  :mod:`problem <repro.engine.problems>` to the strongest applicable
  algorithm per Figures 1–2 and attaching a
  :class:`~repro.engine.report.SolveReport`;
* :mod:`repro.engine.diskcache` — the opt-in, content-keyed on-disk tier
  under the compilation cache (atomic writes, version-stamped keys,
  corruption-tolerant reads);
* :mod:`repro.engine.depgraph` — the :class:`DependencyGraph` of input
  digests → compiled artifacts behind incremental re-solving
  (:mod:`repro.incremental`): delta invalidation evicts exactly the
  downstream cone of an edit from both cache tiers;
* :mod:`repro.engine.parallel` — :func:`solve_many`, the batch front
  door fanning independent solves over a process pool with per-task
  timeout/crash containment and aggregated statistics;
* :mod:`repro.engine.certify` — independent re-validation of
  certificates.
"""

from repro.engine.budget import (
    Budget,
    BudgetExceeded,
    ExecutionContext,
    current_context,
)
from repro.engine.cache import (
    DEFAULT_CACHE,
    CompilationCache,
    DTDClassification,
    achievable_sets,
    cache_from_env,
    closure_automaton,
    dtd_automaton,
    dtd_classification,
)
from repro.engine.certify import CertificationError, certify
from repro.engine.depgraph import (
    DependencyGraph,
    alphabet_digest,
    dtd_digests,
    mapping_digest,
    mapping_digests,
    pattern_digest,
    production_digest,
    std_digest,
)
from repro.engine.core import (
    nested_ptime_applicable,
    register_route,
    solve,
    uses_constants,
)
from repro.engine.diskcache import CACHE_FORMAT_VERSION, DiskCacheTier
from repro.engine.parallel import (
    WORKER_CRASH,
    WORKER_TIMEOUT,
    BatchResult,
    solve_many,
)
from repro.engine.problems import (
    AbsoluteConsistencyProblem,
    CompositionConsistencyProblem,
    CompositionMembershipProblem,
    ConsistencyProblem,
    MembershipProblem,
    Problem,
    SatisfiabilityProblem,
    SeparationProblem,
)
from repro.engine.report import BatchReport, SolveReport
from repro.engine.verdicts import (
    AnalysisCertificate,
    ComposedMapping,
    ConformanceFailure,
    Counterexample,
    MiddleTree,
    ObligationsMet,
    Proved,
    Refuted,
    RigidityExplanation,
    SatisfyingTree,
    SeparatingTree,
    TriggerRefutation,
    Unknown,
    Verdict,
    ViolationWitness,
    WitnessChain,
    WitnessPair,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "ExecutionContext",
    "current_context",
    "CompilationCache",
    "DEFAULT_CACHE",
    "DTDClassification",
    "achievable_sets",
    "closure_automaton",
    "dtd_automaton",
    "dtd_classification",
    "CertificationError",
    "certify",
    "DependencyGraph",
    "alphabet_digest",
    "dtd_digests",
    "mapping_digest",
    "mapping_digests",
    "pattern_digest",
    "production_digest",
    "std_digest",
    "solve",
    "solve_many",
    "register_route",
    "uses_constants",
    "nested_ptime_applicable",
    "cache_from_env",
    "CACHE_FORMAT_VERSION",
    "DiskCacheTier",
    "BatchResult",
    "BatchReport",
    "WORKER_CRASH",
    "WORKER_TIMEOUT",
    "SolveReport",
    "Problem",
    "ConsistencyProblem",
    "AbsoluteConsistencyProblem",
    "MembershipProblem",
    "CompositionMembershipProblem",
    "CompositionConsistencyProblem",
    "SatisfiabilityProblem",
    "SeparationProblem",
    "Verdict",
    "Proved",
    "Refuted",
    "Unknown",
    "AnalysisCertificate",
    "ComposedMapping",
    "ConformanceFailure",
    "Counterexample",
    "MiddleTree",
    "ObligationsMet",
    "RigidityExplanation",
    "SatisfyingTree",
    "SeparatingTree",
    "TriggerRefutation",
    "ViolationWitness",
    "WitnessChain",
    "WitnessPair",
]
