"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

validate   check that an XML document conforms to a DTD
match      evaluate a tree pattern against an XML document
check      static analysis of a mapping file (consistency, absolute consistency)
member     is (source.xml, target.xml) in [[M]]?
solve      build the canonical solution for a source document
compose    compose two mapping files (Theorem 8.2) and print the result

Documents are plain XML (see :mod:`repro.xmlmodel.xml_io`), DTDs use the
textual production syntax, mappings the ``.xsm`` format of
:mod:`repro.mappings.io`.  Exit status is 0 for "yes"/success and 1 for
"no"/failure, so the commands compose in shell scripts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.composition.compose import compose as compose_mappings
from repro.consistency import consistency_witness, is_consistent
from repro.consistency.abscons import (
    abscons_counterexample,
    abscons_ptime_analysis,
    is_absolutely_consistent_ptime,
)
from repro.errors import BoundExceededError, SignatureError, XsmError
from repro.exchange import canonical_solution
from repro.mappings.io import parse_mapping, render_mapping
from repro.mappings.membership import is_solution, violations
from repro.mappings.skolem import is_skolem_solution
from repro.patterns.matching import find_matches
from repro.patterns.parser import parse_pattern
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.xml_io import from_xml, to_xml


def _read(path: str) -> str:
    return Path(path).read_text()


def cmd_validate(args) -> int:
    dtd = parse_dtd(_read(args.dtd))
    document = from_xml(_read(args.document), dtd)
    try:
        dtd.check_conformance(document)
    except XsmError as error:
        print(f"INVALID: {error}")
        return 1
    print("VALID")
    return 0


def cmd_match(args) -> int:
    pattern = parse_pattern(args.pattern)
    document = from_xml(_read(args.document))
    matches = find_matches(pattern, document)
    variables = pattern.variables()
    if not matches:
        print("no matches")
        return 1
    for match in matches:
        rendered = ", ".join(f"{v.name}={match[v]!r}" for v in variables)
        print(rendered or "(match)")
    return 0


def cmd_check(args) -> int:
    mapping = parse_mapping(_read(args.mapping))
    print(f"class: {mapping.signature()}")
    status = 0
    try:
        consistent = is_consistent(mapping)
        print(f"consistent: {consistent}")
        if consistent and args.witness:
            pair = consistency_witness(mapping)
            if pair:
                print(f"  witness source: {to_xml(pair[0], mapping.source_dtd).strip()}")
                print(f"  witness target: {to_xml(pair[1], mapping.target_dtd).strip()}")
        if not consistent:
            status = 1
    except BoundExceededError:
        print("consistent: inconclusive (class with data comparisons; "
              "bounded search found no witness)")
        status = 1
    try:
        problems = abscons_ptime_analysis(mapping)
        absolutely = not problems
        print(f"absolutely consistent: {absolutely}")
        for problem in problems:
            print(f"  why: {problem}")
        if not absolutely:
            counterexample = abscons_counterexample(mapping, 4, 5)
            if counterexample is not None:
                print("  unmappable document:")
                print("  " + to_xml(counterexample, mapping.source_dtd).strip()
                      .replace("\n", "\n  "))
            status = 1
    except SignatureError as error:
        print(f"absolutely consistent: not decided ({error})")
    return status


def cmd_member(args) -> int:
    mapping = parse_mapping(_read(args.mapping))
    source = from_xml(_read(args.source), mapping.source_dtd)
    target = from_xml(_read(args.target), mapping.target_dtd)
    if mapping.uses_skolem_functions():
        answer = is_skolem_solution(mapping, source, target)
    else:
        answer = is_solution(mapping, source, target)
    print("YES" if answer else "NO")
    if not answer and args.explain and not mapping.uses_skolem_functions():
        for std, valuation in violations(mapping, source, target):
            values = {v.name: value for v, value in valuation.items()}
            print(f"  violated: {std}")
            print(f"    with {values}")
    return 0 if answer else 1


def cmd_solve(args) -> int:
    mapping = parse_mapping(_read(args.mapping))
    source = from_xml(_read(args.source), mapping.source_dtd)
    solution = canonical_solution(mapping, source)
    if solution is None:
        print("NO SOLUTION", file=sys.stderr)
        return 1
    output = to_xml(solution, mapping.target_dtd)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def cmd_compose(args) -> int:
    first = parse_mapping(_read(args.first))
    second = parse_mapping(_read(args.second))
    composed = compose_mappings(first, second)
    output = render_mapping(composed)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML schema mappings (PODS 2009 reproduction) — "
        "validation, matching, static analysis, exchange, composition",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="conformance of a document")
    validate.add_argument("--dtd", required=True)
    validate.add_argument("document")
    validate.set_defaults(handler=cmd_validate)

    match = commands.add_parser("match", help="evaluate a pattern on a document")
    match.add_argument("--pattern", required=True)
    match.add_argument("document")
    match.set_defaults(handler=cmd_match)

    check = commands.add_parser("check", help="static analysis of a mapping")
    check.add_argument("mapping")
    check.add_argument("--witness", action="store_true")
    check.set_defaults(handler=cmd_check)

    member = commands.add_parser("member", help="is (source, target) in [[M]]?")
    member.add_argument("mapping")
    member.add_argument("source")
    member.add_argument("target")
    member.add_argument("--explain", action="store_true")
    member.set_defaults(handler=cmd_member)

    solve = commands.add_parser("solve", help="canonical solution for a source")
    solve.add_argument("mapping")
    solve.add_argument("source")
    solve.add_argument("--output")
    solve.set_defaults(handler=cmd_solve)

    compose = commands.add_parser("compose", help="compose two mappings (Thm 8.2)")
    compose.add_argument("first")
    compose.add_argument("second")
    compose.add_argument("--output")
    compose.set_defaults(handler=cmd_compose)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except XsmError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
