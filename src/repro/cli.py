"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

validate   check that an XML document conforms to a DTD
match      evaluate a tree pattern against an XML document
check      static analysis of a mapping file (consistency, absolute consistency)
lint       zero-solver diagnostics: fragment, predicted complexity cells,
           DTD class, pattern hygiene, composition closure
member     is (source.xml, target.xml) in [[M]]?
solve      build the canonical solution for a source document
compose    compose two mapping files (Theorem 8.2) and print the result
stats      self-checking metrics-exporter smoke test (the CI gate); with
           --url, pull /stats + /metrics from a running daemon instead
serve      run the JSON-over-HTTP daemon over one warm engine session
top        live terminal view of a running daemon (latency quantiles,
           saturation, cache hit rates, latest slow requests)

Documents are plain XML (see :mod:`repro.xmlmodel.xml_io`), DTDs use the
textual production syntax, mappings the ``.xsm`` format of
:mod:`repro.mappings.io`.

The analysis commands are thin adapters over the service layer
(:mod:`repro.service`): each invocation builds an
:class:`~repro.service.EngineSession`, runs the matching request handler
and renders the response dict — the *same* handler the ``repro serve``
daemon exposes over HTTP, so CLI and service behaviour cannot drift.
With ``--url http://host:port`` the request is POSTed to a running
daemon instead (warm caches, no interpreter startup) and the response
renders identically.

``check`` exits 0 when the mapping is consistent, 1 when it is
inconsistent and 2 when every applicable procedure came back ``Unknown``
(bound exhausted); other commands keep 0 = yes / 1 = no.  Errors (parse
failures, missing labels, unreachable daemon, ...) exit 3.  ``--stats``
prints the engine's per-solve accounting: selected algorithm, routing
reason, wall clock, charged expansions and compilation-cache hits/misses.

``lint`` runs the static analyser only (`repro.analysis`): exit 0 when
clean, 1 on errors (``SM1xx``/``SM2xx`` severities), 2 with ``--strict``
when there are warnings, 3 on operational failures; ``--json`` emits the
machine-readable envelope, ``--quiet`` hides info-level diagnostics.

``check`` and ``member`` accept *batches* — several mapping files, or
several target documents — and the exit code is the maximum over the
inputs.  ``--jobs N`` fans the batch out over N worker processes through
:func:`repro.engine.solve_many`; ``--cache-dir`` attaches a persistent
on-disk compilation cache shared by the workers and by repeat
invocations, and ``--cache-size`` bounds the in-memory LRU (both also
honour the ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_SIZE`` environment
variables).

Observability (see DESIGN.md §Observability): ``--trace[=FILE]`` writes
a JSONL span log of the whole invocation — with ``--jobs`` the workers'
spans are merged into one cross-process tree; ``--metrics[=FILE]``
exports the metrics registry (Prometheus text, or JSON for ``.json``
destinations); ``--stats`` additionally prints a registry-derived
``registry:`` section of every series the command moved.  ``repro
stats`` runs a built-in self-test batch and fails (exit 1) when the
exporters regress.  ``REPRO_PROFILE=1`` dumps per-solve cProfile data.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path

from repro.engine import CompilationCache, DiskCacheTier, ExecutionContext
from repro.errors import XsmError
from repro.exchange import canonical_solution
from repro.mappings.io import parse_mapping
from repro.obs import REGISTRY, collecting, diff_snapshots, estimate_quantile
from repro.patterns.matching import find_matches
from repro.patterns.parser import parse_pattern
from repro.service import EngineSession, call_service
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.xml_io import from_xml, to_xml


def _read(path: str) -> str:
    return Path(path).read_text()


# ---------------------------------------------------------------------------
# observability plumbing: --trace / --metrics / registry-derived --stats
# ---------------------------------------------------------------------------


def _write_obs(dest: str, text: str) -> None:
    """``-`` goes to stdout, anything else is a file path."""
    if dest == "-":
        sys.stdout.write(text)
    else:
        Path(dest).write_text(text)


def _render_metrics(dest: str) -> str:
    """Registry export: ``.json`` destinations get JSON, else Prometheus."""
    if dest.endswith(".json"):
        return REGISTRY.render_json()
    return REGISTRY.render_prometheus()


class _Observer:
    """Per-invocation --trace/--metrics/--stats wiring around a handler.

    Installs a trace collector when ``--trace`` asked for one (so every
    engine span of the command lands in one tree, including the merged
    cross-process spans of ``--jobs`` batches), snapshots the registry
    around the handler for the ``--stats`` registry section, and flushes
    the requested exports even when the handler raises.
    """

    def __init__(self, args):
        self.trace_dest = getattr(args, "trace", None)
        self.metrics_dest = getattr(args, "metrics", None)
        self.stats = bool(getattr(args, "stats", False))
        self.command = getattr(args, "command", "repro")
        self.tree = None
        self._before = None
        self._collector = None

    def __enter__(self):
        self._before = REGISTRY.snapshot()
        if self.trace_dest is not None:
            self._collector = collecting("repro", command=self.command)
            self.tree = self._collector.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._collector is not None:
            self._collector.__exit__(exc_type, exc, tb)
        if self.trace_dest is not None and self.tree is not None:
            _write_obs(self.trace_dest, self.tree.jsonl())
        if self.metrics_dest is not None:
            _write_obs(self.metrics_dest, _render_metrics(self.metrics_dest))
        if self.stats and exc_type is None:
            self._print_registry_section()
        return False

    def _print_registry_section(self) -> None:
        delta = diff_snapshots(self._before, REGISTRY.snapshot())
        lines = _registry_lines(delta)
        if lines:
            print("registry:")
            for line in lines:
                print(f"  {line}")


def _registry_lines(delta: dict) -> list[str]:
    """Render a snapshot delta for ``--stats``: one line per moved series."""
    lines: list[str] = []
    for name in sorted(delta):
        data = delta[name]
        labelnames = data.get("labelnames", [])
        for key in sorted(data.get("series", {})):
            value = data["series"][key]
            labels = ",".join(f"{k}={v}" for k, v in zip(labelnames, key))
            suffix = f"{{{labels}}}" if labels else ""
            if data["kind"] == "histogram":
                count, total = value.get("count", 0), value.get("sum", 0.0)
                lines.append(f"{name}{suffix} count={count} sum={total:.6f}s")
            else:
                rendered = int(value) if float(value).is_integer() else value
                lines.append(f"{name}{suffix} {rendered}")
    return lines


# ---------------------------------------------------------------------------
# the service adapter: one code path for CLI and daemon
# ---------------------------------------------------------------------------


def _resolved_cache_dir(args) -> str | None:
    return getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR")


def _batch_context(args) -> ExecutionContext:
    """An execution context honouring ``--cache-size`` / ``--cache-dir``."""
    cache_dir = _resolved_cache_dir(args)
    disk = DiskCacheTier(cache_dir) if cache_dir else None
    cache = CompilationCache(max_entries=getattr(args, "cache_size", None), disk=disk)
    return ExecutionContext(cache=cache)


def _session_from_args(args) -> EngineSession:
    return EngineSession(
        jobs=getattr(args, "jobs", 1) or 1,
        cache_size=getattr(args, "cache_size", None),
        cache_dir=_resolved_cache_dir(args),
    )


def _dispatch(args, command: str, request: dict) -> dict:
    """Run *request* locally or, with ``--url``, against a daemon.

    A response carrying an ``error`` envelope (parse failure on the
    mapping, a rejected request, a saturated daemon) is re-raised as
    :class:`XsmError`, so :func:`main` reports it exactly like the
    pre-service-layer CLI did: ``error: <message>`` on stderr, exit 3.
    """
    url = getattr(args, "url", None)
    if url:
        response = call_service(url, command, request)
    else:
        response = _session_from_args(args).handle(command, request)
    error = response.get("error")
    if error:
        raise XsmError(error.get("message", str(error)))
    return response


def _describe(payload: dict) -> str:
    if payload["verdict"] == "unknown":
        return f"unknown ({payload['reason']})"
    return str(payload["decision"])


def _print_report_lines(payload: dict) -> None:
    for line in payload.get("report", {}).get("lines", ()):
        print(f"  {line}")


def cmd_validate(args) -> int:
    dtd = parse_dtd(_read(args.dtd))
    document = from_xml(_read(args.document), dtd)
    try:
        dtd.check_conformance(document)
    except XsmError as error:
        print(f"INVALID: {error}")
        return 1
    print("VALID")
    return 0


def cmd_match(args) -> int:
    pattern = parse_pattern(args.pattern)
    document = from_xml(_read(args.document))
    matches = find_matches(pattern, document)
    variables = pattern.variables()
    if not matches:
        print("no matches")
        return 1
    for match in matches:
        rendered = ", ".join(f"{v.name}={match[v]!r}" for v in variables)
        print(rendered or "(match)")
    return 0


def _render_check_entry(args, entry: dict) -> None:
    """One mapping's section of ``repro check`` output, from the response."""
    print(f"class: {entry['class']}")
    print(f"consistent: {_describe(entry['consistent'])}")
    if args.stats:
        _print_report_lines(entry["consistent"])
    witness = entry.get("witness")
    if witness:
        print(f"  witness source: {witness['source']}")
        print(f"  witness target: {witness['target']}")
    print(f"absolutely consistent: {_describe(entry['absolutely_consistent'])}")
    for why in entry.get("why", ()):
        print(f"  why: {why}")
    if "counterexample" in entry:
        print("  unmappable document:")
        print("  " + entry["counterexample"].replace("\n", "\n  "))
    if args.stats:
        _print_report_lines(entry["absolutely_consistent"])


def cmd_check(args) -> int:
    request = {
        "mappings": [{"name": path, "text": _read(path)} for path in args.mappings],
        "jobs": args.jobs,
        "witness": args.witness,
    }
    response = _dispatch(args, "check", request)
    for position, entry in enumerate(response["results"]):
        if len(args.mappings) > 1:
            if position:
                print()
            print(f"== {entry['name']}")
        _render_check_entry(args, entry)
    if args.stats and len(args.mappings) > 1:
        for line in response["batch"]["lines"]:
            print(f"  {line}")
    return response["exit_code"]


def cmd_member(args) -> int:
    request = {
        "mapping": _read(args.mapping),
        "source": _read(args.source),
        "targets": [{"name": path, "text": _read(path)} for path in args.targets],
        "jobs": args.jobs,
        "explain": args.explain,
    }
    response = _dispatch(args, "member", request)
    for entry in response["results"]:
        answer = entry["answer"]
        print(answer if len(args.targets) == 1 else f"{entry['name']}: {answer}")
        if args.stats:
            _print_report_lines(entry["result"])
        for violation in entry.get("violations", ()):
            print(f"  violated: {violation['std']}")
            print(f"    with {violation['values']}")
    return response["exit_code"]


def cmd_solve(args) -> int:
    mapping = parse_mapping(_read(args.mapping))
    source = from_xml(_read(args.source), mapping.source_dtd)
    solution = canonical_solution(mapping, source)
    if solution is None:
        print("NO SOLUTION", file=sys.stderr)
        return 1
    output = to_xml(solution, mapping.target_dtd)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def cmd_stats(args) -> int:
    """Self-checking exporter smoke: solve a built-in batch, validate the
    Prometheus export and the merged trace; exit 1 on any regression.

    With ``--url`` the subcommand *pulls* instead: it fetches ``/stats``
    and ``/metrics`` from the running daemon, validates the Prometheus
    text with the strict parser, and prints the daemon's accounting — no
    self-test batch is pushed into a production session.
    """
    if getattr(args, "url", None):
        return _stats_pull(args.url)
    response = _dispatch(args, "selftest", {"jobs": args.jobs})
    for line in response["lines"]:
        print(line)
    if response["failures"]:
        for failure in response["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return response["exit_code"]
    print("stats: OK")
    return 0


def _stats_pull(url: str) -> int:
    """``repro stats --url``: report a running daemon's accounting."""
    from repro.obs import parse_prometheus
    from repro.service import fetch_json, fetch_text

    stats = fetch_json(url, "stats")
    text = fetch_text(url, "metrics")
    failures: list[str] = []
    try:
        series = parse_prometheus(text)
    except ValueError as error:
        series = {}
        failures.append(f"/metrics does not parse: {error}")
    session = stats.get("session", {})
    print(f"daemon at {url}: up {session.get('uptime_seconds', 0.0):.1f}s, "
          f"jobs={session.get('jobs')}")
    requests = session.get("requests") or {}
    total = sum(requests.values())
    print(f"requests: {total} "
          f"({', '.join(f'{op}={n}' for op, n in sorted(requests.items()))})")
    cache = stats.get("cache") or {}
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if hits + misses:
        print(f"cache: {hits} hits / {misses} misses "
              f"({100.0 * hits / (hits + misses):.1f}% hit rate), "
              f"{cache.get('entries', 0)} entries")
    flight = stats.get("flight") or {}
    if flight:
        print(f"flight: {flight.get('recorded', 0)} recorded, "
              f"{flight.get('buffered', 0)}/{flight.get('capacity', 0)} "
              f"buffered, {flight.get('slow_seen', 0)} slow "
              f"(threshold {flight.get('slow_threshold_ms', 0):.0f}ms)")
    server = stats.get("server") or {}
    if server:
        print(f"server: {server.get('inflight', 0)}/"
              f"{server.get('max_inflight', 0)} inflight, "
              f"{server.get('queued', 0)}/{server.get('queue_depth', 0)} queued")
    print(f"prometheus export: {len(series)} series")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("stats: OK")
    return 0


def _watch_report(path: str, response: dict) -> int:
    """Render one delta response as a watch-mode line (plus lint text)."""
    import time as time_module

    stamp = time_module.strftime("%H:%M:%S")
    error = response.get("error")
    if error:
        print(f"[{stamp}] {path}: error: {error.get('message', error)}",
              flush=True)
        return int(response.get("exit_code", 3))
    incremental = response["incremental"]
    verdicts = response["verdicts"]
    invalidated = incremental["invalidated"]
    kind = "cold" if response["cold"] else f"delta ({incremental['dirty']} dirty)"
    print(
        f"[{stamp}] {path}: {kind} in {incremental['elapsed'] * 1000:.1f}ms"
        f" — consistent={verdicts['consistency']['verdict']}"
        f" abscons={verdicts['absolutely_consistent']['verdict']}"
        f" reused={incremental['reused']}"
        f" recompiled={incremental['recompiled']}"
        f" invalidated={invalidated['artifacts'] + invalidated['results']}",
        flush=True,
    )
    lint_text = response["lint"]["text"]
    if lint_text.strip():
        for line in lint_text.splitlines():
            print(f"    {line}", flush=True)
    return max(int(response["exit_code"]), int(response["lint"]["exit_code"]))


def _lint_watch(args) -> int:
    """``repro lint --watch``: re-lint and re-solve mapping files on change.

    One warm :class:`EngineSession` (or a daemon via ``--url``) serves a
    ``delta`` request per changed file, so only the edit's invalidation
    cone is recompiled; the per-delta line prints the latency and the
    reuse accounting.  A file that fails to parse mid-save reports an
    error and keeps being watched.  ``--watch-count N`` exits after N
    change events (CI smoke); otherwise the loop runs until Ctrl-C.
    """
    import time as time_module

    from repro.incremental import FileWatcher

    url = getattr(args, "url", None)
    session = None if url else _session_from_args(args)

    def dispatch(path: str) -> dict:
        request = {
            "name": path,
            "mapping": _read(path),
            "strict": args.strict,
            "quiet": args.quiet,
        }
        if url:
            return call_service(url, "delta", request)
        return session.delta(request)

    watcher = FileWatcher(args.mappings)
    exit_code = 0
    for path in args.mappings:
        exit_code = max(exit_code, _watch_report(path, dispatch(path)))
    print(f"watching {len(args.mappings)} file(s), polling every "
          f"{args.interval}s; Ctrl-C to stop", flush=True)
    remaining = args.watch_count
    try:
        while remaining is None or remaining > 0:
            time_module.sleep(args.interval)
            for changed in watcher.poll():
                exit_code = max(
                    exit_code, _watch_report(str(changed), dispatch(str(changed)))
                )
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        break
    except KeyboardInterrupt:
        pass
    return exit_code


def _write_or_print(target: str | None, payload: str) -> None:
    """Write *payload* to a file, or stdout for ``-``/None."""
    if target and target != "-":
        Path(target).write_text(payload)
    else:
        print(payload, end="" if payload.endswith("\n") else "\n")


def cmd_lint(args) -> int:
    """Static diagnostics for one or more mapping files (no solver runs
    unless ``--sarif`` asks for verified fixes too)."""
    if args.watch:
        return _lint_watch(args)
    import json as json_module

    from repro.analysis import (
        apply_baseline,
        baseline_from_envelope,
        envelope_exit_code,
        load_baseline,
        render_baseline,
        sarif_log,
    )

    texts = {path: _read(path) for path in args.mappings}
    request = {
        "mappings": [{"name": path, "text": texts[path]} for path in args.mappings],
        "strict": args.strict,
        "quiet": args.quiet,
    }
    if args.sarif is not None:
        # the SARIF export carries verified quick-fixes, so the daemon
        # (or local session) runs the fix engine's certification gate
        request["fixes"] = True
    response = _dispatch(args, "lint", request)
    envelope = response["report"]
    exit_code = response["exit_code"]

    suppressed_only: dict[str, object] | None = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.update_baseline or not baseline_path.exists():
            baseline = baseline_from_envelope(envelope)
            baseline_path.write_text(render_baseline(baseline))
            entries = baseline["entries"]
            assert isinstance(entries, dict)
            print(
                f"baseline written: {baseline_path} ({len(entries)} entr"
                f"{'y' if len(entries) == 1 else 'ies'})",
                file=sys.stderr,
            )
            return 0
        baseline = load_baseline(baseline_path.read_text())
        result = apply_baseline(envelope, baseline)
        envelope = result.envelope
        suppressed_only = envelope
        print(result.summary(), file=sys.stderr)
        for entry in result.stale:
            print(
                f"stale baseline entry {entry.get('fingerprint')}: "
                f"{entry.get('code')} in {entry.get('name')}",
                file=sys.stderr,
            )
        exit_code = envelope_exit_code(envelope, strict=args.strict)

    if args.sarif is not None:
        fixes_by_name = {
            entry["name"]: entry["fixes"]
            for entry in response.get("fixes", [])
        }
        log = sarif_log(envelope, fixes=fixes_by_name, texts=texts)
        _write_or_print(
            args.sarif, json_module.dumps(log, indent=2, sort_keys=True)
        )
        if args.sarif != "-":
            print(f"SARIF written: {args.sarif}", file=sys.stderr)
    if args.json:
        print(json_module.dumps(envelope, indent=2, sort_keys=True))
    elif args.sarif is None or args.sarif != "-":
        if suppressed_only is None:
            for position, entry in enumerate(response["rendered"]):
                if len(args.mappings) > 1:
                    if position:
                        print()
                    print(f"== {entry['name']}")
                print(entry["text"])
        else:
            # baselined run: the pre-rendered text would show suppressed
            # diagnostics, so re-render the surviving ones per report
            for row in envelope["reports"]:
                for diagnostic in row["diagnostics"]:
                    print(
                        f"{diagnostic['severity']} {diagnostic['code']} "
                        f"[{row['name']}]: {diagnostic['message']}"
                    )
    return exit_code


def _fix_round(args, name: str, text: str, only_codes: list[str] | None) -> dict:
    request: dict[str, object] = {
        "mappings": [{"name": name, "text": text}],
        "strict": getattr(args, "strict", False),
        "quiet": True,
        "fixes": True,
    }
    if only_codes:
        request["only_codes"] = only_codes
    return _dispatch(args, "lint", request)


def _atomic_write(path: str, payload: str) -> None:
    import tempfile

    directory = str(Path(path).parent or Path("."))
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory, prefix=f".{Path(path).name}.", suffix=".tmp",
        delete=False,
    )
    try:
        with handle as stream:
            stream.write(payload)
        os.replace(handle.name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        raise


def cmd_fix(args) -> int:
    """Apply certified quick-fixes: lint, repair, repeat until stable.

    Every fix was verified in-memory (apply → re-lint clean for its code
    → solve() non-regression) before being offered; ``--diff`` previews,
    ``--apply`` writes atomically, and the exit code mirrors ``repro
    lint`` over the final state of each file.
    """
    import difflib

    from repro.analysis import apply_edits_to_text, fix_from_dict, select_compatible

    only_codes = None
    if args.only:
        only_codes = sorted(
            {code.strip() for entry in args.only for code in entry.split(",") if code.strip()}
        )
    exit_code = 0
    for path in args.mappings:
        original = _read(path)
        text = original
        applied: list[str] = []
        response = _fix_round(args, path, text, only_codes)
        for __ in range(args.max_rounds):
            fixes = [
                fix_from_dict(payload)
                for payload in response["fixes"][0]["fixes"]
            ]
            selected = select_compatible(fixes)
            if not selected:
                break
            edits = [edit for fix in selected for edit in fix.edits]
            text = apply_edits_to_text(text, edits)
            applied.extend(fix.render() for fix in selected)
            response = _fix_round(args, path, text, only_codes)
        exit_code = max(exit_code, response["exit_code"])
        if len(args.mappings) > 1:
            print(f"== {path}")
        for line in applied:
            print(f"fixed: {line}")
        if not applied:
            print("no applicable fixes")
        if args.diff and text != original:
            sys.stdout.writelines(
                difflib.unified_diff(
                    original.splitlines(keepends=True),
                    text.splitlines(keepends=True),
                    fromfile=f"a/{path}",
                    tofile=f"b/{path}",
                )
            )
        if args.apply and text != original:
            _atomic_write(path, text)
            print(f"wrote {path}")
    return exit_code


def cmd_compose(args) -> int:
    request = {"first": _read(args.first), "second": _read(args.second)}
    response = _dispatch(args, "compose", request)
    output = response["mapping"]
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def cmd_serve(args) -> int:
    """Run the JSON-over-HTTP daemon over one warm engine session."""
    from repro.obs import FlightRecorder
    from repro.service import ServiceServer

    session = _session_from_args(args)
    if args.slow_log:
        session.flight = FlightRecorder(slow_log=args.slow_log)
    server = ServiceServer(
        session,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        verbose=args.verbose,
    )
    print(f"serving on {server.url} "
          f"(jobs={session.jobs}, max_inflight={server.admission.max_inflight}, "
          f"queue_depth={server.admission.queue_depth})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _quantile_rows(metrics: dict) -> list[str]:
    """Per-op p50/p95/p99 lines from a ``/metrics.json`` export.

    Quantiles are Prometheus-style estimates interpolated from histogram
    bucket counts (see :func:`repro.obs.estimate_quantile`), so they are
    as coarse as the bucket grid — good enough to spot a regressing op.
    """
    family = metrics.get("repro_request_latency_seconds")
    if not family:
        return []
    bounds = tuple(
        float("inf") if b == "+Inf" else float(b)
        for b in family.get("buckets", ())
    )
    rows = []
    for series in family.get("series", ()):
        counts = series["value"]["buckets"]
        count = series["value"]["count"]
        if not count:
            continue
        quantiles = [estimate_quantile(bounds, counts, q)
                     for q in (0.5, 0.95, 0.99)]
        p50, p95, p99 = (
            "-" if q is None else f"{q * 1000:8.1f}" for q in quantiles
        )
        op = series["labels"].get("command", "?")
        rows.append(f"  {op:<10} {count:>6} {p50} {p95} {p99}")
    return rows


def _top_frame(url: str, stats: dict, metrics: dict, slow: dict) -> str:
    """One rendered ``repro top`` frame (plain text, no escape codes)."""
    import time as time_module

    lines = [f"repro top — {url} — {time_module.strftime('%H:%M:%S')}"]
    session = stats.get("session", {})
    server = stats.get("server", {})
    lines.append(
        f"up {session.get('uptime_seconds', 0.0):8.1f}s   jobs={session.get('jobs')}"
        f"   inflight {server.get('inflight', 0)}/{server.get('max_inflight', '?')}"
        f"   queued {server.get('queued', 0)}/{server.get('queue_depth', '?')}"
    )
    requests = session.get("requests") or {}
    lines.append("requests: " + (", ".join(
        f"{op}={count}" for op, count in sorted(requests.items())
    ) or "none yet"))

    rows = _quantile_rows(metrics)
    if rows:
        lines.append("latency (ms):")
        lines.append(f"  {'op':<10} {'count':>6} {'p50':>8} {'p95':>8} {'p99':>8}")
        lines.extend(rows)

    cache = stats.get("cache") or {}
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if hits + misses:
        lines.append(
            f"cache: {100.0 * hits / (hits + misses):5.1f}% hit rate "
            f"({hits} hits, {misses} misses, {cache.get('entries', 0)} entries)"
        )
    incremental = stats.get("incremental") or {}
    if incremental.get("revisions"):
        lines.append(
            f"incremental: {incremental.get('revisions', 0)} revisions, "
            f"{incremental.get('deltas', 0)} deltas, "
            f"{incremental.get('memoized_verdicts', 0)} memoized verdicts"
        )
    flight = stats.get("flight") or {}
    lines.append(
        f"flight: {flight.get('recorded', 0)} recorded "
        f"({flight.get('buffered', 0)}/{flight.get('capacity', 0)} buffered), "
        f"{flight.get('slow_seen', 0)} slow over "
        f"{flight.get('slow_threshold_ms', 0):.0f}ms"
    )
    slow_entries = (slow.get("slow") or [])[:5]
    if slow_entries:
        lines.append("slow requests:")
        for entry in slow_entries:
            lines.append(
                f"  {entry.get('trace_id', '?'):<18} {entry.get('op', '?'):<8}"
                f" {entry.get('duration_ms', 0.0):8.1f}ms"
                f" {entry.get('status', '?')}"
            )
    return "\n".join(lines)


def cmd_top(args) -> int:
    """``repro top --url``: a live, stdlib-only view of a running daemon.

    Polls ``/stats``, ``/metrics.json`` and ``/debug/slow`` every
    ``--interval`` seconds and redraws one screen: saturation, per-op
    latency quantiles, cache/memo hit rates and the latest slow
    requests.  ``--count N`` renders N frames then exits (CI smoke);
    ``--plain`` never clears the screen (or pipe the output — clearing
    only happens on a TTY).
    """
    import json as json_module
    import time as time_module

    from repro.service import fetch_json, fetch_text

    remaining = args.count
    clear = not args.plain and sys.stdout.isatty()
    while True:
        stats = fetch_json(args.url, "stats")
        metrics = json_module.loads(fetch_text(args.url, "metrics.json"))
        slow = fetch_json(args.url, "debug/slow?limit=5")
        frame = _top_frame(args.url, stats, metrics, slow)
        if clear:
            print("\x1b[2J\x1b[H", end="")
        print(frame, flush=True)
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        try:
            time_module.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML schema mappings (PODS 2009 reproduction) — "
        "validation, matching, static analysis, exchange, composition",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="conformance of a document")
    validate.add_argument("--dtd", required=True)
    validate.add_argument("document")
    validate.set_defaults(handler=cmd_validate)

    match = commands.add_parser("match", help="evaluate a pattern on a document")
    match.add_argument("--pattern", required=True)
    match.add_argument("document")
    match.set_defaults(handler=cmd_match)

    def add_batch_options(command) -> None:
        command.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="solve the batch over N worker processes")
        command.add_argument("--cache-dir", metavar="DIR",
                             default=None,
                             help="persistent on-disk compilation cache "
                             "(default: $REPRO_CACHE_DIR)")
        command.add_argument("--cache-size", type=int, default=None, metavar="N",
                             help="in-memory compilation-cache capacity "
                             "(default: $REPRO_CACHE_SIZE or 256)")

    def add_obs_options(command) -> None:
        command.add_argument("--trace", nargs="?", const="-", default=None,
                             metavar="FILE",
                             help="write a JSONL span log of the run "
                             "(merged across --jobs workers; default stdout)")
        command.add_argument("--metrics", nargs="?", const="-", default=None,
                             metavar="FILE",
                             help="write a metrics-registry export: .json "
                             "files get JSON, everything else Prometheus "
                             "text (default stdout)")

    def add_url_option(command) -> None:
        command.add_argument("--url", default=None, metavar="URL",
                             help="send the request to a running `repro "
                             "serve` daemon instead of solving in-process")

    check = commands.add_parser("check", help="static analysis of mappings")
    check.add_argument("mappings", nargs="+",
                       help="one or more mapping files; the exit code is the "
                       "maximum over the files")
    check.add_argument("--witness", action="store_true")
    check.add_argument("--stats", action="store_true",
                       help="print the engine's algorithm/cost accounting")
    add_batch_options(check)
    add_obs_options(check)
    add_url_option(check)
    check.set_defaults(handler=cmd_check)

    member = commands.add_parser("member", help="is (source, target) in [[M]]?")
    member.add_argument("mapping")
    member.add_argument("source")
    member.add_argument("targets", nargs="+", metavar="target",
                        help="one or more target documents; the exit code is "
                        "the maximum over the targets")
    member.add_argument("--explain", action="store_true")
    member.add_argument("--stats", action="store_true",
                        help="print the engine's algorithm/cost accounting")
    add_batch_options(member)
    add_obs_options(member)
    add_url_option(member)
    member.set_defaults(handler=cmd_member)

    solve_cmd = commands.add_parser("solve", help="canonical solution for a source")
    solve_cmd.add_argument("mapping")
    solve_cmd.add_argument("source")
    solve_cmd.add_argument("--output")
    add_obs_options(solve_cmd)
    solve_cmd.set_defaults(handler=cmd_solve)

    stats = commands.add_parser(
        "stats", help="self-checking exporter smoke test (CI gate)"
    )
    stats.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="fan the self-test batch over N workers "
                       "(default 2, so the cross-process plumbing is checked)")
    stats.add_argument("--cache-dir", default=None, metavar="DIR")
    stats.add_argument("--cache-size", type=int, default=None, metavar="N")
    add_obs_options(stats)
    add_url_option(stats)
    stats.set_defaults(handler=cmd_stats)

    lint = commands.add_parser(
        "lint", help="static diagnostics for mappings (no solver runs)"
    )
    lint.add_argument("mappings", nargs="+",
                      help="one or more mapping files; the exit code is the "
                      "maximum over the files")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report (one envelope for all files)")
    lint.add_argument("--strict", action="store_true",
                      help="exit 2 when there are warnings (errors still exit 1)")
    lint.add_argument("--quiet", action="store_true",
                      help="hide info-level diagnostics in text output")
    lint.add_argument("--sarif", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="write a SARIF 2.1.0 log (rules, results, "
                      "verified fixes, suppressions) to FILE, or stdout "
                      "when no FILE is given; implies computing fixes")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppress diagnostics recorded in FILE (created "
                      "on first use); new findings still fail, stale "
                      "entries are reported")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite --baseline FILE from this run's "
                      "diagnostics and exit 0")
    lint.add_argument("--watch", action="store_true",
                      help="keep running: poll the files for edits and "
                      "incrementally re-lint/re-solve only what changed")
    lint.add_argument("--interval", type=float, default=0.5, metavar="SECONDS",
                      help="watch-mode polling interval (default 0.5)")
    lint.add_argument("--watch-count", type=int, default=None, metavar="N",
                      help="watch mode: exit after N change events "
                      "(default: run until Ctrl-C)")
    lint.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent on-disk compilation cache "
                      "(default: $REPRO_CACHE_DIR)")
    lint.add_argument("--cache-size", type=int, default=None, metavar="N",
                      help="in-memory compilation-cache capacity "
                      "(default: $REPRO_CACHE_SIZE or 256)")
    add_obs_options(lint)
    add_url_option(lint)
    lint.set_defaults(handler=cmd_lint)

    fix = commands.add_parser(
        "fix", help="apply certified quick-fixes proposed by lint"
    )
    fix.add_argument("mappings", nargs="+",
                     help="one or more mapping files; the exit code mirrors "
                     "`repro lint` over each file's final state")
    fix.add_argument("--diff", action="store_true",
                     help="print a unified diff of the repairs")
    fix.add_argument("--apply", action="store_true",
                     help="write the repaired file in place (atomic rename)")
    fix.add_argument("--only", action="append", default=None, metavar="SMxxx",
                     help="restrict to these diagnostic codes "
                     "(repeatable, comma-separable)")
    fix.add_argument("--strict", action="store_true",
                     help="exit 2 when warnings remain after fixing")
    fix.add_argument("--max-rounds", type=int, default=8, metavar="N",
                     help="cap on lint→fix→re-lint rounds per file "
                     "(default 8)")
    fix.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persistent on-disk compilation cache "
                     "(default: $REPRO_CACHE_DIR)")
    fix.add_argument("--cache-size", type=int, default=None, metavar="N",
                     help="in-memory compilation-cache capacity "
                     "(default: $REPRO_CACHE_SIZE or 256)")
    add_obs_options(fix)
    add_url_option(fix)
    fix.set_defaults(handler=cmd_fix, stats=False)

    compose = commands.add_parser("compose", help="compose two mappings (Thm 8.2)")
    compose.add_argument("first")
    compose.add_argument("second")
    compose.add_argument("--output")
    add_url_option(compose)
    compose.set_defaults(handler=cmd_compose)

    serve = commands.add_parser(
        "serve", help="JSON-over-HTTP daemon over one warm engine session"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8425,
                       help="listening port (0 binds an ephemeral port)")
    serve.add_argument("--max-inflight", type=int, default=4, metavar="N",
                       help="requests executing concurrently (default 4)")
    serve.add_argument("--queue-depth", type=int, default=8, metavar="N",
                       help="admitted requests waiting beyond the in-flight "
                       "limit; anything more is rejected with 429 (default 8)")
    serve.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                       help="per-request wall-clock cap; a slow solve comes "
                       "back as an Unknown verdict (default 30)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.add_argument("--slow-log", default=None, metavar="FILE",
                       help="append slow requests (over $REPRO_SLOW_MS, "
                       "default 1000ms) as JSONL to FILE for post-mortems")
    add_batch_options(serve)
    serve.set_defaults(handler=cmd_serve, stats=False)

    top = commands.add_parser(
        "top", help="live terminal view of a running daemon"
    )
    top.add_argument("--url", required=True, metavar="URL",
                     help="the `repro serve` daemon to watch")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="refresh period (default 2)")
    top.add_argument("--count", type=int, default=None, metavar="N",
                     help="render N frames then exit (default: until Ctrl-C)")
    top.add_argument("--plain", action="store_true",
                     help="never clear the screen between frames")
    top.set_defaults(handler=cmd_top, stats=False)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _Observer(args):
            return args.handler(args)
    except (XsmError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    raise SystemExit(main())
