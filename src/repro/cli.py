"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

validate   check that an XML document conforms to a DTD
match      evaluate a tree pattern against an XML document
check      static analysis of a mapping file (consistency, absolute consistency)
lint       zero-solver diagnostics: fragment, predicted complexity cells,
           DTD class, pattern hygiene, composition closure
member     is (source.xml, target.xml) in [[M]]?
solve      build the canonical solution for a source document
compose    compose two mapping files (Theorem 8.2) and print the result
stats      self-checking metrics-exporter smoke test (the CI gate)

Documents are plain XML (see :mod:`repro.xmlmodel.xml_io`), DTDs use the
textual production syntax, mappings the ``.xsm`` format of
:mod:`repro.mappings.io`.

The analysis commands route through :func:`repro.engine.solve` and report
certified verdicts.  ``check`` exits 0 when the mapping is consistent, 1
when it is inconsistent and 2 when every applicable procedure came back
``Unknown`` (bound exhausted); other commands keep 0 = yes / 1 = no.
Errors (parse failures, missing labels, ...) exit 3.  ``--stats`` prints
the engine's per-solve accounting: selected algorithm, routing reason,
wall clock, charged expansions and compilation-cache hits/misses.

``lint`` runs the static analyser only (`repro.analysis`): exit 0 when
clean, 1 on errors (``SM1xx``/``SM2xx`` severities), 2 with ``--strict``
when there are warnings, 3 on operational failures; ``--json`` emits the
machine-readable envelope, ``--quiet`` hides info-level diagnostics.

``check`` and ``member`` accept *batches* — several mapping files, or
several target documents — and the exit code is the maximum over the
inputs.  ``--jobs N`` fans the batch out over N worker processes through
:func:`repro.engine.solve_many`; ``--cache-dir`` attaches a persistent
on-disk compilation cache shared by the workers and by repeat
invocations, and ``--cache-size`` bounds the in-memory LRU (both also
honour the ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_SIZE`` environment
variables).

Observability (see DESIGN.md §Observability): ``--trace[=FILE]`` writes
a JSONL span log of the whole invocation — with ``--jobs`` the workers'
spans are merged into one cross-process tree; ``--metrics[=FILE]``
exports the metrics registry (Prometheus text, or JSON for ``.json``
destinations); ``--stats`` additionally prints a registry-derived
``registry:`` section of every series the command moved.  ``repro
stats`` runs a built-in self-test batch and fails (exit 1) when the
exporters regress.  ``REPRO_PROFILE=1`` dumps per-solve cProfile data.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.composition.compose import compose as compose_mappings
from repro.consistency import consistency_witness
from repro.engine import (
    AbsoluteConsistencyProblem,
    CompilationCache,
    ConsistencyProblem,
    Counterexample,
    DiskCacheTier,
    ExecutionContext,
    MembershipProblem,
    RigidityExplanation,
    solve_many,
)
from repro.errors import XsmError
from repro.exchange import canonical_solution
from repro.mappings.io import parse_mapping, render_mapping
from repro.mappings.membership import violations
from repro.obs import REGISTRY, collecting, diff_snapshots, parse_prometheus
from repro.patterns.matching import find_matches
from repro.patterns.parser import parse_pattern
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.xml_io import from_xml, to_xml


def _read(path: str) -> str:
    return Path(path).read_text()


def _print_stats(verdict) -> None:
    report = getattr(verdict, "report", None)
    if report is None:
        return
    for line in report.lines():
        print(f"  {line}")


# ---------------------------------------------------------------------------
# observability plumbing: --trace / --metrics / registry-derived --stats
# ---------------------------------------------------------------------------


def _write_obs(dest: str, text: str) -> None:
    """``-`` goes to stdout, anything else is a file path."""
    if dest == "-":
        sys.stdout.write(text)
    else:
        Path(dest).write_text(text)


def _render_metrics(dest: str) -> str:
    """Registry export: ``.json`` destinations get JSON, else Prometheus."""
    if dest.endswith(".json"):
        return REGISTRY.render_json()
    return REGISTRY.render_prometheus()


class _Observer:
    """Per-invocation --trace/--metrics/--stats wiring around a handler.

    Installs a trace collector when ``--trace`` asked for one (so every
    engine span of the command lands in one tree, including the merged
    cross-process spans of ``--jobs`` batches), snapshots the registry
    around the handler for the ``--stats`` registry section, and flushes
    the requested exports even when the handler raises.
    """

    def __init__(self, args):
        self.trace_dest = getattr(args, "trace", None)
        self.metrics_dest = getattr(args, "metrics", None)
        self.stats = bool(getattr(args, "stats", False))
        self.command = getattr(args, "command", "repro")
        self.tree = None
        self._before = None
        self._collector = None

    def __enter__(self):
        self._before = REGISTRY.snapshot()
        if self.trace_dest is not None:
            self._collector = collecting("repro", command=self.command)
            self.tree = self._collector.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._collector is not None:
            self._collector.__exit__(exc_type, exc, tb)
        if self.trace_dest is not None and self.tree is not None:
            _write_obs(self.trace_dest, self.tree.jsonl())
        if self.metrics_dest is not None:
            _write_obs(self.metrics_dest, _render_metrics(self.metrics_dest))
        if self.stats and exc_type is None:
            self._print_registry_section()
        return False

    def _print_registry_section(self) -> None:
        delta = diff_snapshots(self._before, REGISTRY.snapshot())
        lines = _registry_lines(delta)
        if lines:
            print("registry:")
            for line in lines:
                print(f"  {line}")


def _registry_lines(delta: dict) -> list[str]:
    """Render a snapshot delta for ``--stats``: one line per moved series."""
    lines: list[str] = []
    for name in sorted(delta):
        data = delta[name]
        labelnames = data.get("labelnames", [])
        for key in sorted(data.get("series", {})):
            value = data["series"][key]
            labels = ",".join(f"{k}={v}" for k, v in zip(labelnames, key))
            suffix = f"{{{labels}}}" if labels else ""
            if data["kind"] == "histogram":
                count, total = value.get("count", 0), value.get("sum", 0.0)
                lines.append(f"{name}{suffix} count={count} sum={total:.6f}s")
            else:
                rendered = int(value) if float(value).is_integer() else value
                lines.append(f"{name}{suffix} {rendered}")
    return lines


def _describe(verdict) -> str:
    if verdict.is_unknown:
        return f"unknown ({verdict.reason})"
    return str(verdict.decision())


def cmd_validate(args) -> int:
    dtd = parse_dtd(_read(args.dtd))
    document = from_xml(_read(args.document), dtd)
    try:
        dtd.check_conformance(document)
    except XsmError as error:
        print(f"INVALID: {error}")
        return 1
    print("VALID")
    return 0


def cmd_match(args) -> int:
    pattern = parse_pattern(args.pattern)
    document = from_xml(_read(args.document))
    matches = find_matches(pattern, document)
    variables = pattern.variables()
    if not matches:
        print("no matches")
        return 1
    for match in matches:
        rendered = ", ".join(f"{v.name}={match[v]!r}" for v in variables)
        print(rendered or "(match)")
    return 0


def _batch_context(args) -> ExecutionContext:
    """An execution context honouring ``--cache-size`` / ``--cache-dir``."""
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR")
    disk = DiskCacheTier(cache_dir) if cache_dir else None
    cache = CompilationCache(max_entries=getattr(args, "cache_size", None), disk=disk)
    return ExecutionContext(cache=cache)


def _check_one(args, mapping, consistency, absolute) -> int:
    """Report one mapping's analysis; returns its exit code."""
    print(f"class: {mapping.signature()}")
    print(f"consistent: {_describe(consistency)}")
    if args.stats:
        _print_stats(consistency)
    if consistency.is_proved and args.witness:
        pair = consistency_witness(mapping)
        if pair:
            print(f"  witness source: {to_xml(pair[0], mapping.source_dtd).strip()}")
            print(f"  witness target: {to_xml(pair[1], mapping.target_dtd).strip()}")

    print(f"absolutely consistent: {_describe(absolute)}")
    if absolute.is_refuted:
        certificate = absolute.certificate
        if isinstance(certificate, RigidityExplanation):
            for problem in certificate.problems:
                print(f"  why: {problem}")
        elif isinstance(certificate, Counterexample):
            print("  unmappable document:")
            print("  " + to_xml(certificate.source, mapping.source_dtd).strip()
                  .replace("\n", "\n  "))
    if args.stats:
        _print_stats(absolute)

    # the consistency verdict drives the exit code; when it is decided,
    # a failed (or undecided) absolute-consistency check still flags 1 (or 2)
    if consistency.is_refuted:
        return 1
    if consistency.is_unknown:
        return 2
    if absolute.is_refuted:
        return 1
    if absolute.is_unknown:
        return 2
    return 0


def cmd_check(args) -> int:
    mappings = [parse_mapping(_read(path)) for path in args.mappings]
    problems = []
    for mapping in mappings:
        problems.append(ConsistencyProblem(mapping))
        problems.append(AbsoluteConsistencyProblem(mapping))
    batch = solve_many(
        problems,
        jobs=args.jobs,
        context=_batch_context(args),
        cache_dir=args.cache_dir,
    )
    exit_code = 0
    for position, (path, mapping) in enumerate(zip(args.mappings, mappings)):
        if len(args.mappings) > 1:
            if position:
                print()
            print(f"== {path}")
        code = _check_one(
            args, mapping, batch[2 * position], batch[2 * position + 1]
        )
        exit_code = max(exit_code, code)
    if args.stats and len(args.mappings) > 1:
        for line in batch.report.lines():
            print(f"  {line}")
    return exit_code


def cmd_member(args) -> int:
    mapping = parse_mapping(_read(args.mapping))
    source = from_xml(_read(args.source), mapping.source_dtd)
    targets = [from_xml(_read(path), mapping.target_dtd) for path in args.targets]
    batch = solve_many(
        [MembershipProblem(mapping, source, target) for target in targets],
        jobs=args.jobs,
        context=_batch_context(args),
        cache_dir=args.cache_dir,
    )
    exit_code = 0
    for path, target, verdict in zip(args.targets, targets, batch):
        answer = "YES" if verdict.is_proved else "NO"
        print(answer if len(args.targets) == 1 else f"{path}: {answer}")
        if args.stats:
            _print_stats(verdict)
        if verdict.is_refuted and args.explain and not mapping.uses_skolem_functions():
            for std, valuation in violations(mapping, source, target):
                values = {v.name: value for v, value in valuation.items()}
                print(f"  violated: {std}")
                print(f"    with {values}")
        exit_code = max(exit_code, 0 if verdict.is_proved else 1)
    return exit_code


def cmd_solve(args) -> int:
    mapping = parse_mapping(_read(args.mapping))
    source = from_xml(_read(args.source), mapping.source_dtd)
    solution = canonical_solution(mapping, source)
    if solution is None:
        print("NO SOLUTION", file=sys.stderr)
        return 1
    output = to_xml(solution, mapping.target_dtd)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


#: Small but non-trivial mapping for the ``repro stats`` self-test batch:
#: routes through cons-automata and the rigidity analysis, exercising the
#: compilation cache, certify and (with --jobs > 1) the worker plumbing.
_SELFTEST_MAPPING = """\
source:
    f -> item*
    item(sku)
target:
    w -> product*
    product(sku)
std: f[item(s)] -> w[product(s)]
"""

#: Series the ``repro stats`` smoke requires after its self-test batch.
_REQUIRED_SERIES = (
    "repro_solves_total",
    "repro_solve_latency_seconds_bucket",
    "repro_solve_latency_seconds_count",
    "repro_cache_misses_total",
    "repro_certify_total",
    "repro_batch_problems_total",
)

_REQUIRED_PARALLEL_SERIES = (
    "repro_queue_wait_seconds_count",
    "repro_worker_chunks_total",
)


def cmd_stats(args) -> int:
    """Self-checking exporter smoke: solve a built-in batch, validate the
    Prometheus export and the merged trace; exit 1 on any regression."""
    import json as json_module

    from repro.engine import certify

    mapping = parse_mapping(_SELFTEST_MAPPING)
    problems = []
    for _ in range(max(2, args.jobs)):
        problems.append(ConsistencyProblem(mapping))
        problems.append(AbsoluteConsistencyProblem(mapping))
    with collecting("stats-selftest") as tree:
        batch = solve_many(problems, jobs=args.jobs, context=_batch_context(args))
        for verdict in batch:
            if not verdict.is_unknown:
                certify(verdict)
    report = batch.report
    print(
        f"self-test: {report.problems} problems over {report.jobs} jobs "
        f"in {report.elapsed:.3f}s"
    )

    failures: list[str] = []
    text = REGISTRY.render_prometheus()
    try:
        series = parse_prometheus(text)
    except ValueError as error:
        series = {}
        failures.append(f"prometheus export does not parse: {error}")
    names = {key.split("{", 1)[0] for key in series}
    required = list(_REQUIRED_SERIES)
    if args.jobs > 1:
        required += list(_REQUIRED_PARALLEL_SERIES)
    for name in required:
        if name not in names:
            failures.append(f"required series missing from export: {name}")
    try:
        json_module.loads(REGISTRY.render_json())
    except ValueError as error:
        failures.append(f"json export does not parse: {error}")

    trace_dict = tree.to_dict()
    from repro.obs import walk as walk_spans

    solves = sum(1 for span in walk_spans(trace_dict) if span["name"] == "solve")
    if report.trace is None:
        failures.append("batch report carries no merged trace")
    if solves < report.problems:
        failures.append(
            f"trace covers {solves} solve spans for {report.problems} problems"
        )
    print(f"prometheus export: {len(series)} series")
    print(f"trace: {solves} solve spans over {report.chunks} chunks")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("stats: OK")
    return 0


def cmd_lint(args) -> int:
    """Static diagnostics for one or more mapping files (no solver runs)."""
    from repro.analysis import Severity, lint_mapping, merge_reports

    context = _batch_context(args)
    reports = [
        lint_mapping(parse_mapping(_read(path)), context, name=path)
        for path in args.mappings
    ]
    if args.json:
        import json as json_module

        print(json_module.dumps(merge_reports(reports), indent=2, sort_keys=True))
    else:
        min_severity = Severity.WARNING if args.quiet else Severity.INFO
        for position, (path, report) in enumerate(zip(args.mappings, reports)):
            if len(args.mappings) > 1:
                if position:
                    print()
                print(f"== {path}")
            print(report.render_text(min_severity=min_severity))
    return max(report.exit_code(strict=args.strict) for report in reports)


def cmd_compose(args) -> int:
    first = parse_mapping(_read(args.first))
    second = parse_mapping(_read(args.second))
    composed = compose_mappings(first, second)
    output = render_mapping(composed)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML schema mappings (PODS 2009 reproduction) — "
        "validation, matching, static analysis, exchange, composition",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="conformance of a document")
    validate.add_argument("--dtd", required=True)
    validate.add_argument("document")
    validate.set_defaults(handler=cmd_validate)

    match = commands.add_parser("match", help="evaluate a pattern on a document")
    match.add_argument("--pattern", required=True)
    match.add_argument("document")
    match.set_defaults(handler=cmd_match)

    def add_batch_options(command) -> None:
        command.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="solve the batch over N worker processes")
        command.add_argument("--cache-dir", metavar="DIR",
                             default=None,
                             help="persistent on-disk compilation cache "
                             "(default: $REPRO_CACHE_DIR)")
        command.add_argument("--cache-size", type=int, default=None, metavar="N",
                             help="in-memory compilation-cache capacity "
                             "(default: $REPRO_CACHE_SIZE or 256)")

    def add_obs_options(command) -> None:
        command.add_argument("--trace", nargs="?", const="-", default=None,
                             metavar="FILE",
                             help="write a JSONL span log of the run "
                             "(merged across --jobs workers; default stdout)")
        command.add_argument("--metrics", nargs="?", const="-", default=None,
                             metavar="FILE",
                             help="write a metrics-registry export: .json "
                             "files get JSON, everything else Prometheus "
                             "text (default stdout)")

    check = commands.add_parser("check", help="static analysis of mappings")
    check.add_argument("mappings", nargs="+",
                       help="one or more mapping files; the exit code is the "
                       "maximum over the files")
    check.add_argument("--witness", action="store_true")
    check.add_argument("--stats", action="store_true",
                       help="print the engine's algorithm/cost accounting")
    add_batch_options(check)
    add_obs_options(check)
    check.set_defaults(handler=cmd_check)

    member = commands.add_parser("member", help="is (source, target) in [[M]]?")
    member.add_argument("mapping")
    member.add_argument("source")
    member.add_argument("targets", nargs="+", metavar="target",
                        help="one or more target documents; the exit code is "
                        "the maximum over the targets")
    member.add_argument("--explain", action="store_true")
    member.add_argument("--stats", action="store_true",
                        help="print the engine's algorithm/cost accounting")
    add_batch_options(member)
    add_obs_options(member)
    member.set_defaults(handler=cmd_member)

    solve_cmd = commands.add_parser("solve", help="canonical solution for a source")
    solve_cmd.add_argument("mapping")
    solve_cmd.add_argument("source")
    solve_cmd.add_argument("--output")
    add_obs_options(solve_cmd)
    solve_cmd.set_defaults(handler=cmd_solve)

    stats = commands.add_parser(
        "stats", help="self-checking exporter smoke test (CI gate)"
    )
    stats.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="fan the self-test batch over N workers "
                       "(default 2, so the cross-process plumbing is checked)")
    stats.add_argument("--cache-dir", default=None, metavar="DIR")
    stats.add_argument("--cache-size", type=int, default=None, metavar="N")
    add_obs_options(stats)
    stats.set_defaults(handler=cmd_stats)

    lint = commands.add_parser(
        "lint", help="static diagnostics for mappings (no solver runs)"
    )
    lint.add_argument("mappings", nargs="+",
                      help="one or more mapping files; the exit code is the "
                      "maximum over the files")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report (one envelope for all files)")
    lint.add_argument("--strict", action="store_true",
                      help="exit 2 when there are warnings (errors still exit 1)")
    lint.add_argument("--quiet", action="store_true",
                      help="hide info-level diagnostics in text output")
    lint.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="persistent on-disk compilation cache "
                      "(default: $REPRO_CACHE_DIR)")
    lint.add_argument("--cache-size", type=int, default=None, metavar="N",
                      help="in-memory compilation-cache capacity "
                      "(default: $REPRO_CACHE_SIZE or 256)")
    add_obs_options(lint)
    lint.set_defaults(handler=cmd_lint)

    compose = commands.add_parser("compose", help="compose two mappings (Thm 8.2)")
    compose.add_argument("first")
    compose.add_argument("second")
    compose.add_argument("--output")
    compose.set_defaults(handler=cmd_compose)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _Observer(args):
            return args.handler(args)
    except (XsmError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    raise SystemExit(main())
