"""Baseline suppression for ``repro lint``.

A *baseline* freezes the diagnostics a codebase already has so CI can
gate on **new** findings only.  ``repro lint --baseline FILE`` writes
the file on first use and compares against it afterwards: baselined
diagnostics move from each report's ``diagnostics`` to its
``suppressed`` list (they no longer count toward the exit code, but
SARIF still emits them with a ``suppressions`` entry), new diagnostics
fail the gate as usual, and baseline entries whose diagnostic has
disappeared are reported *stale* so the file can be re-tightened.

Everything operates on the version-2 JSON envelope of
:func:`repro.analysis.diagnostics.merge_reports`, so suppression works
identically for local lints and ``--url`` daemon responses.

Fingerprints are content-stable: the hash covers the report name, the
code, the location and the message — not positions in the file — so
re-ordering stds or adding unrelated ones does not invalidate a
baseline entry for an untouched diagnostic.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XsmError

#: Schema version of the baseline file.
BASELINE_VERSION = 1

#: Severity escalation order for recomputing envelope summaries.
_SEVERITY_ORDER = ("info", "warning", "error")


def fingerprint(name: str, diagnostic: dict[str, object]) -> str:
    """The stable identity of one diagnostic of one named input."""
    location = diagnostic.get("location") or {}
    assert isinstance(location, dict)
    payload = "\x1f".join(
        str(part)
        for part in (
            name,
            diagnostic.get("code"),
            location.get("std_index"),
            location.get("side"),
            location.get("path"),
            diagnostic.get("message"),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _rows(envelope: dict[str, object]) -> Iterator[dict[str, object]]:
    reports = envelope.get("reports")
    assert isinstance(reports, list)
    for row in reports:
        assert isinstance(row, dict)
        yield row


def _diagnostics(row: dict[str, object]) -> list[dict[str, object]]:
    diagnostics = row.get("diagnostics")
    assert isinstance(diagnostics, list)
    return diagnostics


def baseline_from_envelope(envelope: dict[str, object]) -> dict[str, object]:
    """A baseline file freezing every diagnostic of *envelope*."""
    entries: dict[str, dict[str, object]] = {}
    for row in _rows(envelope):
        name = str(row.get("name", ""))
        for diagnostic in _diagnostics(row):
            entries[fingerprint(name, diagnostic)] = {
                "name": name,
                "code": diagnostic.get("code"),
                "message": diagnostic.get("message"),
            }
    return {"version": BASELINE_VERSION, "entries": entries}


def load_baseline(text: str) -> dict[str, object]:
    """Parse and sanity-check a baseline file."""
    try:
        baseline = json.loads(text)
    except json.JSONDecodeError as error:
        raise XsmError(f"baseline file is not valid JSON: {error}") from error
    if not isinstance(baseline, dict) or baseline.get("version") != BASELINE_VERSION:
        raise XsmError(
            f"baseline file must be a version-{BASELINE_VERSION} object "
            "written by 'repro lint --baseline'"
        )
    if not isinstance(baseline.get("entries"), dict):
        raise XsmError("baseline file has no 'entries' object")
    return baseline


def render_baseline(baseline: dict[str, object]) -> str:
    return json.dumps(baseline, indent=2, sort_keys=True) + "\n"


@dataclass
class BaselineResult:
    """Outcome of comparing an envelope against a baseline."""

    envelope: dict[str, object]
    suppressed: int = 0
    #: Baseline entries whose diagnostic no longer occurs (re-tighten!).
    stale: list[dict[str, object]] = field(default_factory=list)

    def summary(self) -> str:
        parts = [f"{self.suppressed} diagnostic(s) suppressed by baseline"]
        if self.stale:
            parts.append(
                f"{len(self.stale)} stale baseline entr"
                f"{'y' if len(self.stale) == 1 else 'ies'} "
                "(diagnostic gone — refresh with --update-baseline)"
            )
        return "; ".join(parts)


def _recompute_summaries(envelope: dict[str, object]) -> None:
    worst: str | None = None
    for row in _rows(envelope):
        counts = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in _diagnostics(row):
            severity = str(diagnostic.get("severity"))
            if severity in counts:
                counts[severity] += 1
            if worst is None or (
                severity in _SEVERITY_ORDER
                and _SEVERITY_ORDER.index(severity) > _SEVERITY_ORDER.index(worst)
            ):
                worst = severity
        row["counts"] = counts
    envelope["max_severity"] = worst


def apply_baseline(
    envelope: dict[str, object], baseline: dict[str, object]
) -> BaselineResult:
    """Suppress baselined diagnostics; report what's new and what's stale.

    The input envelope is not mutated.  Suppressed diagnostics move to
    each row's ``suppressed`` list; per-row counts and the envelope's
    ``max_severity`` are recomputed from the remainder, so exit codes
    derived from the returned envelope reflect new findings only.
    """
    entries = baseline.get("entries")
    assert isinstance(entries, dict)
    result = BaselineResult(envelope=copy.deepcopy(envelope))
    seen: set[str] = set()
    for row in _rows(result.envelope):
        name = str(row.get("name", ""))
        kept: list[dict[str, object]] = []
        suppressed = row.setdefault("suppressed", [])
        assert isinstance(suppressed, list)
        for diagnostic in _diagnostics(row):
            mark = fingerprint(name, diagnostic)
            if mark in entries:
                seen.add(mark)
                suppressed.append(diagnostic)
                result.suppressed += 1
            else:
                kept.append(diagnostic)
        row["diagnostics"] = kept
    result.stale = [
        {"fingerprint": mark, **entry}
        for mark, entry in sorted(entries.items())
        if mark not in seen and isinstance(entry, dict)
    ]
    _recompute_summaries(result.envelope)
    return result


def envelope_exit_code(envelope: dict[str, object], strict: bool = False) -> int:
    """The lint CLI exit convention, recomputed from an envelope."""
    errors = warnings = 0
    for row in _rows(envelope):
        counts = row.get("counts")
        assert isinstance(counts, dict)
        errors += int(counts.get("error", 0))
        warnings += int(counts.get("warning", 0))
    if errors:
        return 1
    if strict and warnings:
        return 2
    return 0
