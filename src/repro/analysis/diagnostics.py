"""The diagnostic model of the mapping linter.

A :class:`Diagnostic` is one finding of the static analysis: a stable
code, a severity, a human message and a :class:`SourceLocation` inside
the mapping (std index, side, pattern path).  Codes are grouped by
family:

* ``SM0xx`` — fragment classification and predicted Figure 1–2
  complexity cells,
* ``SM1xx`` — DTD-class facts (nested-relational, strictly
  nested-relational, recursion, satisfiability),
* ``SM2xx`` — pattern hygiene (dead or unsafe stds, alphabet and arity
  mismatches, variable hygiene),
* ``SM3xx`` — mapping-level analyses: composition closure (Theorem 8.2
  preconditions) and redundancy (stds subsumed by other stds).

:class:`LintReport` aggregates the diagnostics of one mapping and
renders them as human text or JSON; its :meth:`LintReport.exit_code`
implements the CLI convention (0 clean, 1 errors, 2 warnings under
``--strict``; operational failures exit 3 elsewhere).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


class Severity(enum.IntEnum):
    """Diagnostic severity; the integer order is the escalation order."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SourceLocation:
    """Where in the mapping a diagnostic points.

    ``std_index`` indexes ``mapping.stds`` (None = the whole mapping),
    ``side`` is ``"source"`` / ``"target"`` (None = both / not
    applicable) and ``path`` is a ``/``-separated label path from the
    pattern root to the offending node.
    """

    std_index: int | None = None
    side: str | None = None
    path: str | None = None

    def __str__(self) -> str:
        if self.std_index is None:
            return "mapping"
        parts = [f"std {self.std_index}"]
        if self.side:
            parts.append(self.side)
        if self.path:
            parts.append(f"at {self.path}")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, object]:
        return {
            "std_index": self.std_index,
            "side": self.side,
            "path": self.path,
        }


#: The whole-mapping location singleton.
MAPPING_LOCATION = SourceLocation()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, message, location.

    ``data`` carries machine-readable detail (e.g. the predicted
    algorithm, the offending label) as a tuple of key/value pairs so the
    diagnostic stays hashable and picklable; :meth:`to_dict` re-exposes
    it as a mapping.
    """

    code: str
    severity: Severity
    message: str
    location: SourceLocation = MAPPING_LOCATION
    data: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.code not in CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        """The catalogue title of this diagnostic's code."""
        return CATALOG[self.code].title

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.data:
            if name == key:
                return value
        return default

    def render(self) -> str:
        """One human-readable line: ``error SM201 [std 0, source]: ...``."""
        return f"{self.severity} {self.code} [{self.location}]: {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location.to_dict(),
            "data": {key: _jsonable(value) for key, value in self.data},
        }


def _jsonable(value: object) -> object:
    """Best-effort JSON projection of a data value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in sorted(value, key=str)]
    return str(value)


@dataclass(frozen=True)
class CatalogEntry:
    """Catalogue row for one stable code: default severity and title."""

    code: str
    severity: Severity
    title: str
    summary: str


def _entry(code: str, severity: Severity, title: str, summary: str) -> tuple[str, CatalogEntry]:
    return code, CatalogEntry(code, severity, title, summary)


#: The stable diagnostic-code catalogue (DESIGN.md §6 renders this table).
CATALOG: Mapping[str, CatalogEntry] = dict(
    [
        # -- SM0xx: fragment classification / complexity-cell prediction --
        _entry("SM001", Severity.INFO, "fragment",
               "the mapping's SM(σ) fragment (axes, wildcard, comparisons)"),
        _entry("SM002", Severity.INFO, "cons-cell",
               "predicted Figure 1 cell for CONS (algorithm + complexity)"),
        _entry("SM003", Severity.INFO, "abscons-cell",
               "predicted Figure 1 cell for ABSCONS"),
        _entry("SM004", Severity.INFO, "membership-cell",
               "predicted Figure 2 cell for mapping membership"),
        _entry("SM005", Severity.INFO, "composition-cell",
               "predicted Figure 2 cell for composition problems"),
        _entry("SM010", Severity.WARNING, "cons-undecidable",
               "CONS has no exact algorithm in this fragment: only a sound "
               "bounded witness search applies"),
        _entry("SM011", Severity.WARNING, "abscons-inexact",
               "ABSCONS falls outside every exact class: bounded refutation "
               "only (Theorem 6.2's general algorithm is unpublished)"),
        _entry("SM012", Severity.WARNING, "composition-inexact",
               "composition problems leave the exact classes: bounded "
               "searches only (undecidable with ∼, Theorem 7.1(2))"),
        # -- SM1xx: DTD classification --
        _entry("SM101", Severity.INFO, "source-dtd-class",
               "classification of the source DTD"),
        _entry("SM102", Severity.INFO, "target-dtd-class",
               "classification of the target DTD"),
        _entry("SM110", Severity.ERROR, "source-dtd-unsatisfiable",
               "no tree conforms to the source DTD: every std is dead and "
               "the mapping is vacuously consistent"),
        _entry("SM111", Severity.ERROR, "target-dtd-unsatisfiable",
               "no tree conforms to the target DTD: no source tree can "
               "have a solution"),
        # -- SM2xx: pattern hygiene --
        _entry("SM201", Severity.ERROR, "unknown-label",
               "a pattern uses a label outside the DTD's alphabet"),
        _entry("SM202", Severity.ERROR, "arity-mismatch",
               "a pattern constrains an attribute tuple of the wrong arity"),
        _entry("SM203", Severity.ERROR, "root-conflict",
               "a pattern's root label differs from the DTD root"),
        _entry("SM204", Severity.ERROR, "dead-std",
               "the source pattern is unsatisfiable under the source DTD: "
               "the std can never fire"),
        _entry("SM205", Severity.ERROR, "unsafe-std",
               "the target pattern is unsatisfiable under the target DTD: "
               "once the std fires, no target tree can satisfy it"),
        _entry("SM206", Severity.WARNING, "unused-variable",
               "a source variable is bound but never used in the target "
               "side or any comparison"),
        _entry("SM207", Severity.ERROR, "unbound-source-comparison",
               "a source-side comparison mentions a variable the source "
               "pattern never binds"),
        _entry("SM208", Severity.ERROR, "unbound-target-comparison",
               "a target-side comparison mentions a variable bound on "
               "neither side"),
        _entry("SM209", Severity.INFO, "existential-target-variables",
               "the std introduces target-only (existential) variables"),
        _entry("SM210", Severity.WARNING, "statically-false-comparison",
               "a comparison is false under every assignment (the std is "
               "dead or unsatisfiable)"),
        # -- SM3xx: composition closure (Theorem 8.2) --
        _entry("SM301", Severity.WARNING, "closure-breaking-std",
               "an std is not fully specified (grammar (5)): wildcard, "
               "descendant or sibling order breaks composition closure"),
        _entry("SM302", Severity.WARNING, "closure-breaking-dtd",
               "a DTD is not strictly nested-relational, breaking "
               "composition closure"),
        _entry("SM303", Severity.WARNING, "closure-breaking-inequality",
               "inequalities are outside the composition-closed class"),
        _entry("SM304", Severity.INFO, "composition-closed",
               "the mapping satisfies every Theorem 8.2 precondition: "
               "compositions stay in the class"),
        _entry("SM305", Severity.INFO, "skolem-functions",
               "the stds use Skolem functions (Section 8 semantics)"),
        # -- SM31x: redundancy (pattern-homomorphism subsumption) --
        _entry("SM310", Severity.WARNING, "duplicate-std",
               "an std is a variable-renamed duplicate of an earlier std "
               "and can be removed without changing the mapping"),
        _entry("SM311", Severity.WARNING, "subsumed-std",
               "an std is subsumed by another std (certified by a pattern "
               "homomorphism): removing it preserves the mapping's "
               "semantics"),
    ]
)

#: Code families, for family-level filters (the CI lint gate uses these).
FAMILIES: Mapping[str, str] = {
    "SM0": "fragment/complexity",
    "SM1": "DTD class",
    "SM2": "pattern hygiene",
    "SM3": "composition closure / redundancy",
}


def family_of(code: str) -> str:
    """The family prefix (``SM0`` ... ``SM3``) of a code."""
    return code[:3]


@dataclass
class LintReport:
    """All diagnostics of one linted mapping, plus rendering helpers."""

    fragment: str = ""
    diagnostics: tuple[Diagnostic, ...] = ()
    name: str = ""
    elapsed: float = 0.0
    passes: tuple[str, ...] = ()
    predictions: dict[str, object] = field(default_factory=dict, repr=False)
    #: Diagnostics removed from ``diagnostics`` by baseline suppression
    #: (``repro lint --baseline``); they no longer affect the exit code
    #: but stay reportable (SARIF marks them ``suppressed``).
    suppressed: tuple[Diagnostic, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- selection ----------------------------------------------------------

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def by_family(self, *families: str) -> tuple[Diagnostic, ...]:
        wanted = set(families)
        return tuple(d for d in self.diagnostics if family_of(d.code) in wanted)

    def codes(self) -> tuple[str, ...]:
        """The sorted multiset of codes (the snapshot format of the CI gate)."""
        return tuple(sorted(d.code for d in self.diagnostics))

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    # -- outcomes -----------------------------------------------------------

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def exit_code(self, strict: bool = False) -> int:
        """The CLI convention: 0 clean, 1 errors, 2 warnings under --strict."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 2
        return 0

    # -- rendering ----------------------------------------------------------

    def render_text(self, *, min_severity: Severity = Severity.INFO) -> str:
        """Human rendering: fragment line, one line per diagnostic, summary."""
        lines = [f"fragment: {self.fragment}"] if self.fragment else []
        for diagnostic in self.diagnostics:
            if diagnostic.severity >= min_severity:
                lines.append(diagnostic.render())
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "fragment": self.fragment,
            "passes": list(self.passes),
            "elapsed": self.elapsed,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def merge_reports(reports: Iterable[LintReport]) -> dict[str, object]:
    """The multi-file JSON envelope of ``repro lint`` (one entry per input).

    The envelope is **deterministic and de-duplicated** (version 2):
    rows are sorted by report name (original order breaks ties, so
    unnamed single-mapping lints are unaffected), identical diagnostics
    within one report collapse to one occurrence, and entirely identical
    reports (same name, fragment and diagnostics) collapse to one row.
    ``--jobs`` batches therefore serialize identically regardless of
    worker scheduling.
    """
    deduped: list[LintReport] = []
    seen_rows: set[tuple[object, ...]] = set()
    worst: Severity | None = None
    for report in reports:
        diagnostics = tuple(dict.fromkeys(report.diagnostics))
        row_key = (report.name, report.fragment, diagnostics, report.suppressed)
        if row_key in seen_rows:
            continue
        seen_rows.add(row_key)
        if diagnostics != report.diagnostics:
            report = LintReport(
                fragment=report.fragment,
                diagnostics=diagnostics,
                name=report.name,
                elapsed=report.elapsed,
                passes=report.passes,
                predictions=report.predictions,
                suppressed=report.suppressed,
            )
        deduped.append(report)
        severity = report.max_severity()
        if severity is not None and (worst is None or severity > worst):
            worst = severity
    deduped.sort(key=lambda report: report.name)
    return {
        "version": 2,
        "reports": [report.to_dict() for report in deduped],
        "max_severity": str(worst) if worst is not None else None,
    }
