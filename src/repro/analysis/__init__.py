"""Static analysis of schema mappings (the ``repro lint`` subsystem).

Zero-solver diagnostics over mappings and DTDs: fragment classification
and Figure 1–2 complexity-cell prediction (:mod:`.fragment`), the
diagnostic model and code catalogue (:mod:`.diagnostics`), the analysis
passes (:mod:`.passes`), the redundancy machinery (:mod:`.redundancy`),
the orchestrator (:mod:`.lint`), certified quick-fixes (:mod:`.fixes`),
baseline suppression (:mod:`.suppress`) and SARIF export
(:mod:`.sarif`).
"""

from repro.analysis.diagnostics import (
    CATALOG,
    FAMILIES,
    CatalogEntry,
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
    family_of,
    merge_reports,
)
from repro.analysis.fixes import (
    FIXABLE_CODES,
    Fix,
    StdEdit,
    apply_edits_to_text,
    fix_from_dict,
    fix_mapping,
    fixes_for_report,
    select_compatible,
    verify_fix,
)
from repro.analysis.fragment import (
    CellPrediction,
    predict_abscons,
    predict_composition_consistency,
    predict_composition_membership,
    predict_consistency,
    predict_for_problem,
    predict_membership,
)
from repro.analysis.lint import lint_mapping
from repro.analysis.passes import (
    PASSES,
    composition_pass,
    diagnostics_for_problem,
    dtd_pass,
    fragment_pass,
    hygiene_pass,
    redundancy_pass,
)
from repro.analysis.redundancy import Subsumption, find_redundancies, subsumes
from repro.analysis.sarif import sarif_log, validate_sarif
from repro.analysis.suppress import (
    apply_baseline,
    baseline_from_envelope,
    envelope_exit_code,
    load_baseline,
    render_baseline,
)

__all__ = [
    "CATALOG",
    "FAMILIES",
    "FIXABLE_CODES",
    "PASSES",
    "CatalogEntry",
    "CellPrediction",
    "Diagnostic",
    "Fix",
    "LintReport",
    "Severity",
    "SourceLocation",
    "StdEdit",
    "Subsumption",
    "apply_baseline",
    "apply_edits_to_text",
    "baseline_from_envelope",
    "composition_pass",
    "diagnostics_for_problem",
    "dtd_pass",
    "envelope_exit_code",
    "family_of",
    "find_redundancies",
    "fix_from_dict",
    "fix_mapping",
    "fixes_for_report",
    "fragment_pass",
    "hygiene_pass",
    "lint_mapping",
    "load_baseline",
    "merge_reports",
    "predict_abscons",
    "predict_composition_consistency",
    "predict_composition_membership",
    "predict_consistency",
    "predict_for_problem",
    "predict_membership",
    "redundancy_pass",
    "sarif_log",
    "select_compatible",
    "subsumes",
    "validate_sarif",
    "verify_fix",
]
