"""Static analysis of schema mappings (the ``repro lint`` subsystem).

Zero-solver diagnostics over mappings and DTDs: fragment classification
and Figure 1–2 complexity-cell prediction (:mod:`.fragment`), the
diagnostic model and code catalogue (:mod:`.diagnostics`), the analysis
passes (:mod:`.passes`) and the orchestrator (:mod:`.lint`).
"""

from repro.analysis.diagnostics import (
    CATALOG,
    FAMILIES,
    CatalogEntry,
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
    family_of,
    merge_reports,
)
from repro.analysis.fragment import (
    CellPrediction,
    predict_abscons,
    predict_composition_consistency,
    predict_composition_membership,
    predict_consistency,
    predict_for_problem,
    predict_membership,
)
from repro.analysis.lint import lint_mapping
from repro.analysis.passes import (
    PASSES,
    composition_pass,
    diagnostics_for_problem,
    dtd_pass,
    fragment_pass,
    hygiene_pass,
)

__all__ = [
    "CATALOG",
    "FAMILIES",
    "PASSES",
    "CatalogEntry",
    "CellPrediction",
    "Diagnostic",
    "LintReport",
    "Severity",
    "SourceLocation",
    "composition_pass",
    "diagnostics_for_problem",
    "dtd_pass",
    "family_of",
    "fragment_pass",
    "hygiene_pass",
    "lint_mapping",
    "merge_reports",
    "predict_abscons",
    "predict_composition_consistency",
    "predict_composition_membership",
    "predict_consistency",
    "predict_for_problem",
    "predict_membership",
]
