"""Redundancy analysis: std subsumption via pattern homomorphisms.

An std is *redundant* when removing it does not change the mapping's
semantics because another std already enforces (at least) the same
requirement.  Deciding this in general is as hard as mapping
containment — undecidable with comparisons (cf. Theorem 7.1(2) and the
XPath-containment landscape of Neven–Schwentick) — so this module takes
the classic certified-sound route of the mapping-composition literature
(Arenas–Pérez–Reutter–Riveros): decide subsumption exactly where the
fragment permits a small witness, and stay silent (Unknown-safe)
everywhere else.

The witness is a **pattern homomorphism** pair.  ``std_j`` subsumes
``std_i`` when

1. there is a homomorphism ``h₁ : source(j) → source(i)`` — every tree
   match of ``source(i)`` composes with ``h₁`` into a match of
   ``source(j)``, so ``j`` fires whenever ``i`` does, with the variable
   translation ``σ : Var(source(j)) → Term(source(i))`` read off the
   attribute slots; and
2. there is a homomorphism ``h₂ : target(i) → target(j)`` compatible
   with ``σ`` — every target match that satisfies ``j``'s requirement
   under ``σ∘μ`` also satisfies ``i``'s requirement under ``μ``.

Homomorphisms map child edges to child edges, descendant items to
strictly deeper nodes, next-sibling chains to adjacent positions joined
by ``->`` and following-sibling chains to strictly ordered positions of
one sequence; a wildcard node absorbs any label, but a labelled node
can only map to the same label.  Soundness holds over *all* trees, so
it holds over the conforming ones for free; no DTD reasoning is needed.

Stds with comparisons or Skolem terms are skipped entirely — there the
implication is no longer a homomorphism problem, and a wrong "redundant"
verdict would license a semantics-changing removal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.mappings.std import STD
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.values import Const, SkolemTerm, Term, Var

if TYPE_CHECKING:
    from repro.mappings.mapping import SchemaMapping

#: Variable translation read off a source-side homomorphism:
#: each variable of the subsuming std's source maps to the term
#: (variable or constant) of the subsumed std's source it lands on.
Translation = dict[Var, Term]


@dataclass(frozen=True)
class Subsumption:
    """A certified subsumption: ``mapping.stds[by]`` subsumes
    ``mapping.stds[index]`` (so std *index* is redundant)."""

    index: int
    by: int
    translation: tuple[tuple[str, str], ...]
    duplicate: bool

    def describe(self) -> str:
        kind = "a variable-renamed duplicate of" if self.duplicate else "subsumed by"
        return f"std {self.index} is {kind} std {self.by}"


def _has_skolem(std: STD) -> bool:
    return any(
        isinstance(term, SkolemTerm)
        for pattern in (std.source, std.target)
        for term in pattern.terms()
    )


def _eligible(std: STD) -> bool:
    """Only comparison- and Skolem-free stds enter the exact check."""
    return (
        not std.source_conditions
        and not std.target_conditions
        and not _has_skolem(std)
    )


# ---------------------------------------------------------------------------
# pattern-to-pattern homomorphisms
# ---------------------------------------------------------------------------


def _label_ok(weaker: Pattern, stronger: Pattern) -> bool:
    """May a node of the weaker pattern sit on this stronger node?

    The stronger pattern guarantees the tree node's label only when it
    is itself concrete; a wildcard on the weaker side absorbs anything.
    """
    if weaker.label == WILDCARD:
        return True
    return weaker.label == stronger.label


def _bind_vars(
    weaker: Pattern,
    stronger: Pattern,
    binding: Translation,
    *,
    source_side: bool,
) -> Translation | None:
    """Extend *binding* with the attribute-slot correspondence, or None.

    On the **source side** the weaker pattern is the subsuming std's
    source mapped into the subsumed std's source: every slot the weaker
    pattern constrains must be *guaranteed* by the stronger one, so the
    stronger node must constrain the same slots and the term mapping
    ``weaker var → stronger term`` must be functional (a repeated weaker
    variable demands an equality the stronger pattern only guarantees by
    giving it the same term every time) and constants must agree
    literally.

    On the **target side** the roles flip (the subsumed std's target is
    mapped into the subsuming std's target) but the slot discipline is
    the same; the caller separately checks the translation compatibility
    of shared variables.
    """
    if weaker.vars is None:
        return binding
    if stronger.vars is None or len(weaker.vars) != len(stronger.vars):
        return None
    extended = dict(binding)
    for weak_term, strong_term in zip(weaker.vars, stronger.vars):
        if isinstance(weak_term, Const):
            if not (isinstance(strong_term, Const)
                    and strong_term.value == weak_term.value):
                return None
            continue
        if not isinstance(weak_term, Var):
            return None  # Skolem terms never enter (``_eligible``)
        if not isinstance(strong_term, (Var, Const)):
            return None
        known = extended.get(weak_term)
        if known is None:
            extended[weak_term] = strong_term
        elif known != strong_term:
            return None
    del source_side  # same discipline both ways; kept for call-site clarity
    return extended


def _child_elements(pattern: Pattern) -> list[tuple[int, int, Pattern]]:
    """The direct children of a pattern node: (item, position, child)."""
    children = []
    for item_index, item in enumerate(pattern.items):
        if isinstance(item, Sequence):
            for position, element in enumerate(item.elements):
                children.append((item_index, position, element))
    return children


def _proper_descendants(pattern: Pattern) -> Iterator[Pattern]:
    """Every pattern node strictly below *pattern* (any edge depth)."""
    for item in pattern.items:
        elements = (
            (item.pattern,) if isinstance(item, Descendant) else item.elements
        )
        for element in elements:
            yield element
            yield from _proper_descendants(element)


def _embed(
    weaker: Pattern,
    stronger: Pattern,
    binding: Translation,
    *,
    source_side: bool,
) -> Iterator[Translation]:
    """All homomorphisms of *weaker* into *stronger* rooted here.

    Yields every consistent variable translation; patterns in lint
    workloads are small, so the backtracking search is cheap.
    """
    if not _label_ok(weaker, stronger):
        return
    bound = _bind_vars(weaker, stronger, binding, source_side=source_side)
    if bound is None:
        return
    yield from _embed_items(weaker, stronger, 0, bound, source_side=source_side)


def _embed_items(
    weaker: Pattern,
    stronger: Pattern,
    item_index: int,
    binding: Translation,
    *,
    source_side: bool,
) -> Iterator[Translation]:
    if item_index >= len(weaker.items):
        yield binding
        return
    item = weaker.items[item_index]
    if isinstance(item, Descendant):
        # ``//p`` is satisfied by any strictly deeper stronger node:
        # every pattern edge of the stronger side forces depth >= 1.
        for below in _proper_descendants(stronger):
            for bound in _embed(
                item.pattern, below, binding, source_side=source_side
            ):
                yield from _embed_items(
                    weaker, stronger, item_index + 1, bound,
                    source_side=source_side,
                )
        return
    assert isinstance(item, Sequence)
    children = _child_elements(stronger)
    yield from _embed_sequence(
        weaker, stronger, item, 0, None, children, binding, item_index,
        source_side=source_side,
    )


def _embed_sequence(
    weaker: Pattern,
    stronger: Pattern,
    sequence: Sequence,
    element_index: int,
    previous: tuple[int, int] | None,
    children: list[tuple[int, int, Pattern]],
    binding: Translation,
    item_index: int,
    *,
    source_side: bool,
) -> Iterator[Translation]:
    """Place ``sequence.elements[element_index:]`` among the stronger
    pattern's direct children, honouring the sibling connectors."""
    if element_index >= len(sequence.elements):
        yield from _embed_items(
            weaker, stronger, item_index + 1, binding, source_side=source_side
        )
        return
    element = sequence.elements[element_index]
    connector = (
        None if element_index == 0
        else sequence.connectors[element_index - 1]
    )
    for slot_item, slot_position, child in children:
        if previous is not None:
            prev_item, prev_position = previous
            if slot_item != prev_item:
                continue  # sibling order only holds inside one sequence
            if connector == "next":
                # adjacency is only guaranteed across a ``->`` connector
                if slot_position != prev_position + 1:
                    continue
                strong_item = stronger.items[slot_item]
                assert isinstance(strong_item, Sequence)
                if strong_item.connectors[prev_position] != "next":
                    continue
            else:  # "following": any strictly later position of the chain
                if slot_position <= prev_position:
                    continue
        for bound in _embed(element, child, binding, source_side=source_side):
            yield from _embed_sequence(
                weaker, stronger, sequence, element_index + 1,
                (slot_item, slot_position), children, bound, item_index,
                source_side=source_side,
            )


# ---------------------------------------------------------------------------
# std subsumption
# ---------------------------------------------------------------------------


def _target_compatible(
    subsumed: STD, subsuming: STD, translation: Translation
) -> bool:
    """Is there an ``h₂ : target(subsumed) → target(subsuming)`` whose
    value discipline is compatible with the source translation?

    A shared variable ``x`` of the subsumed std must land on a variable
    ``y`` of the subsuming std with ``σ(y) = x`` (then ``y``'s witnessed
    value *is* ``x``'s value); an existential variable may land on any
    term as long as all its occurrences land on the same one; constants
    must match literally.  ``_bind_vars`` enforces exactly the
    functional-binding part of this, so it suffices to post-filter the
    bindings it yields.
    """
    shared = set(subsumed.shared_variables())
    inverse: dict[Term, Var] = {}
    for var, term in translation.items():
        inverse.setdefault(term, var)
    for bound in _embed(
        subsumed.target, subsuming.target, {}, source_side=False
    ):
        ok = True
        for var, term in bound.items():
            if var in shared:
                # must read back the very value the subsumed std saw
                if not (isinstance(term, Var) and translation.get(term) == var):
                    ok = False
                    break
        if ok:
            return True
    return False


def subsumes(subsuming: STD, subsumed: STD) -> Translation | None:
    """Does *subsuming* make *subsumed* redundant?  Certificate or None.

    Sound and Unknown-safe: ``None`` means "no homomorphism certificate
    found", never "not redundant".  Both stds must be comparison- and
    Skolem-free (the caller's job, re-checked here).
    """
    if not (_eligible(subsuming) and _eligible(subsumed)):
        return None
    for translation in _embed(
        subsuming.source, subsumed.source, {}, source_side=True
    ):
        if _target_compatible(subsumed, subsuming, translation):
            return translation
    return None


def _canonical(std: STD) -> STD:
    """Variables renamed to first-occurrence order (duplicate detection)."""
    renaming: dict[Var, Var] = {}

    def rename(pattern: Pattern) -> Pattern:
        for term in pattern.terms():
            if isinstance(term, Var) and term not in renaming:
                renaming[term] = Var(f"v{len(renaming)}")
        return pattern.rename_variables(renaming)

    source = rename(std.source)
    target = rename(std.target)
    return STD(source, target, std.source_conditions, std.target_conditions)


def find_redundancies(mapping: "SchemaMapping") -> list[Subsumption]:
    """All certified redundancies of a mapping, deterministically ordered.

    Duplicates (equal up to variable renaming) are reported against the
    *earlier* copy; proper subsumptions report the subsumed std, and a
    mutually-subsumed pair without syntactic equality reports only the
    later index, so removing every reported std is always safe.
    """
    stds = mapping.stds
    eligible = [_eligible(std) for std in stds]
    canonical = [
        _canonical(std) if ok else None for std, ok in zip(stds, eligible)
    ]
    results: list[Subsumption] = []
    redundant: set[int] = set()
    for index in range(len(stds)):
        if not eligible[index] or index in redundant:
            continue
        for other in range(len(stds)):
            if other == index or not eligible[other] or other in redundant:
                continue
            if canonical[index] == canonical[other]:
                if other < index:
                    results.append(Subsumption(index, other, (), True))
                    redundant.add(index)
                    break
                continue
            translation = subsumes(stds[other], stds[index])
            if translation is None:
                continue
            mutual = subsumes(stds[index], stds[other]) is not None
            if mutual and other > index:
                continue  # the later index of a mutual pair is reported
            results.append(
                Subsumption(
                    index,
                    other,
                    tuple(sorted(
                        (var.name, str(term)) for var, term in translation.items()
                    )),
                    False,
                )
            )
            redundant.add(index)
            break
    results.sort(key=lambda s: (s.index, s.by))
    return results
