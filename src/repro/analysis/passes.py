"""The linter's analysis passes.

Each pass is a pure function ``(mapping, context) -> list[Diagnostic]``
over a :class:`~repro.mappings.mapping.SchemaMapping`:

* :func:`fragment_pass` — ``SM0xx``: the ``SM(σ)`` fragment and the
  predicted Figure 1–2 cell per problem kind (via
  :mod:`repro.analysis.fragment`, the same predicates the engine routes
  with);
* :func:`dtd_pass` — ``SM1xx``: nested-relational / strictly
  nested-relational / recursion classification and DTD satisfiability;
* :func:`hygiene_pass` — ``SM2xx``: trivial inconsistencies (labels
  outside the alphabet, arity mismatches, root conflicts), dead stds
  (source pattern unsatisfiable under the source DTD), unsafe stds
  (target pattern unsatisfiable under the target DTD), and variable
  hygiene (unused and unbound variables, statically false comparisons);
* :func:`composition_pass` — ``SM3xx``: the Theorem 8.2 closure
  preconditions, with one diagnostic per broken one.

Passes never run a decision procedure over the *mapping*; the only
automata work is per-pattern satisfiability (Lemma 4.1), which is what
makes lint orders of magnitude cheaper than ``solve`` (see
``benchmarks/bench_lint.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis import fragment as frag
from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.engine.cache import dtd_classification
from repro.errors import BoundExceededError
from repro.mappings.std import STD, Comparison
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.patterns.features import axes_of
from repro.values import Const, SkolemTerm, Var

if TYPE_CHECKING:
    from repro.engine.budget import ExecutionContext
    from repro.mappings.mapping import SchemaMapping
    from repro.patterns.matching import PatternEngine
    from repro.xmlmodel.dtd import DTD
    from repro.xmlmodel.tree import TreeNode


# ---------------------------------------------------------------------------
# SM0xx: fragment classification and cell prediction
# ---------------------------------------------------------------------------

#: Diagnostic code per predicted problem kind.
_CELL_CODES = {"CONS": "SM002", "ABSCONS": "SM003", "MEMBERSHIP": "SM004"}


def fragment_pass(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> list[Diagnostic]:
    """``SM0xx``: fragment + predicted complexity cells (Figures 1–2)."""
    diagnostics: list[Diagnostic] = []
    signature = mapping.signature()
    diagnostics.append(
        Diagnostic(
            "SM001", Severity.INFO,
            f"mapping is in the fragment {signature}",
            data=(("fragment", str(signature)),
                  ("features", tuple(sorted(signature.features)))),
        )
    )
    predictions = [
        frag.predict_consistency(mapping, context),
        frag.predict_abscons(mapping, context),
        frag.predict_membership(mapping),
    ]
    for prediction in predictions:
        diagnostics.append(
            Diagnostic(
                _CELL_CODES[prediction.problem], Severity.INFO,
                prediction.describe(),
                data=(("problem", prediction.problem),
                      ("algorithm", prediction.algorithm),
                      ("complexity", prediction.complexity),
                      ("exact", prediction.exact)),
            )
        )
    conscomp = frag.predict_composition_consistency((mapping,))
    composable = frag.in_composable_class(mapping)
    diagnostics.append(
        Diagnostic(
            "SM005", Severity.INFO,
            f"as a composition stage: {conscomp.describe()}; "
            + ("inside" if composable else "outside")
            + " the composition-closed class (Theorem 8.2)",
            data=(("algorithm", conscomp.algorithm),
                  ("exact", conscomp.exact),
                  ("composable", composable)),
        )
    )
    cons, abscons = predictions[0], predictions[1]
    if not cons.exact:
        diagnostics.append(
            Diagnostic(
                "SM010", Severity.WARNING,
                "CONS is undecidable for this fragment "
                f"({cons.fragment}): only the sound bounded witness "
                "search applies, and a clean run proves nothing",
                data=(("algorithm", cons.algorithm),),
            )
        )
    if not abscons.exact:
        diagnostics.append(
            Diagnostic(
                "SM011", Severity.WARNING,
                "ABSCONS falls outside every exact class: bounded "
                "refutation only (the general EXPSPACE construction is "
                "unpublished)",
                data=(("algorithm", abscons.algorithm),),
            )
        )
    if not conscomp.exact:
        diagnostics.append(
            Diagnostic(
                "SM012", Severity.WARNING,
                "composition problems over this mapping leave the exact "
                "classes (comparisons/constants in the chain): bounded "
                "searches only",
                data=(("algorithm", conscomp.algorithm),),
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# SM1xx: DTD classification
# ---------------------------------------------------------------------------


def _describe_dtd(dtd: "DTD", context: "ExecutionContext | None") -> tuple[str, tuple]:
    classification = dtd_classification(dtd, context)
    facts = []
    if classification.strictly_nested_relational:
        facts.append("strictly nested-relational")
    elif classification.nested_relational:
        facts.append("nested-relational")
    else:
        facts.append("not nested-relational")
    facts.append("recursive" if classification.recursive else "non-recursive")
    data = (
        ("root", dtd.root),
        ("labels", len(dtd.labels)),
        ("nested_relational", classification.nested_relational),
        ("strictly_nested_relational", classification.strictly_nested_relational),
        ("recursive", classification.recursive),
    )
    return ", ".join(facts), data


def dtd_pass(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> list[Diagnostic]:
    """``SM1xx``: DTD classification and satisfiability."""
    diagnostics: list[Diagnostic] = []
    sides = (
        ("source", mapping.source_dtd, "SM101", "SM110"),
        ("target", mapping.target_dtd, "SM102", "SM111"),
    )
    for side, dtd, info_code, unsat_code in sides:
        summary, data = _describe_dtd(dtd, context)
        diagnostics.append(
            Diagnostic(
                info_code, Severity.INFO,
                f"{side} DTD (root {dtd.root!r}): {summary}",
                SourceLocation(side=side),
                data=data,
            )
        )
        if not dtd.is_satisfiable():
            consequence = (
                "every std is dead and the mapping is vacuously consistent"
                if side == "source"
                else "no source tree can have a solution"
            )
            diagnostics.append(
                Diagnostic(
                    unsat_code, Severity.ERROR,
                    f"no tree conforms to the {side} DTD: {consequence}",
                    SourceLocation(side=side),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# SM2xx: pattern hygiene
# ---------------------------------------------------------------------------


def _walk_with_paths(pattern: Pattern, prefix: str = "") -> Iterator[tuple[str, Pattern]]:
    """Yield ``(label-path, node)`` for every pattern node."""
    path = prefix + pattern.label
    yield path, pattern
    for item in pattern.items:
        if isinstance(item, Descendant):
            yield from _walk_with_paths(item.pattern, path + "//")
        else:
            assert isinstance(item, Sequence)
            for element in item.elements:
                yield from _walk_with_paths(element, path + "/")


def _structural_checks(
    std_index: int, side: str, pattern: Pattern, dtd: "DTD"
) -> list[Diagnostic]:
    """SM201/SM202/SM203 for one pattern against its DTD."""
    diagnostics: list[Diagnostic] = []
    if pattern.label != WILDCARD and pattern.label != dtd.root:
        diagnostics.append(
            Diagnostic(
                "SM203", Severity.ERROR,
                f"pattern root {pattern.label!r} is not the {side} DTD "
                f"root {dtd.root!r}: the pattern can never match",
                SourceLocation(std_index, side, pattern.label),
                data=(("label", pattern.label), ("root", dtd.root)),
            )
        )
    arities = {dtd.arity(label) for label in dtd.labels}
    for path, node in _walk_with_paths(pattern):
        if node.label == WILDCARD:
            if node.vars is not None and len(node.vars) not in arities:
                diagnostics.append(
                    Diagnostic(
                        "SM202", Severity.ERROR,
                        f"wildcard constrains {len(node.vars)} attribute(s) "
                        f"but no {side}-DTD label has that arity",
                        SourceLocation(std_index, side, path),
                        data=(("arity", len(node.vars)),),
                    )
                )
            continue
        if node.label not in dtd.labels:
            diagnostics.append(
                Diagnostic(
                    "SM201", Severity.ERROR,
                    f"label {node.label!r} does not occur in the {side} "
                    "DTD's alphabet",
                    SourceLocation(std_index, side, path),
                    data=(("label", node.label),),
                )
            )
            continue
        if node.vars is not None and len(node.vars) != dtd.arity(node.label):
            diagnostics.append(
                Diagnostic(
                    "SM202", Severity.ERROR,
                    f"{node.label!r} carries {dtd.arity(node.label)} "
                    f"attribute(s) in the {side} DTD, but the pattern "
                    f"constrains {len(node.vars)}",
                    SourceLocation(std_index, side, path),
                    data=(("label", node.label),
                          ("pattern_arity", len(node.vars)),
                          ("dtd_arity", dtd.arity(node.label))),
                )
            )
    return diagnostics


def _satisfiability_pattern(pattern: Pattern) -> Pattern:
    """The pattern whose satisfiability we test.

    Skolem terms (legal on target sides) are outside Lemma 4.1; dropping
    *all* attribute terms keeps the check sound — if the stripped pattern
    is unsatisfiable, the original certainly is.
    """
    if any(isinstance(term, SkolemTerm) for term in pattern.terms()):
        return pattern.strip_values()
    return pattern


#: Caps for the quick witness probe: total conforming trees examined and
#: the largest tree size tried before falling back to the exact check.
_QUICK_WITNESS_TREES = 512
_QUICK_WITNESS_MAX_SIZE = 16


def _pattern_as_tree(dtd: "DTD", pattern: Pattern) -> "TreeNode | None":
    """The identity-embedding candidate witness, or None (wildcards).

    Laying the pattern out literally — sequence elements as adjacent
    siblings, a descendant as a direct child, constants as values and one
    fresh value everywhere else — yields a tree the pattern matches by
    construction.  If that tree happens to conform to the DTD,
    satisfiability is certified in O(pattern) with no enumeration at all;
    if not (required siblings missing, arity off), the caller falls back
    to the enumerated probe.
    """
    from repro.patterns.satisfiability import FRESH
    from repro.xmlmodel.tree import TreeNode

    if pattern.label == WILDCARD:
        return None
    if pattern.vars is None:
        attrs = (FRESH,) * dtd.arity(pattern.label)
    else:
        attrs = tuple(
            term.value if isinstance(term, Const) else FRESH
            for term in pattern.vars
        )
    children = []
    for item in pattern.items:
        elements = (
            (item.pattern,) if isinstance(item, Descendant) else item.elements
        )
        for element in elements:
            child = _pattern_as_tree(dtd, element)
            if child is None:
                return None
            children.append(child)
    return TreeNode(pattern.label, attrs, tuple(children))


def _decorate_fresh(dtd: "DTD", node: "TreeNode") -> "TreeNode":
    """Attach the single fresh value to every attribute slot."""
    from repro.patterns.satisfiability import FRESH
    from repro.xmlmodel.tree import TreeNode

    return TreeNode(
        node.label,
        (FRESH,) * dtd.arity(node.label),
        tuple(_decorate_fresh(dtd, child) for child in node.children),
    )


class _WitnessProbe:
    """Small conforming trees of one DTD, shared across a hygiene pass.

    :meth:`certify` is sound one-way: True means a witness was found,
    False means nothing — the exact automata check still has the last
    word.  Decorating every attribute slot with one fresh value is
    complete for constant-free patterns (the same collapse argument as
    the structural layer of :mod:`repro.patterns.satisfiability`), so
    patterns with constants skip straight to the exact check.  Trees and
    their match engines are materialized lazily, smallest first, and kept
    for the next std — the probe is what keeps the linter an order of
    magnitude cheaper than solving: most stds have a small witness, and
    only genuinely dead (or huge-witness) patterns pay for automata.
    """

    def __init__(self, dtd: "DTD") -> None:
        from repro.verification.enumeration import LabelTreeEnumerator

        self.dtd = dtd
        self._enumerator = LabelTreeEnumerator(dtd)
        self._engines: list[tuple[frozenset[str], "PatternEngine"]] = []
        self._next_size = 1
        self._remaining = _QUICK_WITNESS_TREES

    def certify(self, pattern: Pattern) -> bool:
        from repro.patterns.matching import engine_for

        candidate = _pattern_as_tree(self.dtd, pattern)
        if candidate is not None and self.dtd.conforms(candidate):
            return True
        if any(isinstance(term, Const) for term in pattern.terms()):
            return False
        needed = pattern.labels_used()

        def hit(entries: "list[tuple[frozenset[str], PatternEngine]]") -> bool:
            # a tree missing one of the pattern's labels can never match;
            # the frozenset check keeps the scan cheap across many stds
            return any(
                needed <= labels and engine.exists_at_root(pattern)
                for labels, engine in entries
            )

        if hit(self._engines):
            return True
        while self._next_size <= _QUICK_WITNESS_MAX_SIZE and self._remaining > 0:
            checked = len(self._engines)
            for skeleton in self._enumerator.trees_of(
                self.dtd.root, self._next_size
            ):
                if self._remaining <= 0:
                    break
                self._remaining -= 1
                tree = _decorate_fresh(self.dtd, skeleton)
                labels = frozenset(node.label for node in tree.nodes())
                self._engines.append((labels, engine_for(tree)))
            self._next_size += 1
            if hit(self._engines[checked:]):
                return True
        return False


def _dead_and_unsafe(
    std_index: int, std: STD, mapping: "SchemaMapping",
    structural_errors: set[str], context: "ExecutionContext | None",
    probes: "dict[str, _WitnessProbe] | None" = None,
) -> list[Diagnostic]:
    """SM204/SM205: per-side pattern satisfiability (Lemma 4.1).

    Skipped for a side that already has structural errors — those
    explain the unsatisfiability more precisely.
    """
    from repro.patterns.satisfiability import satisfying_tree

    if probes is None:
        probes = {
            "source": _WitnessProbe(mapping.source_dtd),
            "target": _WitnessProbe(mapping.target_dtd),
        }
    diagnostics: list[Diagnostic] = []
    sides = (
        ("source", std.source, mapping.source_dtd, "SM204",
         "the std can never fire"),
        ("target", std.target, mapping.target_dtd, "SM205",
         "once the std fires, the mapping is inconsistent"),
    )
    for side, pattern, dtd, code, consequence in sides:
        if side in structural_errors:
            continue
        probe = _satisfiability_pattern(pattern)
        if probes[side].certify(probe):
            continue  # small witness found: the std can fire
        try:
            witness = satisfying_tree(dtd, probe, context)
        except BoundExceededError:
            continue  # budget exhausted: stay silent rather than guess
        if witness is None:
            diagnostics.append(
                Diagnostic(
                    code, Severity.ERROR,
                    f"{side} pattern is unsatisfiable under the {side} "
                    f"DTD: {consequence}",
                    SourceLocation(std_index, side),
                )
            )
    return diagnostics


def _term_variables(term: object) -> Iterator[Var]:
    if isinstance(term, Var):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.args:
            yield from _term_variables(arg)


def _comparison_statically_false(comparison: Comparison) -> bool:
    left, right = comparison.left, comparison.right
    if isinstance(left, Const) and isinstance(right, Const):
        truth = (left.value == right.value) if comparison.op == "=" else (
            left.value != right.value
        )
        return not truth
    if comparison.op == "!=" and isinstance(left, Var) and left == right:
        return True
    return False


def _variable_hygiene(std_index: int, std: STD) -> list[Diagnostic]:
    """SM206–SM210 for one std."""
    diagnostics: list[Diagnostic] = []
    source_pattern_vars = set(std.source.variables())
    target_pattern_vars = set(std.target.variables())

    # SM207: source comparisons over variables the source pattern never binds
    for comparison in std.source_conditions:
        unbound = sorted(
            {v.name for v in comparison.variables()} - {v.name for v in source_pattern_vars}
        )
        if unbound:
            diagnostics.append(
                Diagnostic(
                    "SM207", Severity.ERROR,
                    f"source comparison {comparison} mentions "
                    f"{', '.join(unbound)} which the source pattern never "
                    "binds: the condition can never be evaluated",
                    SourceLocation(std_index, "source"),
                    data=(("variables", tuple(unbound)),),
                )
            )
    # SM208: target comparisons over variables bound on neither side
    bound_for_target = {v.name for v in source_pattern_vars | target_pattern_vars}
    for comparison in std.target_conditions:
        unbound = sorted({v.name for v in comparison.variables()} - bound_for_target)
        if unbound:
            diagnostics.append(
                Diagnostic(
                    "SM208", Severity.ERROR,
                    f"target comparison {comparison} mentions "
                    f"{', '.join(unbound)} which neither side binds",
                    SourceLocation(std_index, "target"),
                    data=(("variables", tuple(unbound)),),
                )
            )
    # SM206: source variables bound once and never used anywhere else
    occurrence_count: dict[Var, int] = {}
    for term in std.source.terms():
        for var in _term_variables(term):
            occurrence_count[var] = occurrence_count.get(var, 0) + 1
    used_elsewhere: set[Var] = set(target_pattern_vars)
    for comparison in std.source_conditions + std.target_conditions:
        used_elsewhere.update(comparison.variables())
    unused = sorted(
        var.name
        for var, count in occurrence_count.items()
        if count == 1 and var not in used_elsewhere
    )
    if unused:
        diagnostics.append(
            Diagnostic(
                "SM206", Severity.WARNING,
                f"source variable(s) {', '.join(unused)} are bound but "
                "never used in the target side or any comparison",
                SourceLocation(std_index, "source"),
                data=(("variables", tuple(unused)),),
            )
        )
    # SM209: existential target variables (informational)
    existential = std.existential_variables()
    if existential:
        names = ", ".join(v.name for v in existential)
        diagnostics.append(
            Diagnostic(
                "SM209", Severity.INFO,
                f"target-only variable(s) {names} are existential: "
                "solutions may pick their values freely",
                SourceLocation(std_index, "target"),
                data=(("variables", tuple(v.name for v in existential)),),
            )
        )
    # SM210: comparisons false under every assignment
    for side, conditions in (
        ("source", std.source_conditions), ("target", std.target_conditions)
    ):
        for comparison in conditions:
            if _comparison_statically_false(comparison):
                consequence = (
                    "the std can never fire" if side == "source"
                    else "the std can never be satisfied"
                )
                diagnostics.append(
                    Diagnostic(
                        "SM210", Severity.WARNING,
                        f"{side} comparison {comparison} is false under "
                        f"every assignment: {consequence}",
                        SourceLocation(std_index, side),
                        data=(("comparison", str(comparison)),),
                    )
                )
    return diagnostics


def hygiene_pass(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> list[Diagnostic]:
    """``SM2xx``: trivial inconsistencies, dead/unsafe stds, variables."""
    diagnostics: list[Diagnostic] = []
    probes = {
        "source": _WitnessProbe(mapping.source_dtd),
        "target": _WitnessProbe(mapping.target_dtd),
    }
    for std_index, std in enumerate(mapping.stds):
        structural: list[Diagnostic] = []
        structural += _structural_checks(
            std_index, "source", std.source, mapping.source_dtd
        )
        structural += _structural_checks(
            std_index, "target", std.target, mapping.target_dtd
        )
        diagnostics += structural
        errored_sides = {
            d.location.side for d in structural if d.severity is Severity.ERROR
        }
        diagnostics += _dead_and_unsafe(
            std_index, std, mapping, errored_sides, context, probes
        )
        diagnostics += _variable_hygiene(std_index, std)
    return diagnostics


# ---------------------------------------------------------------------------
# SM3xx: composition closure (Theorem 8.2)
# ---------------------------------------------------------------------------


def composition_pass(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> list[Diagnostic]:
    """``SM3xx``: one diagnostic per broken Theorem 8.2 precondition."""
    diagnostics: list[Diagnostic] = []
    for std_index, std in enumerate(mapping.stds):
        for side, pattern in (("source", std.source), ("target", std.target)):
            axes = axes_of(pattern)
            broken = []
            if axes.wildcard:
                broken.append("wildcard")
            if axes.descendant:
                broken.append("descendant")
            if axes.next_sibling:
                broken.append("next-sibling")
            if axes.following_sibling:
                broken.append("following-sibling")
            if broken:
                diagnostics.append(
                    Diagnostic(
                        "SM301", Severity.WARNING,
                        f"{side} pattern is not fully specified "
                        f"(grammar (5)): uses {', '.join(broken)} — "
                        "composition closure (Theorem 8.2) is lost",
                        SourceLocation(std_index, side),
                        data=(("features", tuple(broken)),),
                    )
                )
    for side, dtd in (
        ("source", mapping.source_dtd), ("target", mapping.target_dtd)
    ):
        classification = dtd_classification(dtd, context)
        if not classification.strictly_nested_relational:
            detail = (
                "attributes on non-starred element types"
                if classification.nested_relational
                else "productions outside the nested-relational shape"
            )
            diagnostics.append(
                Diagnostic(
                    "SM302", Severity.WARNING,
                    f"{side} DTD is not strictly nested-relational "
                    f"({detail}): composition closure (Theorem 8.2) is lost",
                    SourceLocation(side=side),
                )
            )
    from repro.patterns.features import INEQUALITY

    if INEQUALITY in mapping.signature().features:
        diagnostics.append(
            Diagnostic(
                "SM303", Severity.WARNING,
                "inequalities (≠) are outside the composition-closed "
                "class (Theorem 8.2)",
            )
        )
    if frag.in_composable_class(mapping):
        diagnostics.append(
            Diagnostic(
                "SM304", Severity.INFO,
                "mapping satisfies every Theorem 8.2 precondition "
                "(strictly nested-relational DTDs, fully-specified stds, "
                "equality only): compositions stay in the class",
            )
        )
    if frag.uses_skolem_functions(mapping):
        names = sorted(
            name for std in mapping.stds for name in std.skolem_functions()
        )
        diagnostics.append(
            Diagnostic(
                "SM305", Severity.INFO,
                f"stds use Skolem function(s) {', '.join(names)} "
                "(Section 8 semantics)",
                data=(("functions", tuple(names)),),
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# SM31x: redundancy (std subsumption)
# ---------------------------------------------------------------------------


def redundancy_pass(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> list[Diagnostic]:
    """``SM31x``: stds certified redundant by a pattern homomorphism.

    Exact only for comparison- and Skolem-free std pairs; everywhere
    else the pass stays silent (Unknown-safe) — see
    :mod:`repro.analysis.redundancy`.
    """
    from repro.analysis.redundancy import find_redundancies

    del context  # purely syntactic: no budgets or caches involved
    diagnostics: list[Diagnostic] = []
    for subsumption in find_redundancies(mapping):
        code = "SM310" if subsumption.duplicate else "SM311"
        diagnostics.append(
            Diagnostic(
                code, Severity.WARNING,
                f"{subsumption.describe()}: removing it preserves the "
                "mapping's semantics",
                SourceLocation(subsumption.index),
                data=(("subsumed_by", subsumption.by),
                      ("translation", subsumption.translation)),
            )
        )
    return diagnostics


#: The pass registry, in execution order.
PASSES: tuple[tuple[str, object], ...] = (
    ("fragment", fragment_pass),
    ("dtd", dtd_pass),
    ("hygiene", hygiene_pass),
    ("composition", composition_pass),
    ("redundancy", redundancy_pass),
)


def diagnostics_for_problem(
    problem: object, context: "ExecutionContext | None" = None
) -> tuple[Diagnostic, ...]:
    """The classifier diagnostics ``engine.solve`` attaches to its report.

    Fragment-level only (``SM0xx``): the full hygiene passes run pattern
    satisfiability and are the CLI's job, not a per-solve cost.
    """
    from repro.engine.problems import (
        AbsoluteConsistencyProblem,
        CompositionConsistencyProblem,
        CompositionMembershipProblem,
        ConsistencyProblem,
        MembershipProblem,
    )

    if isinstance(
        problem,
        (ConsistencyProblem, AbsoluteConsistencyProblem, MembershipProblem),
    ):
        return tuple(fragment_pass(problem.mapping, context))
    if isinstance(problem, CompositionMembershipProblem):
        prediction = frag.predict_composition_membership(problem.m12, problem.m23)
    elif isinstance(problem, CompositionConsistencyProblem):
        prediction = frag.predict_composition_consistency(tuple(problem.mappings))
    else:  # satisfiability / separation: no mapping to classify
        return ()
    diagnostics = [
        Diagnostic(
            "SM005", Severity.INFO, prediction.describe(),
            data=(("problem", prediction.problem),
                  ("algorithm", prediction.algorithm),
                  ("complexity", prediction.complexity),
                  ("exact", prediction.exact)),
        )
    ]
    if not prediction.exact:
        diagnostics.append(
            Diagnostic(
                "SM012", Severity.WARNING,
                "this composition problem leaves the exact classes "
                "(comparisons/constants in the chain): bounded search only",
                data=(("algorithm", prediction.algorithm),),
            )
        )
    return tuple(diagnostics)
