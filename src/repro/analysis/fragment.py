"""Fragment classification and Figure 1–2 complexity-cell prediction.

``engine.solve`` selects an algorithm from the problem type plus the
mapping's ``SM(σ)`` fragment and DTD classification.  This module makes
that selection *static*: :func:`predict_for_problem` (and the per-problem
``predict_*`` functions) compute, without running any solver, which
algorithm the engine will route to, the paper's complexity cell for it,
and whether the route is exact or a sound-but-bounded approximation.

The predicates here are the single source of truth — the engine's
routing functions consult them (see ``repro.engine.core``), so the
linter's predictions cannot drift from the solver's behaviour.  The only
divergence left is dynamic: a route that *starts* exact can still
overflow a budget at run time and fall back (e.g. ``abscons-expansion``
exceeding its expansion limit), which no static analysis can foresee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.engine.cache import dtd_classification
from repro.patterns.ast import Descendant, Pattern, Sequence
from repro.patterns.features import HORIZONTAL, INEQUALITY, is_fully_specified
from repro.values import Const

if TYPE_CHECKING:
    from repro.engine.budget import ExecutionContext
    from repro.mappings.mapping import SchemaMapping


@dataclass(frozen=True)
class CellPrediction:
    """One predicted Figure 1–2 cell.

    ``algorithm`` is the engine route name (``cons-nested``,
    ``abscons-ptime``, ...), ``complexity`` the paper's cell for it, and
    ``exact`` whether the route decides the problem (False = a sound but
    incomplete bounded search, i.e. the undecidable / unpublished
    cells).  ``reason`` is the routing rationale the solve report shows.
    """

    problem: str
    fragment: str
    algorithm: str
    complexity: str
    exact: bool
    reason: str

    @property
    def decidable(self) -> bool:
        """Does the selected route decide the problem outright?"""
        return self.exact

    def describe(self) -> str:
        mode = "exact" if self.exact else "sound but bounded"
        return (
            f"{self.problem} in {self.fragment}: {self.algorithm} — "
            f"{self.complexity} ({mode})"
        )


# ---------------------------------------------------------------------------
# fragment predicates (Figure 1's row labels)
# ---------------------------------------------------------------------------


def uses_constants(mapping: "SchemaMapping") -> bool:
    """Does any pattern of the mapping mention a constant?"""
    return any(
        isinstance(term, Const)
        for std in mapping.stds
        for pattern in (std.source, std.target)
        for term in pattern.terms()
    )


def uses_skolem_functions(mapping: "SchemaMapping") -> bool:
    """Does any std use Skolem functions (Section 8 semantics)?"""
    return any(std.skolem_functions() for std in mapping.stds)


def nested_ptime_applicable(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> bool:
    """Is the Fact-5.1 PTIME consistency route applicable?

    Requires ``SM(⇓)`` (no horizontal axes, comparisons or constants)
    over nested-relational DTDs; the DTD classification is read through
    the compilation cache.
    """
    if mapping.uses_data_comparisons() or uses_constants(mapping):
        return False
    if mapping.signature().features & HORIZONTAL:
        return False
    return (
        dtd_classification(mapping.source_dtd, context).nested_relational
        and dtd_classification(mapping.target_dtd, context).nested_relational
    )


def is_sm0(mapping: "SchemaMapping") -> bool:
    """Value-free ``SM°``: no comparisons, no attribute formulae at all."""
    return all(
        not std.source_conditions
        and not std.target_conditions
        and all(sub.vars is None for sub in std.source.subpatterns())
        and all(sub.vars is None for sub in std.target.subpatterns())
        for std in mapping.stds
    )


def in_abscons_ptime_class(mapping: "SchemaMapping") -> bool:
    """The Theorem 6.3 class: SM(↓), fully specified, nested-relational."""
    return (
        not mapping.uses_data_comparisons()
        and mapping.is_fully_specified()
        and mapping.is_nested_relational()
        and not uses_constants(mapping)
    )


def _sources_expandable(mapping: "SchemaMapping") -> bool:
    """Can every source pattern be expanded to fully-specified form?

    Mirrors ``repro.consistency.expansion``: wildcard and descendant are
    handled, horizontal sibling order is not (every sequence must be a
    singleton).
    """

    def expandable(pattern: Pattern) -> bool:
        for item in pattern.items:
            if isinstance(item, Descendant):
                if not expandable(item.pattern):
                    return False
            else:
                assert isinstance(item, Sequence)
                if len(item.elements) != 1:
                    return False
                if not expandable(item.elements[0]):
                    return False
        return True

    return all(expandable(std.source) for std in mapping.stds)


def in_abscons_expansion_class(mapping: "SchemaMapping") -> bool:
    """The source-expansion route: ⇓-sources over nested-relational DTDs.

    Targets must be fully specified; sources may use wildcard and
    descendant (expanded away), but no horizontal order.  The run-time
    route can additionally overflow its expansion limit, which a static
    check cannot foresee.
    """
    return (
        not mapping.uses_data_comparisons()
        and not uses_constants(mapping)
        and mapping.is_nested_relational()
        and all(is_fully_specified(std.target) for std in mapping.stds)
        and _sources_expandable(mapping)
    )


def in_composable_class(mapping: "SchemaMapping") -> bool:
    """The Theorem 8.2 composition-closed class.

    Strictly nested-relational DTDs, fully-specified stds, equality only
    (mirrors ``SkolemMapping.check_composable_class``).
    """
    return (
        mapping.source_dtd.is_strictly_nested_relational()
        and mapping.target_dtd.is_strictly_nested_relational()
        and mapping.is_fully_specified()
        and INEQUALITY not in mapping.signature().features
    )


def chain_comparison_free(mappings: tuple["SchemaMapping", ...]) -> bool:
    """Is the whole chain inside SM(⇓,⇒) (no comparisons, no constants)?"""
    return all(
        not mapping.uses_data_comparisons() and not uses_constants(mapping)
        for mapping in mappings
    )


# ---------------------------------------------------------------------------
# per-problem cell prediction
# ---------------------------------------------------------------------------


def predict_consistency(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> CellPrediction:
    """The Figure 1 CONS cell the engine will route to."""
    fragment = str(mapping.signature())
    if not mapping.uses_data_comparisons() and not uses_constants(mapping):
        if nested_ptime_applicable(mapping, context):
            return CellPrediction(
                "CONS", fragment, "cons-nested", "PTIME (Fact 5.1)", True,
                "SM(⇓) over nested-relational DTDs: PTIME via the "
                "minimal tree (Fact 5.1)",
            )
        return CellPrediction(
            "CONS", fragment, "cons-automata",
            "EXPTIME-complete (Theorem 5.2)", True,
            "no data comparisons or constants: exact trigger-set "
            "automata (Theorem 5.2, EXPTIME)",
        )
    return CellPrediction(
        "CONS", fragment, "cons-bounded",
        "undecidable in general (Theorems 5.4/5.5)", False,
        "data comparisons or constants: sound bounded witness search "
        "only (Theorems 5.4/5.5)",
    )


def predict_abscons(
    mapping: "SchemaMapping", context: "ExecutionContext | None" = None
) -> CellPrediction:
    """The Figure 1 ABSCONS cell the engine will route to."""
    fragment = str(mapping.signature())
    if is_sm0(mapping):
        return CellPrediction(
            "ABSCONS", fragment, "abscons-sm0",
            "EXPTIME (Proposition 6.1)", True,
            "value-free SM° mapping: exact trigger-set coverage "
            "(Proposition 6.1)",
        )
    if in_abscons_ptime_class(mapping):
        return CellPrediction(
            "ABSCONS", fragment, "abscons-ptime",
            "PTIME (Theorem 6.3)", True,
            "nested-relational + fully specified: exact rigidity "
            "analysis (Theorem 6.3, PTIME)",
        )
    if in_abscons_expansion_class(mapping):
        return CellPrediction(
            "ABSCONS", fragment, "abscons-expansion",
            "NEXPTIME (source expansion + Theorem 6.3 analysis)", True,
            "⇓-sources over non-recursive DTDs: exact via "
            "source expansion + rigidity analysis",
        )
    return CellPrediction(
        "ABSCONS", fragment, "abscons-bounded",
        "EXPSPACE upper bound (Theorem 6.2), construction unpublished",
        False,
        "outside every exact class: sound bounded "
        "refutation (Theorem 6.2 gives EXPSPACE, construction unpublished)",
    )


def predict_membership(mapping: "SchemaMapping") -> CellPrediction:
    """The Figure 2 membership cell the engine will route to."""
    fragment = str(mapping.signature())
    if uses_skolem_functions(mapping):
        return CellPrediction(
            "MEMBERSHIP", fragment, "membership-skolem",
            "NP combined complexity (Section 8 valuations)", True,
            "Skolem stds: backtracking valuation of the shared "
            "unknowns (Section 8)",
        )
    return CellPrediction(
        "MEMBERSHIP", fragment, "membership",
        "PTIME data complexity, NP-complete combined (Theorem 4.4)", True,
        "plain stds: conformance plus per-obligation semi-joins "
        "(Definition 3.2)",
    )


def predict_composition_membership(
    m12: "SchemaMapping", m23: "SchemaMapping"
) -> CellPrediction:
    """The Figure 2 composition-membership cell the engine will route to."""
    fragment = f"{m12.signature()} ∘ {m23.signature()}"
    if in_composable_class(m12) and in_composable_class(m23):
        return CellPrediction(
            "COMPOSITION-MEMBERSHIP", fragment, "composition-exact",
            "NP combined complexity via the composed Skolem mapping "
            "(Theorem 8.2)", True,
            "Theorem 8.2 class: membership via the composed Skolem mapping",
        )
    return CellPrediction(
        "COMPOSITION-MEMBERSHIP", fragment, "composition-bounded",
        "NEXPTIME-complete combined complexity (Theorem 7.2); "
        "approximated by a bounded search", False,
        "outside the Theorem 8.2 class: bounded intermediate-tree "
        "search with the finite value abstraction (Section 7.2)",
    )


def predict_composition_consistency(
    mappings: tuple["SchemaMapping", ...],
) -> CellPrediction:
    """The CONSCOMP cell (Theorem 7.1) the engine will route to."""
    fragment = " ∘ ".join(str(mapping.signature()) for mapping in mappings)
    if chain_comparison_free(tuple(mappings)):
        return CellPrediction(
            "CONSCOMP", fragment, "conscomp-automata",
            "EXPTIME (Theorem 7.1(1))", True,
            "comparison-free chain: exact staged trigger-set chaining "
            "(Theorem 7.1(1), EXPTIME)",
        )
    return CellPrediction(
        "CONSCOMP", fragment, "conscomp-bounded",
        "undecidable (Theorem 7.1(2))", False,
        "comparisons or constants in the chain: sound bounded "
        "witness-chain search (the problem is undecidable, Theorem 7.1(2))",
    )


def predict_satisfiability() -> CellPrediction:
    return CellPrediction(
        "SAT", "patterns", "pattern-sat",
        "NP-complete (Lemma 4.1), decided exactly", True,
        "closure-automaton reachability with tag lifting (Lemma 4.1)",
    )


def predict_separation() -> CellPrediction:
    return CellPrediction(
        "SEPARATION", "patterns", "separation",
        "EXPTIME (Section 9)", True,
        "joint closure automaton over P+ ∪ P-: conforming root state "
        "containing P+ and avoiding P- (Section 9)",
    )


def predict_for_problem(
    problem: Any, context: "ExecutionContext | None" = None
) -> CellPrediction:
    """Dispatch :func:`predict_*` on an engine problem object."""
    from repro.engine.problems import (
        AbsoluteConsistencyProblem,
        CompositionConsistencyProblem,
        CompositionMembershipProblem,
        ConsistencyProblem,
        MembershipProblem,
        SatisfiabilityProblem,
        SeparationProblem,
    )

    if isinstance(problem, ConsistencyProblem):
        return predict_consistency(problem.mapping, context)
    if isinstance(problem, AbsoluteConsistencyProblem):
        return predict_abscons(problem.mapping, context)
    if isinstance(problem, MembershipProblem):
        return predict_membership(problem.mapping)
    if isinstance(problem, CompositionMembershipProblem):
        return predict_composition_membership(problem.m12, problem.m23)
    if isinstance(problem, CompositionConsistencyProblem):
        return predict_composition_consistency(problem.mappings)
    if isinstance(problem, SatisfiabilityProblem):
        return predict_satisfiability()
    if isinstance(problem, SeparationProblem):
        return predict_separation()
    raise TypeError(f"cannot predict a cell for {type(problem).__name__}")
