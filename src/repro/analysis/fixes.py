"""Certified quick-fixes for lint diagnostics.

A :class:`Fix` is a machine-applicable repair for one diagnostic: a
list of :class:`StdEdit` std-level edits (replace or remove), a human
message, and a safety class — ``preserving`` when the repair provably
does not change the mapping's semantics (dead-std removal, certified
redundancy removal, unique wildcard resolution), ``relaxing``
otherwise (remaps, arity repairs, comparison rewrites: the mapping
changes, review the diff).

Every fix is **verified by construction** before it is offered
(:func:`verify_fix`):

1. apply the edits to an in-memory copy of the mapping,
2. re-lint — the fixed code's occurrence count must strictly drop and
   no *new* error code may appear, and
3. re-solve — ``engine.solve`` on the repaired mapping's
   :class:`~repro.engine.problems.ConsistencyProblem` must not regress
   (Refuted < Unknown < Proved), and decided verdicts must pass
   ``certify()``.

so lint can never propose a repair that ``solve()`` would contradict.
Candidate repairs are *witnessed* where the machinery permits: a
label-remap suggestion carries a Lemma 4.1 satisfying tree for the
rewritten pattern, proving the repaired std can actually fire.

:func:`fix_mapping` is the front door (the ``repro fix`` CLI and the
daemon's lint handler both go through it); it records the
``repro_fixes_{proposed,verified,rejected}_total`` metric family under
a ``fix`` trace span.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence as TypingSequence

from repro.analysis.diagnostics import (
    CATALOG,
    Diagnostic,
    LintReport,
    SourceLocation,
)
from repro.analysis.lint import lint_mapping
from repro.analysis.passes import _satisfiability_pattern
from repro.engine import (
    CertificationError,
    ExecutionContext,
    certify,
    current_context,
    solve,
)
from repro.engine.problems import ConsistencyProblem
from repro.engine.verdicts import Verdict
from repro.errors import BoundExceededError, XsmError
from repro.mappings.std import STD, Comparison, parse_std
from repro.obs import REGISTRY, trace
from repro.patterns.ast import WILDCARD, Descendant, Pattern, Sequence
from repro.patterns.satisfiability import satisfying_tree
from repro.values import SkolemTerm, Term, Var
from repro.xmlmodel import serialize_tree

if TYPE_CHECKING:
    from repro.mappings.mapping import SchemaMapping
    from repro.xmlmodel.dtd import DTD

_FIXES_PROPOSED = REGISTRY.counter(
    "repro_fixes_proposed_total",
    "Candidate quick-fixes built, by diagnostic code",
    ("code",),
)
_FIXES_VERIFIED = REGISTRY.counter(
    "repro_fixes_verified_total",
    "Quick-fixes that passed the apply/re-lint/solve verification gate",
    ("code",),
)
_FIXES_REJECTED = REGISTRY.counter(
    "repro_fixes_rejected_total",
    "Quick-fixes rejected by the verification gate, by code and reason",
    ("code", "reason"),
)

#: Safety classes: a ``preserving`` fix provably keeps the mapping's
#: semantics; a ``relaxing`` fix changes it (review the diff).
PRESERVING = "preserving"
RELAXING = "relaxing"


@dataclass(frozen=True)
class StdEdit:
    """One std-level edit: replace ``stds[std_index]`` or remove it.

    ``new_std`` is the replacement in std text syntax (``parse_std``);
    indices always refer to the *unedited* mapping, so a batch of edits
    can be applied in one pass.
    """

    op: str  # "replace" | "remove"
    std_index: int
    new_std: str | None = None

    def __post_init__(self) -> None:
        if self.op not in ("replace", "remove"):
            raise ValueError(f"edit op must be 'replace' or 'remove', got {self.op!r}")
        if (self.new_std is None) != (self.op == "remove"):
            raise ValueError(f"'{self.op}' edit {'takes no' if self.op == 'remove' else 'needs a'} new_std")

    def render(self) -> str:
        if self.op == "remove":
            return f"remove std {self.std_index}"
        return f"replace std {self.std_index} with: {self.new_std}"

    def to_dict(self) -> dict[str, object]:
        return {"op": self.op, "std_index": self.std_index, "new_std": self.new_std}


@dataclass(frozen=True)
class Fix:
    """A machine-applicable repair for one diagnostic."""

    code: str
    message: str
    edits: tuple[StdEdit, ...]
    location: SourceLocation
    safety: str
    data: tuple[tuple[str, object], ...] = ()
    verified: bool = False

    def __post_init__(self) -> None:
        if self.code not in CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.safety not in (PRESERVING, RELAXING):
            raise ValueError(f"unknown safety class {self.safety!r}")
        if not self.edits:
            raise ValueError("a fix must carry at least one edit")

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.data:
            if name == key:
                return value
        return default

    def apply(self, mapping: "SchemaMapping") -> "SchemaMapping":
        """The repaired mapping (same class; the input is untouched)."""
        stds: list[STD | None] = list(mapping.stds)
        for edit in self.edits:
            if not 0 <= edit.std_index < len(stds):
                raise XsmError(
                    f"fix edit targets std {edit.std_index} but the mapping "
                    f"has {len(stds)}"
                )
            if edit.op == "replace":
                assert edit.new_std is not None
                stds[edit.std_index] = parse_std(edit.new_std)
            else:
                stds[edit.std_index] = None
        return type(mapping)(
            mapping.source_dtd,
            mapping.target_dtd,
            [std for std in stds if std is not None],
        )

    def render(self) -> str:
        """One human line: ``SM204 [std 1, source] (preserving): ...``."""
        edits = "; ".join(edit.render() for edit in self.edits)
        return f"{self.code} [{self.location}] ({self.safety}): {self.message} — {edits}"

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "edits": [edit.to_dict() for edit in self.edits],
            "location": self.location.to_dict(),
            "safety": self.safety,
            "data": {key: _jsonable(value) for key, value in self.data},
            "verified": self.verified,
        }


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return str(value)


def fix_from_dict(payload: dict[str, object]) -> Fix:
    """Rebuild a fix from its :meth:`Fix.to_dict` wire form."""
    location = payload.get("location") or {}
    assert isinstance(location, dict)
    edits = payload.get("edits") or []
    assert isinstance(edits, list)
    data = payload.get("data") or {}
    assert isinstance(data, dict)
    return Fix(
        code=str(payload["code"]),
        message=str(payload["message"]),
        edits=tuple(
            StdEdit(
                op=str(edit["op"]),
                std_index=int(edit["std_index"]),
                new_std=None if edit.get("new_std") is None else str(edit["new_std"]),
            )
            for edit in edits
        ),
        location=SourceLocation(
            std_index=location.get("std_index"),
            side=location.get("side"),
            path=location.get("path"),
        ),
        safety=str(payload["safety"]),
        data=tuple(sorted(data.items())),
        verified=bool(payload.get("verified", False)),
    )


# ---------------------------------------------------------------------------
# text-level application (.xsm files)
# ---------------------------------------------------------------------------


def std_line_numbers(text: str) -> list[int]:
    """0-based line numbers of the ``std:`` lines of ``.xsm`` text, in
    std-index order (the numbering ``parse_mapping`` produces)."""
    return [
        line_number
        for line_number, raw_line in enumerate(text.splitlines())
        if raw_line.split("#", 1)[0].strip().startswith("std:")
    ]


def apply_edits_to_text(text: str, edits: TypingSequence[StdEdit]) -> str:
    """Apply std edits to ``.xsm`` source text, preserving everything else.

    Only the affected ``std:`` lines are rewritten (comments, blank
    lines and the DTD sections stay byte-identical), so ``repro fix
    --apply`` produces minimal diffs.  Edit indices refer to std
    positions of the *input* text, in file order — the same numbering
    ``parse_mapping`` produces.
    """
    lines = text.splitlines()
    std_lines = std_line_numbers(text)
    replacements: dict[int, str] = {}
    removals: set[int] = set()
    for edit in edits:
        if not 0 <= edit.std_index < len(std_lines):
            raise XsmError(
                f"fix edit targets std {edit.std_index} but the file "
                f"has {len(std_lines)}"
            )
        line_number = std_lines[edit.std_index]
        if edit.op == "replace":
            assert edit.new_std is not None
            replacements[line_number] = f"std: {edit.new_std}"
        else:
            removals.add(line_number)
    rewritten = [
        replacements.get(line_number, raw_line)
        for line_number, raw_line in enumerate(lines)
        if line_number not in removals
    ]
    trailing = "\n" if text.endswith("\n") or removals or replacements else ""
    return "\n".join(rewritten) + trailing if rewritten else ""


def select_compatible(fixes: TypingSequence[Fix]) -> tuple[Fix, ...]:
    """A conflict-free batch: at most one fix per std index.

    Fix edits index the unedited mapping, so two fixes touching the
    same std cannot both apply in one pass; the first (report order)
    wins and the rest wait for the next ``repro fix`` round.
    """
    taken: set[int] = set()
    selected: list[Fix] = []
    for fix in fixes:
        indices = {edit.std_index for edit in fix.edits}
        if indices & taken:
            continue
        taken |= indices
        selected.append(fix)
    return tuple(selected)


# ---------------------------------------------------------------------------
# per-code fix builders
# ---------------------------------------------------------------------------


def _side_of(mapping: "SchemaMapping", diagnostic: Diagnostic) -> tuple[int, str, Pattern, "DTD"] | None:
    """(std_index, side, pattern, dtd) for a per-std, per-side diagnostic."""
    location = diagnostic.location
    if location.std_index is None or location.side not in ("source", "target"):
        return None
    std = mapping.stds[location.std_index]
    if location.side == "source":
        return location.std_index, "source", std.source, mapping.source_dtd
    return location.std_index, "target", std.target, mapping.target_dtd


def _replace_side(std: STD, side: str, pattern: Pattern) -> STD:
    if side == "source":
        return STD(pattern, std.target, std.source_conditions, std.target_conditions)
    return STD(std.source, pattern, std.source_conditions, std.target_conditions)


def _relabel(pattern: Pattern, old: str, new: str) -> Pattern:
    return pattern.map_patterns(
        lambda p: Pattern(new, p.vars, p.items) if p.label == old else p
    )


def _ranked_labels(wanted: str, dtd: "DTD", arities: set[int]) -> list[str]:
    """DTD labels nearest to *wanted*: arity-compatible ones first, then
    by string similarity (ties alphabetical, for determinism)."""

    def key(label: str) -> tuple[int, float, str]:
        compatible = all(dtd.arity(label) == arity for arity in arities)
        ratio = difflib.SequenceMatcher(None, wanted, label).ratio()
        return (0 if compatible else 1, -ratio, label)

    return sorted(dtd.labels, key=key)


def _witness(
    dtd: "DTD", pattern: Pattern, context: ExecutionContext | None
) -> "object | None":
    """A Lemma 4.1 satisfying tree for *pattern*, or None (incl. budget)."""
    try:
        return satisfying_tree(dtd, _satisfiability_pattern(pattern), context)
    except BoundExceededError:
        return None


def _remove_std(
    diagnostic: Diagnostic, message: str, safety: str,
    data: tuple[tuple[str, object], ...] = (),
) -> Fix | None:
    std_index = diagnostic.location.std_index
    if std_index is None:
        return None
    return Fix(
        code=diagnostic.code,
        message=message,
        edits=(StdEdit("remove", std_index),),
        location=diagnostic.location,
        safety=safety,
        data=data,
    )


def _fix_unknown_label(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    """SM201: remap the unknown label to the nearest alphabet symbol.

    Only offered when the rewritten side is satisfiable — the witness
    tree (Lemma 4.1 probe) ships in the fix data as proof.
    """
    located = _side_of(mapping, diagnostic)
    label = diagnostic.get("label")
    if located is None or not isinstance(label, str):
        return None
    std_index, side, pattern, dtd = located
    std = mapping.stds[std_index]
    arities = {
        len(node.vars)
        for node in pattern.subpatterns()
        if node.label == label and node.vars is not None
    }
    for candidate in _ranked_labels(label, dtd, arities)[:5]:
        repaired = _relabel(pattern, label, candidate)
        witness = _witness(dtd, repaired, context)
        if witness is None:
            continue
        return Fix(
            code="SM201",
            message=(
                f"replace unknown label {label!r} with {candidate!r} "
                f"throughout the {side} pattern (witness tree attached)"
            ),
            edits=(StdEdit("replace", std_index, str(_replace_side(std, side, repaired))),),
            location=diagnostic.location,
            safety=RELAXING,
            data=(("from", label), ("to", candidate),
                  ("witness", serialize_tree(witness))),
        )
    return None


def _fresh_variables(std: STD, count: int) -> list[Var]:
    used = {var.name for var in std.source_variables()}
    used |= {var.name for var in std.target_variables()}
    fresh: list[Var] = []
    index = 0
    while len(fresh) < count:
        name = f"u{index}"
        index += 1
        if name not in used:
            used.add(name)
            fresh.append(Var(name))
    return fresh


def _fix_arity_mismatch(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    """SM202: truncate or pad the attribute tuple to the DTD arity."""
    del context
    located = _side_of(mapping, diagnostic)
    label = diagnostic.get("label")
    dtd_arity = diagnostic.get("dtd_arity")
    if located is None or not isinstance(label, str) or not isinstance(dtd_arity, int):
        return None  # the wildcard variant has no single right arity
    std_index, side, pattern, _dtd = located
    std = mapping.stds[std_index]
    needed = sum(
        max(0, dtd_arity - len(node.vars))
        for node in pattern.subpatterns()
        if node.label == label and node.vars is not None
    )
    fresh = iter(_fresh_variables(std, needed))

    def repair(node: Pattern) -> Pattern:
        if node.label != label or node.vars is None or len(node.vars) == dtd_arity:
            return node
        if len(node.vars) > dtd_arity:
            vars_: tuple[Term, ...] = node.vars[:dtd_arity]
        else:
            vars_ = node.vars + tuple(
                next(fresh) for __ in range(dtd_arity - len(node.vars))
            )
        return Pattern(node.label, vars_, node.items)

    repaired = pattern.map_patterns(repair)
    if repaired == pattern:
        return None
    action = "truncated/padded"
    return Fix(
        code="SM202",
        message=(
            f"{action} the attribute tuple(s) of {label!r} in the {side} "
            f"pattern to the DTD arity {dtd_arity}"
        ),
        edits=(StdEdit("replace", std_index, str(_replace_side(std, side, repaired))),),
        location=diagnostic.location,
        safety=RELAXING,
        data=(("label", label), ("dtd_arity", dtd_arity)),
    )


def _fix_root_conflict(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    """SM203: relabel the pattern root to the DTD root."""
    del context
    located = _side_of(mapping, diagnostic)
    if located is None:
        return None
    std_index, side, pattern, dtd = located
    std = mapping.stds[std_index]
    vars_ = pattern.vars
    if vars_ is not None and len(vars_) != dtd.arity(dtd.root):
        vars_ = None  # the root's attributes don't line up: unconstrain them
    repaired = Pattern(dtd.root, vars_, pattern.items)
    return Fix(
        code="SM203",
        message=(
            f"relabel the {side} pattern root {pattern.label!r} to the "
            f"DTD root {dtd.root!r}"
        ),
        edits=(StdEdit("replace", std_index, str(_replace_side(std, side, repaired))),),
        location=diagnostic.location,
        safety=RELAXING,
        data=(("from", pattern.label), ("to", dtd.root)),
    )


def _fix_dead_std(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    del mapping, context
    return _remove_std(
        diagnostic,
        "remove the dead std: its source pattern never matches a "
        "conforming tree, so removal preserves the mapping's semantics",
        PRESERVING,
    )


def _fix_unsafe_std(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    del mapping, context
    return _remove_std(
        diagnostic,
        "remove the unsafe std: its target pattern is unsatisfiable, so "
        "any source tree firing it has no solution",
        RELAXING,
    )


def _rename_in_term(term: Term, renaming: dict[Var, Var]) -> Term:
    if isinstance(term, Var):
        return renaming.get(term, term)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(
            term.function, tuple(_rename_in_term(arg, renaming) for arg in term.args)
        )
    return term


def _fix_unbound_comparison(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    """SM207/SM208: rename the unbound variable to the nearest bound one,
    or drop the comparison when nothing is bound."""
    del context
    std_index = diagnostic.location.std_index
    unbound = diagnostic.get("variables")
    if std_index is None or not isinstance(unbound, tuple):
        return None
    std = mapping.stds[std_index]
    if diagnostic.code == "SM207":
        bound = sorted({var.name for var in std.source.variables()})
        conditions, attribute = std.source_conditions, "source_conditions"
    else:
        bound = sorted(
            {var.name for var in std.source.variables()}
            | {var.name for var in std.target.variables()}
        )
        conditions, attribute = std.target_conditions, "target_conditions"
    unbound_names = set(unbound)
    if bound:
        renaming = {
            Var(name): Var(
                max(bound, key=lambda b: (difflib.SequenceMatcher(None, name, b).ratio(), b))
            )
            for name in sorted(unbound_names)
        }
        repaired_conditions = tuple(
            Comparison(
                _rename_in_term(c.left, renaming), c.op,
                _rename_in_term(c.right, renaming),
            )
            for c in conditions
        )
        message = (
            "rename unbound comparison variable(s) "
            + ", ".join(f"{old.name}→{new.name}" for old, new in sorted(
                renaming.items(), key=lambda pair: pair[0].name))
            + " to bound ones"
        )
    else:
        repaired_conditions = tuple(
            c for c in conditions
            if not unbound_names & {var.name for var in c.variables()}
        )
        message = "drop the comparison(s) over variables no pattern binds"
    if repaired_conditions == conditions:
        return None
    repaired = dataclasses.replace(std, **{attribute: repaired_conditions})
    return Fix(
        code=diagnostic.code,
        message=message,
        edits=(StdEdit("replace", std_index, str(repaired)),),
        location=diagnostic.location,
        safety=RELAXING,
        data=(("variables", unbound),),
    )


def _fix_false_comparison(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    """SM210: a statically false comparison.  A false *source* condition
    means the std never fires (removal preserving); a false *target*
    condition makes every firing unsatisfiable (removal relaxing)."""
    del mapping, context
    side = diagnostic.location.side
    preserving = side == "source"
    return _remove_std(
        diagnostic,
        f"remove the std: its {side} comparison is false under every "
        "assignment, so it "
        + ("never fires" if preserving else "can never be satisfied"),
        PRESERVING if preserving else RELAXING,
        data=(("comparison", diagnostic.get("comparison")),),
    )


class _Unresolvable(Exception):
    pass


def _resolve_wildcards(pattern: Pattern, dtd: "DTD", allowed: frozenset[str] | None) -> Pattern:
    """Replace every wildcard by its unique admissible label, or raise.

    *allowed* is the parent production's alphabet (None at the root).
    A wildcard constraining ``k`` attributes only matches arity-``k``
    labels, so the arity filter keeps the resolution preserving.
    """
    if pattern.label == WILDCARD:
        candidates = frozenset((dtd.root,)) if allowed is None else allowed
        if pattern.vars is not None:
            candidates = frozenset(
                label for label in candidates
                if dtd.arity(label) == len(pattern.vars)
            )
        if len(candidates) != 1:
            raise _Unresolvable
        (label,) = candidates
    else:
        label = pattern.label
    if label not in dtd.labels:
        raise _Unresolvable
    child_allowed = frozenset(
        symbol for symbol in dtd.productions[label].symbols()
        if isinstance(symbol, str)
    )
    items: list[Sequence | Descendant] = []
    for item in pattern.items:
        if isinstance(item, Descendant):
            raise _Unresolvable  # descendants admit any reachable label
        items.append(
            Sequence(
                tuple(
                    _resolve_wildcards(element, dtd, child_allowed)
                    for element in item.elements
                ),
                item.connectors,
            )
        )
    return Pattern(label, pattern.vars, tuple(items))


def _fix_closure_breaking_std(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    """SM301 (wildcard only): resolve each wildcard to the unique label
    its parent's production admits — semantics-preserving, since every
    conforming tree realizes exactly that label there."""
    del context
    features = diagnostic.get("features")
    if features != ("wildcard",):
        return None  # descendant / sibling order has no sound rewrite
    located = _side_of(mapping, diagnostic)
    if located is None:
        return None
    std_index, side, pattern, dtd = located
    std = mapping.stds[std_index]
    try:
        repaired = _resolve_wildcards(pattern, dtd, None)
    except _Unresolvable:
        return None
    return Fix(
        code="SM301",
        message=(
            f"resolve the wildcard(s) of the {side} pattern to the unique "
            "labels the DTD admits, restoring full specification "
            "(grammar (5))"
        ),
        edits=(StdEdit("replace", std_index, str(_replace_side(std, side, repaired))),),
        location=diagnostic.location,
        safety=PRESERVING,
    )


def _fix_redundant_std(
    mapping: "SchemaMapping", diagnostic: Diagnostic,
    context: ExecutionContext | None,
) -> Fix | None:
    del mapping, context
    kind = "duplicate" if diagnostic.code == "SM310" else "subsumed"
    return _remove_std(
        diagnostic,
        f"remove the {kind} std: std {diagnostic.get('subsumed_by')} "
        "already enforces it (pattern-homomorphism certificate)",
        PRESERVING,
        data=(("subsumed_by", diagnostic.get("subsumed_by")),),
    )


FixBuilder = Callable[
    ["SchemaMapping", Diagnostic, ExecutionContext | None], "Fix | None"
]

#: Codes a quick-fix exists for, and their builders.
FIX_BUILDERS: dict[str, FixBuilder] = {
    "SM201": _fix_unknown_label,
    "SM202": _fix_arity_mismatch,
    "SM203": _fix_root_conflict,
    "SM204": _fix_dead_std,
    "SM205": _fix_unsafe_std,
    "SM207": _fix_unbound_comparison,
    "SM208": _fix_unbound_comparison,
    "SM210": _fix_false_comparison,
    "SM301": _fix_closure_breaking_std,
    "SM310": _fix_redundant_std,
    "SM311": _fix_redundant_std,
}

FIXABLE_CODES: frozenset[str] = frozenset(FIX_BUILDERS)


# ---------------------------------------------------------------------------
# the verification gate
# ---------------------------------------------------------------------------


def _solve_rank(verdict: Verdict) -> int:
    """Refuted < Unknown < Proved: the non-regression order for CONS."""
    if verdict.is_refuted:
        return 0
    if verdict.is_unknown:
        return 1
    return 2


def verify_fix(
    mapping: "SchemaMapping",
    fix: Fix,
    before: LintReport,
    context: ExecutionContext | None = None,
    *,
    before_verdict: Verdict | None = None,
) -> tuple[Fix | None, str]:
    """The gate every fix must pass before it is offered.

    Returns ``(verified_fix, "ok")`` or ``(None, reason)``.  The reason
    strings are the ``reason`` label values of
    ``repro_fixes_rejected_total``.
    """
    try:
        repaired = fix.apply(mapping)
    except XsmError:
        return None, "apply-failed"
    after = lint_mapping(repaired, context)
    before_count = len(before.by_code(fix.code))
    if len(after.by_code(fix.code)) >= before_count:
        return None, "re-lint"
    new_errors = {d.code for d in after.errors} - {d.code for d in before.errors}
    if new_errors:
        return None, "new-errors"
    if before_verdict is None:
        before_verdict = solve(ConsistencyProblem(mapping), context)
    after_verdict = solve(ConsistencyProblem(repaired), context)
    if _solve_rank(after_verdict) < _solve_rank(before_verdict):
        return None, "solve-regression"
    if not after_verdict.is_unknown:
        try:
            certify(after_verdict)
        except CertificationError:
            return None, "certification"
    return dataclasses.replace(fix, verified=True), "ok"


# ---------------------------------------------------------------------------
# front door
# ---------------------------------------------------------------------------


def fixes_for_report(
    mapping: "SchemaMapping",
    report: LintReport,
    context: ExecutionContext | None = None,
    *,
    only_codes: TypingSequence[str] | None = None,
) -> tuple[Fix, ...]:
    """Verified fixes for an existing report, in diagnostic order."""
    if only_codes is not None:
        unknown = set(only_codes) - set(CATALOG)
        if unknown:
            raise XsmError(f"unknown diagnostic code(s): {sorted(unknown)}")
    if context is None:
        context = current_context() or ExecutionContext()
    fixes: list[Fix] = []
    before_verdict: Verdict | None = None
    with context.activate(), trace("fix", mapping=report.name or None) as span:
        proposed = verified = rejected = 0
        for diagnostic in report.diagnostics:
            if only_codes is not None and diagnostic.code not in only_codes:
                continue
            builder = FIX_BUILDERS.get(diagnostic.code)
            if builder is None:
                continue
            candidate = builder(mapping, diagnostic, context)
            if candidate is None:
                continue
            proposed += 1
            _FIXES_PROPOSED.labels(code=candidate.code).inc()
            if before_verdict is None:
                before_verdict = solve(ConsistencyProblem(mapping), context)
            fix, reason = verify_fix(
                mapping, candidate, report, context,
                before_verdict=before_verdict,
            )
            if fix is None:
                rejected += 1
                _FIXES_REJECTED.labels(code=candidate.code, reason=reason).inc()
                continue
            verified += 1
            _FIXES_VERIFIED.labels(code=fix.code).inc()
            fixes.append(fix)
        span.annotate(proposed=proposed, verified=verified, rejected=rejected)
    return tuple(fixes)


def fix_mapping(
    mapping: "SchemaMapping",
    context: ExecutionContext | None = None,
    *,
    name: str = "",
    only_codes: TypingSequence[str] | None = None,
    memo: object | None = None,
) -> tuple[LintReport, tuple[Fix, ...]]:
    """Lint *mapping* and compute verified fixes for its diagnostics."""
    report = lint_mapping(mapping, context, name=name, memo=memo)
    return report, fixes_for_report(
        mapping, report, context, only_codes=only_codes
    )
